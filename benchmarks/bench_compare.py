"""Benchmark for the consolidated optimizer comparison and the what-if
marginal analysis."""

import pytest

from repro.compaction.horizontal import build_si_test_groups
from repro.core.optimizer import optimize_tam
from repro.core.whatif import format_whatif_report, what_if
from repro.experiments.compare import compare_optimizers, format_comparison
from repro.sitest.generator import generate_random_patterns


@pytest.fixture(scope="module")
def instance(d695):
    patterns = generate_random_patterns(d695, 3_000, seed=2)
    grouping = build_si_test_groups(d695, patterns, parts=4, seed=2)
    return d695, grouping


def bench_optimizer_faceoff(benchmark, instance):
    soc, grouping = instance
    comparison = benchmark.pedantic(
        compare_optimizers,
        args=(soc, 24, grouping.groups),
        kwargs={"annealing_steps": 3_000},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_comparison(comparison))
    by_name = {c.name: c for c in comparison.contenders}
    # Algorithm 2 must beat the SI-oblivious flow and match or beat cold SA.
    assert by_name["Algorithm 2"].t_total <= (
        by_name["TR-Architect + post-hoc SI"].t_total
    )
    assert by_name["Algorithm 2"].t_total <= (
        by_name["simulated annealing"].t_total * 1.05
    )


def bench_whatif_analysis(benchmark, instance):
    soc, grouping = instance
    result = optimize_tam(soc, 24, groups=grouping.groups)

    report = benchmark(
        what_if, soc, result.architecture, grouping.groups
    )
    print("\n" + format_whatif_report(report))
    # The optimizer used every wire, so removals cost and additions are
    # worth at most a modest amount.
    assert all(delta.delta >= 0 for delta in report.remove_wire)
    assert report.marginal_pin_value < result.t_total * 0.25
