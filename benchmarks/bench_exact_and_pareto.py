"""Benchmarks for the exact oracle, the Pareto sweep and the scaling study.

* Exact-vs-heuristic: on small SOCs the enumeration optimizer certifies
  Algorithm 2's optimality gap (the validation the TAM literature did
  with ILP models).
* Pareto sweep: the full `(W_max, T_soc)` trade-off curve of a shipped
  benchmark with the knee marked.
* Scaling: pipeline runtime and bound gap versus synthesized SOC size.
"""

import pytest

from repro.compaction.groups import SITestGroup
from repro.core.exact import exact_optimize
from repro.core.optimizer import optimize_tam
from repro.experiments.pareto import format_curve, sweep_widths
from repro.experiments.scaling import (
    format_scaling_report,
    run_scaling_study,
)
from repro.soc.synth import DEFAULT_MIX, synthesize_soc


@pytest.mark.parametrize("w_max", [4, 8])
def bench_exact_vs_heuristic(benchmark, w_max):
    soc = synthesize_soc("oracle", 6, mix=DEFAULT_MIX, seed=9)
    groups = (
        SITestGroup(group_id=0, cores=frozenset(soc.core_ids), patterns=40),
        SITestGroup(group_id=1, cores=frozenset(list(soc.core_ids)[:3]),
                    patterns=15),
    )

    def run():
        exact = exact_optimize(soc, w_max, groups)
        heuristic = optimize_tam(soc, w_max, groups)
        return exact, heuristic

    exact, heuristic = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = (heuristic.t_total - exact.result.t_total) / exact.result.t_total
    print(
        f"\nW={w_max}: exact {exact.result.t_total} cc over "
        f"{exact.architectures_evaluated} architectures; Algorithm 2 "
        f"{heuristic.t_total} cc (gap {gap:.1%})"
    )
    assert heuristic.t_total >= exact.result.t_total
    assert gap <= 0.15


def bench_pareto_sweep_d695(benchmark, d695):
    from repro.sitest.generator import generate_random_patterns
    from repro.compaction.horizontal import build_si_test_groups

    patterns = generate_random_patterns(d695, 2_000, seed=12)
    grouping = build_si_test_groups(d695, patterns, parts=4, seed=12)

    curve = benchmark.pedantic(
        sweep_widths,
        args=(d695, (8, 16, 24, 32, 40, 48, 56, 64)),
        kwargs={"groups": grouping.groups},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_curve(curve))
    totals = [point.t_total for point in curve.points]
    assert totals[0] > totals[-1]
    # The knee must sit strictly inside the sweep for a saturating curve.
    knee = curve.knee()
    assert curve.points[0].w_max <= knee.w_max <= curve.points[-1].w_max


def bench_scaling_study(benchmark):
    points = benchmark.pedantic(
        run_scaling_study,
        args=((8, 16, 24),),
        kwargs={"w_max": 24, "pattern_count": 1_000, "parts": 4, "seed": 5},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_scaling_report(points))
    assert all(point.t_total > 0 for point in points)
    assert all(0 <= point.bound_gap < 1 for point in points)
