"""Benchmarks for the §3 data-volume claim and the three-way InTest
optimizer comparison.

* Volume study — "two-dimensional SI test set compaction ... reduces test
  data volume significantly": measured in shift bits, per group count.
* Rectangles vs TR-Architect vs Algorithm 2 — the two classical scheduling
  families plus the paper's optimizer on identical InTest instances.
"""

import pytest

from repro.core.optimizer import optimize_tam
from repro.experiments.compaction_study import (
    format_volume_report,
    measure_compaction,
)
from repro.sitest.generator import generate_random_patterns
from repro.tam.rectangles import schedule_rectangles
from repro.tam.tr_architect import tr_architect


@pytest.mark.parametrize("soc_name", ["p34392", "p93791"])
def bench_data_volume_study(benchmark, soc_name, request):
    soc = request.getfixturevalue(soc_name)
    patterns = generate_random_patterns(soc, 5_000, seed=1)

    volumes = benchmark.pedantic(
        measure_compaction,
        args=(soc, patterns, (1, 2, 4, 8)),
        kwargs={"seed": 1},
        rounds=1,
        iterations=1,
    )
    print(f"\n{soc_name}:")
    print(format_volume_report(volumes))
    flat = volumes[0]
    best = min(volumes, key=lambda volume: volume.volume_after)
    # The §3 claim: significant volume reduction, and the 2-D scheme (some
    # i > 1) at least matches pure vertical compaction.
    assert flat.volume_after < flat.volume_before / 5
    assert best.volume_after <= flat.volume_after


@pytest.mark.parametrize("w_max", [16, 32, 64])
def bench_three_intest_optimizers(benchmark, p93791, w_max):
    def run():
        rectangles = schedule_rectangles(p93791, w_max).makespan
        backfilled = schedule_rectangles(
            p93791, w_max, backfill=True
        ).makespan
        testrail = tr_architect(p93791, w_max).t_total
        algorithm2 = optimize_tam(p93791, w_max, ()).t_total
        return rectangles, backfilled, testrail, algorithm2

    rectangles, backfilled, testrail, algorithm2 = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nW={w_max}: rectangles {rectangles} cc "
        f"(backfilled {backfilled} cc), TR-Architect {testrail} cc, "
        f"Algorithm 2 (no SI) {algorithm2} cc"
    )
    # With no SI groups Algorithm 2 degenerates to TR-Architect.
    assert algorithm2 == testrail
    # Backfilling closes most of the plain list scheduler's gap; the two
    # families end up within ~15% of each other on this benchmark.
    assert backfilled <= rectangles
    assert backfilled <= testrail * 1.15
    assert testrail <= backfilled * 1.15
