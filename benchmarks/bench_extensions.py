"""Benchmarks for the extension features: architecture ablations, optimizer
comparisons, bounds, wrapper strategies and the fault simulator.

* TestRail vs Test Bus — quantifies the paper's architectural argument
  (parallel external test) end to end.
* Algorithm 2 vs simulated annealing — quality and runtime of the
  deterministic merge heuristic against a randomized search with a
  comparable evaluation budget.
* Power budget sweep — cost of tightening the test power envelope.
* Lower-bound gaps — how far the heuristics sit from provable optima.
* LPT vs MULTIFIT wrapper balancing across a real benchmark.
* MA coverage accumulation of random pattern sets.
"""

import pytest

from repro.compaction.horizontal import build_si_test_groups
from repro.core.annealing import AnnealingConfig, anneal_tam
from repro.core.bounds import bound_report
from repro.core.optimizer import optimize_tam
from repro.core.power import PowerAwareEvaluator, PowerModel
from repro.sitest.generator import generate_random_patterns
from repro.sitest.simulator import simulate
from repro.sitest.topology import random_topology
from repro.tam.testbus import optimize_testbus
from repro.tam.tr_architect import tr_architect
from repro.wrapper.design import design_wrapper


@pytest.fixture(scope="module")
def d695_grouping():
    from repro.soc.benchmarks import load_benchmark

    soc = load_benchmark("d695")
    patterns = generate_random_patterns(soc, 4_000, seed=31)
    return soc, build_si_test_groups(soc, patterns, parts=4, seed=31)


def bench_testrail_vs_testbus(benchmark, d695_grouping):
    soc, grouping = d695_grouping

    def both():
        rail = optimize_tam(soc, 32, grouping.groups)
        bus = optimize_testbus(soc, 32, grouping.groups)
        return rail, bus

    rail, bus = benchmark.pedantic(both, rounds=1, iterations=1)
    print(
        f"\nTestRail: {rail.t_total} cc (T_si {rail.evaluation.t_si}); "
        f"Test Bus: {bus.t_total} cc (T_si {bus.evaluation.t_si})"
    )
    assert rail.t_total <= bus.t_total


def bench_algorithm2_vs_annealing(benchmark, d695_grouping):
    soc, grouping = d695_grouping

    def both():
        deterministic = optimize_tam(soc, 32, grouping.groups)
        annealed = anneal_tam(
            soc, 32, grouping.groups,
            config=AnnealingConfig(steps=6_000, seed=2),
        )
        return deterministic, annealed

    deterministic, annealed = benchmark.pedantic(both, rounds=1, iterations=1)
    print(
        f"\nAlgorithm 2: {deterministic.t_total} cc; "
        f"SA(6000 steps): {annealed.t_total} cc"
    )
    # The deterministic heuristic should be competitive with randomized
    # search at this budget.
    assert deterministic.t_total <= annealed.t_total * 1.15


@pytest.mark.parametrize("budget_fraction", [1.0, 0.4, 0.25])
def bench_power_budget_sweep(benchmark, d695_grouping, budget_fraction):
    # The residual group spans every rail and runs exclusively whatever the
    # budget; the sweep studies the part groups that can overlap.  SI-mode
    # power tracks wrapper output cell activity.
    soc, grouping = d695_grouping
    groups = tuple(g for g in grouping.groups if not g.is_residual)
    ratings = {core.core_id: core.woc_count / 100 for core in soc}
    probe = PowerModel(budget=1.0, core_power=ratings)
    group_powers = [probe.group_power(g) for g in groups]
    budget = max(sum(group_powers) * budget_fraction,
                 max(group_powers) * 1.05)
    model = PowerModel(budget=budget, core_power=ratings)
    evaluator = PowerAwareEvaluator(soc, groups, model)

    result = benchmark.pedantic(
        optimize_tam,
        args=(soc, 32),
        kwargs={"groups": groups, "evaluator": evaluator},
        rounds=1,
        iterations=1,
    )
    print(f"\nbudget {budget:.1f}: T_total={result.t_total} cc")
    assert result.t_total > 0


@pytest.mark.parametrize("w_max", [16, 48])
def bench_bound_gap(benchmark, d695_grouping, w_max):
    soc, grouping = d695_grouping

    def run():
        achieved = optimize_tam(soc, w_max, grouping.groups).t_total
        report = bound_report(soc, w_max, grouping.groups)
        return achieved, report

    achieved, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nW={w_max}: achieved {achieved} cc, bound "
        f"{report.t_total_bound} cc, gap {report.gap(achieved):.1%}"
    )
    assert achieved >= report.t_total_bound


@pytest.mark.parametrize("strategy", ["lpt", "multifit"])
def bench_wrapper_strategy(benchmark, d695_grouping, strategy):
    soc, _ = d695_grouping

    def sweep():
        design_wrapper.cache_clear()
        worst = 0
        for core in soc:
            for width in range(1, 33):
                design = design_wrapper(core, width, strategy=strategy)
                worst = max(worst, design.max_scan_in)
        return worst

    worst = benchmark(sweep)
    print(f"\n{strategy}: worst scan-in over sweep = {worst}")


def bench_ma_coverage_of_random_patterns(benchmark, d695_grouping):
    soc, _ = d695_grouping
    topology = random_topology(soc, fanouts_per_core=2, locality=2, seed=8)
    ma_universe_patterns = generate_random_patterns(soc, 10_000, seed=8)

    report = benchmark(simulate, topology, ma_universe_patterns)
    print(
        f"\nrandom 10k patterns: {report.coverage:.1%} MA coverage "
        f"({len(report.detected)}/{report.total_faults})"
    )
    # Random patterns rarely align a full aggressor neighborhood: coverage
    # must be far from complete, motivating deterministic SI test sets.
    assert report.coverage < 0.9
