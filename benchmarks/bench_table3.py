"""Benchmark regenerating the paper's **Table 3**: overall test time
comparison for SOC p93791.

Same layout as Table 2; p93791 is the larger SOC (32 modules, no dominant
core), where the paper reports the biggest gains — ``ΔT_[8]`` above 70% at
wide TAMs with ``N_r = 100,000`` and ``ΔT_g`` around 8–13%.
"""

import pytest

from benchmarks.conftest import TABLE_PATTERN_COUNTS, TABLE_WIDTHS
from repro.experiments.reporting import render_table, save_result
from repro.experiments.table_runner import run_table_experiment


@pytest.mark.parametrize("pattern_count", TABLE_PATTERN_COUNTS)
def bench_table3_p93791(benchmark, p93791, pattern_count, results_dir):
    result = benchmark.pedantic(
        run_table_experiment,
        args=(p93791, pattern_count),
        kwargs={"widths": TABLE_WIDTHS, "seed": 1},
        rounds=1,
        iterations=1,
    )
    table = render_table(result)
    save_result(result, results_dir / f"table3_nr{pattern_count}.json")
    (results_dir / f"table3_nr{pattern_count}.txt").write_text(table + "\n")
    print()
    print(table)

    widest = result.rows[-1]
    assert widest.delta_baseline_pct > 0
    times = [row.t_min for row in result.rows]
    assert times == sorted(times, reverse=True)

    # The gap between oblivious and SI-aware grows with N_r relative to the
    # total (checked across parametrizations in EXPERIMENTS.md); within one
    # run, wider TAMs must benefit at least as much as the narrowest.
    assert widest.delta_baseline_pct >= result.rows[0].delta_baseline_pct - 5.0
