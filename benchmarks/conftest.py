"""Shared fixtures and configuration for the benchmark suite.

Scale control: set ``REPRO_BENCH_FULL=1`` to run the table benchmarks at the
paper's full pattern counts (``N_r`` up to 100,000 — several minutes per
table).  The default scale keeps the whole suite in the low minutes while
exercising exactly the same code paths; ``tools/run_experiments.py`` runs
the full-scale sweep reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.soc.benchmarks import load_benchmark

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: ``N_r`` values for the table benchmarks (paper: 10,000 and 100,000).
TABLE_PATTERN_COUNTS = (10_000, 100_000) if FULL_SCALE else (2_000, 10_000)

#: ``W_max`` sweep (paper: 8..64 step 8; quick mode thins the sweep).
TABLE_WIDTHS = (
    (8, 16, 24, 32, 40, 48, 56, 64) if FULL_SCALE else (8, 16, 32, 64)
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def d695():
    return load_benchmark("d695")


@pytest.fixture(scope="session")
def p34392():
    return load_benchmark("p34392")


@pytest.fixture(scope="session")
def p93791():
    return load_benchmark("p93791")
