"""Benchmark regenerating the paper's **Section 2 motivation** arithmetic.

A 32-bit functional bus with ten cores, each sending data to two others:
``N = 2 * 10 * 32 = 640`` victim interconnects.  The MA model needs
``6N = 3840`` vector pairs; the reduced MT model with ``k = 3`` needs about
``N * 2^(2k+2) = 163,840``.  With serial ExTest over ~2,000 core I/Os, MA
testing alone costs millions of clock cycles — comparable to the ~2M-cycle
InTest budget of a representative SOC, which is the paper's motivation for
SI-aware architecture optimization.
"""

from repro.sitest.faults import (
    generate_ma_patterns,
    ma_pattern_count,
    reduced_mt_pattern_count,
)
from repro.sitest.topology import random_topology
from repro.soc.model import Soc
from tests.conftest import make_core


def _bus_soc():
    # Ten cores; 64 outputs each so that every core can drive data to two
    # partners over the 32-bit bus (the Section 2 sizing).
    return Soc(
        name="motivation",
        cores=tuple(
            make_core(core_id, inputs=64, outputs=64, patterns=0)
            for core_id in range(1, 11)
        ),
    )


def bench_motivation_counts(benchmark):
    victims = 2 * 10 * 32

    def counts():
        return (
            ma_pattern_count(victims),
            reduced_mt_pattern_count(victims, locality=3),
        )

    ma, mt = benchmark(counts)
    print(f"\nMA pairs: {ma}; reduced-MT pairs (k=3): {mt}")
    assert ma == 3_840
    assert mt == 163_840

    # Serial ExTest cost estimate: one shift per I/O cell per vector pair.
    total_ios = sum(core.terminal_count for core in _bus_soc())
    serial_ma_cycles = ma * total_ios
    print(f"serial ExTest MA cost ~= {serial_ma_cycles:,} cycles")
    assert serial_ma_cycles > 2_000_000  # exceeds the PNX8550 InTest budget


def bench_ma_generation_throughput(benchmark):
    soc = _bus_soc()
    topology = random_topology(soc, fanouts_per_core=2, locality=3, seed=2)

    patterns = benchmark(lambda: list(generate_ma_patterns(topology)))
    assert len(patterns) == 6 * topology.net_count
    print(f"\ngenerated {len(patterns)} MA patterns "
          f"for {topology.net_count} nets")
