"""Benchmarks of the experiment runtime: executor fan-out, cache traffic.

These quantify the machinery itself — pool fan-out overhead vs serial
execution, warm-vs-cold cache speedup, key computation and codec costs —
on sweeps small enough to finish quickly but large enough to measure.
On a single-core runner the parallel bench measures pure overhead (the
correctness invariant is pinned by tests/runtime/, not here).
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import optimize_tam
from repro.experiments.pareto import sweep_widths
from repro.experiments.table_runner import run_table_experiment
from repro.runtime.cache import EvaluationCache, optimize_cache_key
from repro.runtime.codec import optimization_from_dict, optimization_to_dict

WIDTHS = (8, 16, 24)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def bench_pareto_sweep_fanout(benchmark, d695, jobs):
    curve = benchmark.pedantic(
        sweep_widths,
        args=(d695, WIDTHS),
        kwargs={"jobs": jobs},
        rounds=1,
        iterations=1,
    )
    assert len(curve.points) == len(WIDTHS)


def bench_table_cold_vs_warm_cache(benchmark, d695, tmp_path):
    cache = EvaluationCache(store_dir=tmp_path)
    cold = run_table_experiment(
        d695, 300, widths=(8, 16), group_counts=(1, 2), seed=3, cache=cache
    )
    warm = benchmark.pedantic(
        run_table_experiment,
        args=(d695, 300),
        kwargs={
            "widths": (8, 16),
            "group_counts": (1, 2),
            "seed": 3,
            "cache": cache,
        },
        rounds=3,
        iterations=1,
    )
    assert [row.t_baseline for row in warm.rows] == [
        row.t_baseline for row in cold.rows
    ]
    assert cache.stats()["hits"] > 0
    print(f"\nwarm run: {warm.elapsed_seconds * 1000:.1f} ms, "
          f"cache {cache.stats()}")


def bench_cache_key_computation(benchmark, p93791):
    key = benchmark(optimize_cache_key, p93791, 32, ())
    assert key.startswith("optimize-")


def bench_optimization_codec_round_trip(benchmark, d695):
    result = optimize_tam(d695, 16)

    def round_trip():
        return optimization_from_dict(optimization_to_dict(result))

    assert benchmark(round_trip) == result


def bench_disk_store_hit(benchmark, d695, tmp_path):
    result = optimize_tam(d695, 16)
    key = optimize_cache_key(d695, 16, ())
    EvaluationCache(store_dir=tmp_path).put(key, result)

    def disk_hit():
        return EvaluationCache(store_dir=tmp_path).get(key)

    assert benchmark(disk_hit) == result
