"""Benchmark for the Fig. 2 hypergraph partitioning step (ablation).

The paper offloads pattern-length reduction to hMetis; our multilevel
partitioner stands in for it.  The ablation compares the cut achieved by
the partitioner against a deterministic round-robin assignment on the real
care-core hypergraphs arising from the benchmark SOCs — the cut weight is
exactly the number of SI patterns condemned to full-length (residual)
treatment, so lower is directly better.
"""

import pytest

from repro.compaction.horizontal import _partition_cores
from repro.hypergraph.hypergraph import build_hypergraph, cut_weight
from repro.hypergraph.multilevel import partition
from repro.sitest.generator import generate_random_patterns


def _care_hypergraph(soc, patterns):
    host_ids = [core.core_id for core in soc if core.woc_count > 0]
    index_of = {core_id: i for i, core_id in enumerate(host_ids)}
    edges = {}
    for pattern in patterns:
        care = frozenset(index_of[c] for c in pattern.care_cores)
        if len(care) >= 2:
            edges[care] = edges.get(care, 0) + 1
    weights = [soc.core_by_id(core_id).woc_count for core_id in host_ids]
    return build_hypergraph(weights, edges)


@pytest.fixture(scope="module")
def d695_graph():
    from repro.soc.benchmarks import load_benchmark

    soc = load_benchmark("d695")
    patterns = generate_random_patterns(soc, 5_000, seed=13)
    return _care_hypergraph(soc, patterns)


@pytest.mark.parametrize("parts", [2, 4, 8])
def bench_partition_d695_care_graph(benchmark, d695_graph, parts):
    result = benchmark(partition, d695_graph, parts, 0.10, 3)
    round_robin = [v % parts for v in range(d695_graph.vertex_count)]
    baseline_cut = cut_weight(d695_graph, round_robin)
    print(
        f"\nparts={parts}: multilevel cut={result.cut} "
        f"round-robin cut={baseline_cut}"
    )
    # The partitioner must not lose to the trivial assignment.
    assert result.cut <= baseline_cut


def bench_partition_fig2_example(benchmark):
    """A Fig. 2 style toy: eight cores in two natural clusters connected by
    one three-pin hyperedge (the figure's cut edge 7-4-6)."""
    edges = {
        # Cluster A: cores 0-3.
        frozenset({0, 1}): 5,
        frozenset({1, 2}): 5,
        frozenset({2, 3}): 5,
        frozenset({0, 3}): 5,
        # Cluster B: cores 4-7.
        frozenset({4, 5}): 5,
        frozenset({5, 6}): 5,
        frozenset({6, 7}): 5,
        frozenset({4, 7}): 5,
        # The straddling test pattern: its care cores span both clusters,
        # so it must end up as the (cheap) cut edge.
        frozenset({3, 4, 6}): 1,
    }
    graph = build_hypergraph([4] * 8, edges)
    result = benchmark(partition, graph, 2, 0.25, 1)
    print(f"\nfig2 cut={result.cut} assignment={result.assignment}")
    assert result.cut == 1
