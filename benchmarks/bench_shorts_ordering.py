"""Benchmarks for the classical shorts/opens baseline and abort-on-fail
ordering (extensions).

* Shorts vs SI cost — the quantitative version of the paper's Section 1
  premise: the modified counting sequence for shorts/opens is logarithmic
  in the net count while SI test sets are linear (MA) or exponential-in-k
  (reduced MT), so classical ExTest is negligible and SI ExTest is not.
* Abort-on-fail ordering — expected tester-occupancy gain of optimally
  ordering cores inside rails under a yield model.
"""

import pytest

from repro.sitest.faults import ma_pattern_count, reduced_mt_pattern_count
from repro.sitest.shorts import (
    modified_counting_sequence_length,
    plan_shorts_test,
)
from repro.sitest.topology import random_topology
from repro.tam.ordering import YieldModel, order_architecture
from repro.tam.tr_architect import tr_architect


def bench_shorts_vs_si_cost(benchmark, d695):
    topology = random_topology(d695, fanouts_per_core=2, locality=3, seed=4)

    def plan():
        return plan_shorts_test(d695, topology, width=16)

    shorts = benchmark(plan)
    intest = tr_architect(d695, 16).t_total
    nets = topology.net_count
    print(
        f"\n{nets} nets: shorts/opens = "
        f"{modified_counting_sequence_length(nets)} patterns "
        f"({shorts.total_cycles} cc); MA SI = {ma_pattern_count(nets)} "
        f"pairs; reduced-MT(k=3) = "
        f"{reduced_mt_pattern_count(nets, 3)} pairs; "
        f"InTest(W=16) = {intest} cc"
    )
    # Section 1's premise, measured: shorts/opens are a rounding error.
    assert shorts.total_cycles < intest * 0.05
    # ...while even the *pattern count* of SI tests dwarfs the shorts set.
    assert ma_pattern_count(nets) > 100 * shorts.patterns


@pytest.mark.parametrize("default_yield", [0.99, 0.9, 0.7])
def bench_abort_on_fail_ordering(benchmark, d695, default_yield):
    architecture = tr_architect(d695, 24).architecture
    # Big cores fail more often: scale fail probability with scan volume.
    worst = max(core.scan_cell_count for core in d695) or 1
    yields = YieldModel(
        pass_probability={
            core.core_id: 1.0 - (1.0 - default_yield)
            * core.scan_cell_count / worst
            for core in d695
        },
        default=default_yield,
    )

    report = benchmark(order_architecture, d695, architecture, yields)
    print(
        f"\nyield={default_yield}: naive {report.naive_expected:.0f} cc, "
        f"ordered {report.optimal_expected:.0f} cc "
        f"({report.gain_pct:.1f}% expected gain)"
    )
    assert report.optimal_expected <= report.naive_expected
