"""Runtime benchmarks of the optimizers themselves (Algorithms 1 and 2),
plus the wrapper-design substrate.

These are throughput benches: they quantify how expensive a single
``TAM_Optimization`` run is at different pin budgets and SOC sizes, and how
fast the memoized evaluator scores candidate architectures.
"""

import pytest

from repro.compaction.horizontal import build_si_test_groups
from repro.core.optimizer import optimize_tam
from repro.core.scheduling import TamEvaluator
from repro.sitest.generator import generate_random_patterns
from repro.tam.testrail import initial_architecture
from repro.tam.tr_architect import tr_architect
from repro.wrapper.design import design_wrapper
from repro.wrapper.timing import core_time_table


@pytest.mark.parametrize("w_max", [8, 32, 64])
def bench_tr_architect_p93791(benchmark, p93791, w_max):
    result = benchmark(tr_architect, p93791, w_max)
    print(f"\nW={w_max}: T_in={result.t_total} cc")
    assert result.architecture.total_width == w_max


@pytest.mark.parametrize("w_max", [16, 48])
def bench_si_aware_optimize_p34392(benchmark, p34392, w_max):
    patterns = generate_random_patterns(p34392, 5_000, seed=4)
    grouping = build_si_test_groups(p34392, patterns, parts=4, seed=4)

    result = benchmark.pedantic(
        optimize_tam,
        args=(p34392, w_max),
        kwargs={"groups": grouping.groups},
        rounds=1,
        iterations=1,
    )
    print(f"\nW={w_max}: T_total={result.t_total} cc")


def bench_evaluator_throughput(benchmark, p93791):
    patterns = generate_random_patterns(p93791, 2_000, seed=4)
    grouping = build_si_test_groups(p93791, patterns, parts=8, seed=4)
    evaluator = TamEvaluator(p93791, grouping.groups)
    architecture = initial_architecture(p93791.core_ids)

    evaluation = benchmark(evaluator.evaluate, architecture)
    assert evaluation.t_total > 0


def bench_wrapper_design_sweep(benchmark, p93791):
    """Balanced wrapper construction across all cores and widths 1..64."""

    from repro.wrapper.timing import core_test_time

    def sweep():
        design_wrapper.cache_clear()
        core_test_time.cache_clear()
        total = 0
        for core in p93791:
            total += sum(core_time_table(core, 64))
        return total

    total = benchmark(sweep)
    assert total > 0
