"""Benchmark for the Section 3 compaction claims.

The paper states that the greedy clique-cover heuristic "achieves similar
compaction ratios as approximation algorithms for the clique covering
problem with significantly less computation time".  This bench times both
:func:`greedy_compact` (the paper's heuristic) and :func:`color_compact`
(Welsh–Powell coloring of the conflict graph, the classical approximation)
on the same pattern set and compares counts.
"""

import pytest

from repro.compaction.vertical import color_compact, greedy_compact
from repro.sitest.generator import generate_random_patterns

PATTERN_COUNT = 2_000


@pytest.fixture(scope="module")
def patterns(request):
    from repro.soc.benchmarks import load_benchmark

    soc = load_benchmark("d695")
    return generate_random_patterns(soc, PATTERN_COUNT, seed=7)


def bench_greedy_compaction(benchmark, patterns):
    result = benchmark(greedy_compact, patterns)
    print(
        f"\ngreedy: {result.original_count} -> {result.compacted_count} "
        f"(ratio {result.ratio:.1f}x)"
    )
    assert result.compacted_count < PATTERN_COUNT / 5


def bench_coloring_compaction(benchmark, patterns):
    result = benchmark(color_compact, patterns)
    print(
        f"\ncoloring: {result.original_count} -> {result.compacted_count} "
        f"(ratio {result.ratio:.1f}x)"
    )
    assert result.compacted_count < PATTERN_COUNT / 5


def bench_compaction_quality_parity(benchmark, patterns):
    """Greedy must land within 1.5x of the approximation's pattern count
    (the paper claims parity) — measured on the same input."""

    def both():
        return greedy_compact(patterns).compacted_count, color_compact(
            patterns
        ).compacted_count

    greedy_count, colored_count = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(f"\ngreedy={greedy_count} coloring={colored_count}")
    assert greedy_count <= colored_count * 1.5
