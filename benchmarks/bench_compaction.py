"""Benchmarks for the Section 3 compaction claims and the bitset kernel.

The paper states that the greedy clique-cover heuristic "achieves similar
compaction ratios as approximation algorithms for the clique covering
problem with significantly less computation time".  The pytest benches time
:func:`greedy_compact` (the paper's heuristic) and :func:`color_compact`
(Welsh–Powell coloring, the classical approximation) on the same pattern
set — on both the reference and the packed-bitset backend, asserting the
two stay bit-identical.

Run as a script to measure the kernel speedup at a chosen scale and write
a results JSON (the committed ``results/compaction_speedup_p93791.json``
is the paper-scale 100,000-pattern run)::

    PYTHONPATH=src python benchmarks/bench_compaction.py \
        --soc p93791 --patterns 100000 --seed 7 \
        --out benchmarks/results/compaction_speedup_p93791.json
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.compaction.vertical import color_compact, greedy_compact
from repro.sitest.generator import generate_random_patterns

PATTERN_COUNT = 2_000

RESULT_FORMAT = "repro-compaction-benchmark"
RESULT_VERSION = 1


@pytest.fixture(scope="module")
def patterns(d695):
    return generate_random_patterns(d695, PATTERN_COUNT, seed=7)


def bench_greedy_reference(benchmark, patterns):
    result = benchmark(greedy_compact, patterns, backend="reference")
    print(
        f"\ngreedy/reference: {result.original_count} -> "
        f"{result.compacted_count} (ratio {result.ratio:.1f}x)"
    )
    assert result.compacted_count < PATTERN_COUNT / 5


def bench_greedy_bitset(benchmark, patterns):
    result = benchmark(greedy_compact, patterns, backend="bitset")
    print(
        f"\ngreedy/bitset: {result.original_count} -> "
        f"{result.compacted_count} (ratio {result.ratio:.1f}x)"
    )
    assert result == greedy_compact(patterns, backend="reference")


def bench_coloring_reference(benchmark, patterns):
    result = benchmark(color_compact, patterns, backend="reference")
    print(
        f"\ncoloring/reference: {result.original_count} -> "
        f"{result.compacted_count} (ratio {result.ratio:.1f}x)"
    )
    assert result.compacted_count < PATTERN_COUNT / 5


def bench_coloring_bitset(benchmark, patterns):
    result = benchmark(color_compact, patterns, backend="bitset")
    print(
        f"\ncoloring/bitset: {result.original_count} -> "
        f"{result.compacted_count} (ratio {result.ratio:.1f}x)"
    )
    assert result == color_compact(patterns, backend="reference")


def bench_compaction_quality_parity(benchmark, patterns):
    """Greedy must land within 1.5x of the approximation's pattern count
    (the paper claims parity) — measured on the same input."""

    def both():
        return greedy_compact(patterns).compacted_count, color_compact(
            patterns
        ).compacted_count

    greedy_count, colored_count = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(f"\ngreedy={greedy_count} coloring={colored_count}")
    assert greedy_count <= colored_count * 1.5


def _time_backend(patterns, backend: str, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = greedy_compact(patterns, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the bitset kernel speedup over the reference "
        "greedy compactor and write a results JSON."
    )
    parser.add_argument("--soc", default="p93791",
                        help="benchmark SOC name (default: p93791)")
    parser.add_argument("--patterns", type=int, default=100_000,
                        help="SI pattern count N_r (default: 100000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per backend (best is kept)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the results JSON here")
    args = parser.parse_args(argv)

    from repro.soc.benchmarks import load_benchmark

    soc = load_benchmark(args.soc)
    patterns = generate_random_patterns(soc, args.patterns, seed=args.seed)
    # Warm up allocator/caches on a small run so neither backend pays
    # first-touch costs inside its timed window.
    warmup = patterns[: min(500, len(patterns))]
    greedy_compact(warmup, backend="reference")
    greedy_compact(warmup, backend="bitset")

    bitset_seconds, bitset = _time_backend(patterns, "bitset", args.repeats)
    reference_seconds, reference = _time_backend(
        patterns, "reference", args.repeats
    )
    identical = reference == bitset
    speedup = reference_seconds / bitset_seconds if bitset_seconds else 0.0

    result = {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "soc": args.soc,
        "patterns": args.patterns,
        "seed": args.seed,
        "repeats": args.repeats,
        "reference_seconds": round(reference_seconds, 3),
        "bitset_seconds": round(bitset_seconds, 3),
        "speedup": round(speedup, 2),
        "compacted_count": bitset.compacted_count,
        "compaction_ratio": round(bitset.ratio, 2),
        "identical": identical,
    }
    print(
        f"{args.soc} N={args.patterns}: reference {reference_seconds:.2f}s, "
        f"bitset {bitset_seconds:.2f}s -> {speedup:.1f}x speedup "
        f"({bitset.original_count} -> {bitset.compacted_count} patterns, "
        f"identical={identical})"
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"results written to {args.out}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
