"""Single-entry perf-trajectory benchmark: one JSON point per PR.

Starting with PR 6 every kernel-grade change appends one point to the
repository's performance trajectory (``benchmarks/results/BENCH_pr<n>.json``).
A point captures, in one run:

* **optimizer cell time** — the reference vs incremental backend over the
  ``W_max`` sweep on one SOC (warm-cache best-of-``repeats``, both engines
  in the same process so the shared ``core_test_time`` memo cannot skew
  the comparison), with a bit-identity check;
* **compaction throughput** — the packed-bitset kernel vs the reference
  scan on one pattern set;
* **end-to-end table wall-clock** — a cold `run_table_experiment` sweep,
  then a warm rerun against an on-disk cache for the **cache hit rate**;
* **parallel sweep wall-clock** — the classic one-shot process pool vs
  the persistent work-stealing ``workers`` backend on a multi-SOC table
  sweep (``--sweep-backend``), with a rendered-table identity check
  against a serial run;
* **plan layer overhead** — expansion time of the declarative table
  plan plus the ``PlanRunner`` dispatch overhead (serial wall-clock
  minus time inside the cell bodies), gated at an absolute budget
  (default 2% of the sweep wall-clock);
* **supervision overhead** — the same clean serial sweep under the
  default ``RunPolicy`` vs a fully armed one (backoff, timeout,
  deadline, breaker, partial salvage, RSS ceiling), gated at an
  absolute 2% budget at full scale (quick mode keeps a coarse noise
  ceiling) with a result-identity check;
* **service overhead** — submit-to-result wall-clock of the same table
  plan through the :mod:`repro.service` HTTP job server vs a direct
  ``PlanRunner`` run with identical persistence (fresh cache +
  checkpoint per arm), gated at an absolute 5% budget at full scale,
  plus the dedup-hit latency (re-submitting a finished fingerprint).

Absolute seconds are machine-dependent, so the regression gate
(``--check``) compares the machine-independent *ratios* — optimizer
speedup, compaction speedup, cache hit rate — and fails when any of them
degrades by more than ``--threshold`` (default 2x) against a checked-in
baseline.  Absolute numbers are recorded alongside for the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_trajectory.py \
        --out benchmarks/results/BENCH_pr6.json            # record a point
    PYTHONPATH=src python benchmarks/bench_trajectory.py \
        --quick --check benchmarks/results/BENCH_pr6.json  # CI perf smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compaction.horizontal import build_si_test_groups
from repro.compaction.vertical import greedy_compact
from repro.core.optimizer import optimize_tam
from repro.experiments.runner import PlanRunner
from repro.experiments.table_runner import run_table_experiment, table_plan
from repro.runtime import EvaluationCache
from repro.runtime.instrumentation import (
    Instrumentation,
    use_instrumentation,
)
from repro.sitest.generator import generate_random_patterns
from repro.soc.benchmarks import load_benchmark

RESULT_FORMAT = "repro-perf-trajectory"
RESULT_VERSION = 1

#: Ratio metrics the ``--check`` gate enforces (path into the result
#: JSON, higher is better).
GATED_RATIOS = (
    ("optimizer", "speedup"),
    ("compaction", "speedup"),
    ("cache", "hit_rate"),
    ("sweep", "speedup"),
)


def _best_of(repeats, fn):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


def bench_optimizer(soc_name, widths, repeats, pattern_count, seed, parts):
    """Reference vs incremental ``optimize_tam`` over the width sweep."""
    soc = load_benchmark(soc_name)
    patterns = generate_random_patterns(soc, pattern_count, seed=seed)
    groups = build_si_test_groups(soc, patterns, parts=parts, seed=seed).groups

    per_width = {}
    identical = True
    counters = {}
    for w_max in widths:
        # Warm both engines (and the process-wide core-time memo) so the
        # timed passes compare algorithms, not cache states.
        reference = optimize_tam(soc, w_max, groups, backend="reference")
        instrumentation = Instrumentation()
        with use_instrumentation(instrumentation):
            incremental = optimize_tam(
                soc, w_max, groups, backend="incremental"
            )
        counters[w_max] = {
            name: value
            for name, value in sorted(instrumentation.counters.items())
            if name.startswith(("optimizer.", "movescan."))
        }
        identical = identical and (
            reference.architecture == incremental.architecture
            and reference.evaluation == incremental.evaluation
        )
        ref_seconds = _best_of(
            repeats,
            lambda: optimize_tam(soc, w_max, groups, backend="reference"),
        )
        inc_seconds = _best_of(
            repeats,
            lambda: optimize_tam(soc, w_max, groups, backend="incremental"),
        )
        per_width[w_max] = {
            "reference_seconds": round(ref_seconds, 4),
            "incremental_seconds": round(inc_seconds, 4),
            "speedup": round(ref_seconds / inc_seconds, 2),
        }

    ref_total = sum(w["reference_seconds"] for w in per_width.values())
    inc_total = sum(w["incremental_seconds"] for w in per_width.values())
    return {
        "soc": soc_name,
        "pattern_count": pattern_count,
        "parts": parts,
        "seed": seed,
        "widths": list(widths),
        "repeats": repeats,
        "reference_seconds": round(ref_total, 4),
        "incremental_seconds": round(inc_total, 4),
        "speedup": round(ref_total / inc_total, 2),
        "identical": identical,
        "per_width": {str(w): data for w, data in per_width.items()},
        "counters": {str(w): data for w, data in counters.items()},
    }


def bench_compaction(soc_name, pattern_count, seed, repeats):
    """Reference vs packed-bitset vertical compaction throughput."""
    soc = load_benchmark(soc_name)
    patterns = generate_random_patterns(soc, pattern_count, seed=seed)
    reference = greedy_compact(patterns, backend="reference")
    bitset = greedy_compact(patterns, backend="bitset")
    identical = reference.compacted_count == bitset.compacted_count
    ref_seconds = _best_of(
        repeats, lambda: greedy_compact(patterns, backend="reference")
    )
    bit_seconds = _best_of(
        repeats, lambda: greedy_compact(patterns, backend="bitset")
    )
    return {
        "soc": soc_name,
        "patterns": pattern_count,
        "seed": seed,
        "repeats": repeats,
        "reference_seconds": round(ref_seconds, 4),
        "bitset_seconds": round(bit_seconds, 4),
        "speedup": round(ref_seconds / bit_seconds, 2),
        "patterns_per_second": round(pattern_count / bit_seconds),
        "identical": identical,
    }


def bench_table(soc_name, pattern_count, widths, parts, seed):
    """Cold end-to-end table sweep, then a warm cached rerun."""
    soc = load_benchmark(soc_name)
    with tempfile.TemporaryDirectory() as workdir:
        cache = EvaluationCache(store_dir=Path(workdir) / "cache")
        start = time.perf_counter()
        cold = run_table_experiment(
            soc, pattern_count, widths=widths, group_counts=parts,
            seed=seed, cache=cache,
        )
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_table_experiment(
            soc, pattern_count, widths=widths, group_counts=parts,
            seed=seed, cache=cache,
        )
        warm_seconds = time.perf_counter() - start
        stats = cache.stats()
    assert [row.t_min for row in cold.rows] == [
        row.t_min for row in warm.rows
    ]
    lookups = stats["hits"] + stats["misses"]
    return (
        {
            "soc": soc_name,
            "pattern_count": pattern_count,
            "widths": list(widths),
            "parts": list(parts),
            "seed": seed,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
        },
        {
            "hits": stats["hits"],
            "misses": stats["misses"],
            "hit_rate": round(stats["hits"] / lookups, 4) if lookups else 0.0,
        },
    )


def bench_sweep(regimes, jobs, seed):
    """Classic pool vs work-stealing workers backend, multi-SOC sweep.

    Each arm re-runs the same table sweeps end to end; the ratio isolates
    the fan-out machinery (warm workers, reference-shipped pattern sets,
    shared cell state) because everything else is identical.  The parent
    memo is cleared between arms so no arm inherits another's warm state.
    """
    from repro.experiments.reporting import render_table
    from repro.runtime.pool import clear_cell_state

    def sweep(soc, pattern_count, widths, parts, backend, njobs):
        clear_cell_state()
        start = time.perf_counter()
        result = run_table_experiment(
            soc, pattern_count, widths=widths, group_counts=parts,
            seed=seed, jobs=njobs, sweep_backend=backend,
        )
        return time.perf_counter() - start, render_table(result)

    per_soc = {}
    pool_total = workers_total = serial_total = 0.0
    identical = True
    for soc_name, pattern_count, widths, parts in regimes:
        soc = load_benchmark(soc_name)
        serial_seconds, serial_table = sweep(
            soc, pattern_count, widths, parts, "pool", 1
        )
        pool_seconds, pool_table = sweep(
            soc, pattern_count, widths, parts, "pool", jobs
        )
        workers_seconds, workers_table = sweep(
            soc, pattern_count, widths, parts, "workers", jobs
        )
        identical = identical and (
            serial_table == pool_table == workers_table
        )
        serial_total += serial_seconds
        pool_total += pool_seconds
        workers_total += workers_seconds
        per_soc[soc_name] = {
            "pattern_count": pattern_count,
            "widths": list(widths),
            "parts": list(parts),
            "serial_seconds": round(serial_seconds, 4),
            "pool_seconds": round(pool_seconds, 4),
            "workers_seconds": round(workers_seconds, 4),
            "speedup": round(pool_seconds / workers_seconds, 2),
        }
    return {
        "jobs": jobs,
        "seed": seed,
        "serial_seconds": round(serial_total, 4),
        "pool_seconds": round(pool_total, 4),
        "workers_seconds": round(workers_total, 4),
        "speedup": round(pool_total / workers_total, 2),
        "identical": identical,
        "per_soc": per_soc,
    }


#: Absolute ceiling for ``plan.overhead_pct`` enforced by ``--check``.
PLAN_OVERHEAD_BUDGET_PCT = 2.0


def bench_plan(soc_name, pattern_count, widths, parts, seed, repeats):
    """Plan-expansion cost + ``PlanRunner`` dispatch overhead.

    The table plan is expanded in a tight loop for the per-expansion
    cost, then run serially with every cell body wrapped in a timer:
    whatever part of the wall-clock was *not* spent inside a cell body
    (graph validation, key resolution, ref materialization, assemble)
    is the plan layer's dispatch overhead.
    """
    import dataclasses

    from repro.experiments.plan import ExperimentPlan

    soc = load_benchmark(soc_name)
    plan = table_plan(
        soc, pattern_count, widths=widths, group_counts=parts, seed=seed
    )

    iterations = 50

    def expand_many():
        for _ in range(iterations):
            plan.expand()

    expand_seconds = _best_of(repeats, expand_many) / iterations
    cells = len(plan.expand())

    cell_clock = [0.0]

    def timed(fn):
        def wrapper(*fn_args, **fn_kwargs):
            cell_start = time.perf_counter()
            try:
                return fn(*fn_args, **fn_kwargs)
            finally:
                cell_clock[0] += time.perf_counter() - cell_start

        return wrapper

    class TimedPlan(ExperimentPlan):
        def expand(self):
            return tuple(
                dataclasses.replace(cell, fn=timed(cell.fn))
                for cell in super().expand()
            )

    timed_plan = TimedPlan(plan.name, plan.params)
    best_wall = best_overhead = None
    for _ in range(repeats):
        cell_clock[0] = 0.0
        run = PlanRunner(jobs=1).run(timed_plan)
        overhead = run.wall_seconds - cell_clock[0]
        if best_wall is None or run.wall_seconds < best_wall:
            best_wall = run.wall_seconds
            best_overhead = overhead
    return {
        "soc": soc_name,
        "pattern_count": pattern_count,
        "widths": list(widths),
        "parts": list(parts),
        "seed": seed,
        "repeats": repeats,
        "cells": cells,
        "expand_seconds": round(expand_seconds, 6),
        "wall_seconds": round(best_wall, 4),
        "dispatch_seconds": round(best_overhead, 4),
        "overhead_pct": round(100.0 * best_overhead / best_wall, 3),
        "budget_pct": PLAN_OVERHEAD_BUDGET_PCT,
    }


#: Absolute ceiling for ``supervision.overhead_pct`` enforced by
#: ``--check``: arming the full policy must stay within 2% of the
#: default-policy wall-clock on a clean sweep.
SUPERVISION_OVERHEAD_BUDGET_PCT = 2.0


def bench_supervision(
    soc_name, pattern_count, widths, parts, seed, repeats,
    budget_pct=SUPERVISION_OVERHEAD_BUDGET_PCT,
):
    """Cost of an armed :class:`RunPolicy` on a clean serial sweep.

    Two arms over the identical table plan: the default policy
    (historical behavior) vs a fully armed one (backoff schedule,
    per-cell timeout, plan deadline, circuit breaker, partial salvage,
    RSS ceiling).  On a fault-free run every supervision feature is pure
    bookkeeping — per-cell policy consultation, breaker recording, the
    timeout's watchdog thread, deadline checks — so the wall-clock delta
    IS the supervision tax, gated at an absolute budget.
    """
    from repro.runtime.supervision import RetryPolicy, RunPolicy

    soc = load_benchmark(soc_name)
    plan = table_plan(
        soc, pattern_count, widths=widths, group_counts=parts, seed=seed
    )
    armed = RunPolicy(
        retry=RetryPolicy(max_attempts=3, backoff_base=0.05, seed=seed),
        cell_timeout=300.0,
        plan_deadline=3600.0,
        breaker_threshold=0.5,
        breaker_min_failures=3,
        allow_partial=True,
        max_worker_rss_bytes=8 << 30,
    )

    def run_once(policy):
        run = PlanRunner(jobs=1, policy=policy).run(plan)
        assert run.status == "complete", "clean benchmark sweep degraded"
        return run

    # Warm the process-wide memos so neither arm pays the cold start.
    baseline = run_once(RunPolicy())
    supervised = run_once(armed)
    identical = [r.t_min for r in baseline.report.rows] == [
        r.t_min for r in supervised.report.rows
    ]
    default_seconds = _best_of(repeats, lambda: run_once(RunPolicy()))
    armed_seconds = _best_of(repeats, lambda: run_once(armed))
    overhead = armed_seconds - default_seconds
    return {
        "soc": soc_name,
        "pattern_count": pattern_count,
        "widths": list(widths),
        "parts": list(parts),
        "seed": seed,
        "repeats": repeats,
        "default_seconds": round(default_seconds, 4),
        "armed_seconds": round(armed_seconds, 4),
        "overhead_seconds": round(overhead, 4),
        "overhead_pct": round(100.0 * overhead / default_seconds, 3),
        "budget_pct": budget_pct,
        "identical": identical,
    }


#: Absolute ceiling for ``service.overhead_pct`` enforced by ``--check``
#: at full scale: HTTP parse + queue + journal + render bookkeeping must
#: stay within 5% of a direct ``PlanRunner`` run.
SERVICE_OVERHEAD_BUDGET_PCT = 5.0


def bench_service(
    soc_name, pattern_count, widths, parts, seed, repeats,
    budget_pct=SERVICE_OVERHEAD_BUDGET_PCT,
):
    """Submit-to-result wall-clock through the job server vs a direct run.

    Both arms execute the identical table plan from cold persistence
    (fresh cache + checkpoint each iteration), so the service arm's
    extra wall-clock is exactly its machinery: HTTP round-trips, queue
    hand-off, journal writes, event bookkeeping, report rendering.  The
    dedup figure times a re-submission of the finished fingerprint —
    the joined job answers from the journal without re-executing.
    """
    from repro.experiments.render import render_report
    from repro.resilience.checkpoint import SweepCheckpoint
    from repro.service import ServiceClient, ServiceConfig
    from repro.service.server import OptimizationService

    soc = load_benchmark(soc_name)
    plan = table_plan(
        soc, pattern_count, widths=widths, group_counts=parts, seed=seed
    )

    def direct_once(workdir):
        runner = PlanRunner(
            jobs=1,
            cache=EvaluationCache(store_dir=Path(workdir) / "cache"),
            checkpoint=SweepCheckpoint(Path(workdir) / "checkpoint.json"),
        )
        start = time.perf_counter()
        run_result = runner.run(plan)
        return time.perf_counter() - start, render_report(
            "table", run_result.report
        )

    def service_once(workdir):
        service = OptimizationService(
            ServiceConfig(state_dir=Path(workdir) / "state", jobs=1)
        )
        service.start()
        try:
            client = ServiceClient(service.url, timeout=600.0)
            start = time.perf_counter()
            job_id = client.submit(plan)["job"]["id"]
            outcome = client.wait(job_id, timeout=600)
            elapsed = time.perf_counter() - start
            assert outcome["job"]["state"] == "ok"
            start = time.perf_counter()
            joined = client.submit(plan)
            dedup = time.perf_counter() - start
            assert joined["created"] is False
            return elapsed, dedup, outcome["result"]["rendered"]
        finally:
            service.stop()

    # Warm the process-wide memos so neither arm pays the cold start.
    with tempfile.TemporaryDirectory() as workdir:
        direct_once(workdir)

    direct_seconds = rendered_direct = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as workdir:
            elapsed, rendered_direct = direct_once(workdir)
        if direct_seconds is None or elapsed < direct_seconds:
            direct_seconds = elapsed
    service_seconds = dedup_seconds = rendered_service = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as workdir:
            elapsed, dedup, rendered_service = service_once(workdir)
        if service_seconds is None or elapsed < service_seconds:
            service_seconds = elapsed
        if dedup_seconds is None or dedup < dedup_seconds:
            dedup_seconds = dedup

    overhead = service_seconds - direct_seconds
    return {
        "soc": soc_name,
        "pattern_count": pattern_count,
        "widths": list(widths),
        "parts": list(parts),
        "seed": seed,
        "repeats": repeats,
        "direct_seconds": round(direct_seconds, 4),
        "service_seconds": round(service_seconds, 4),
        "overhead_seconds": round(overhead, 4),
        "overhead_pct": round(100.0 * overhead / direct_seconds, 3),
        "dedup_hit_seconds": round(dedup_seconds, 4),
        "budget_pct": budget_pct,
        "identical": rendered_service == rendered_direct,
    }


def run(args) -> dict:
    if args.quick:
        optimizer = bench_optimizer(
            "p93791", (16, 32), max(1, args.repeats - 1), 200, 7, 4
        )
        compaction = bench_compaction("d695", 3_000, 7, 2)
        table, cache = bench_table("d695", 500, (8, 16), (1, 2), 1)
        sweep = bench_sweep(
            [("t5", 20_000, (8, 16), (1, 2, 4))], jobs=2, seed=3
        )
        plan = bench_plan(
            "t5", 20_000, (8, 16), (1, 2, 4), 3, max(1, args.repeats - 1)
        )
        # The sub-second quick sweep is scheduling-noise dominated, so
        # the tight 2% budget only gates the full-scale run; quick mode
        # keeps a coarse sanity ceiling plus the identity check.
        supervision = bench_supervision(
            "t5", 20_000, (8, 16), (1, 2, 4), 3, max(2, args.repeats),
            budget_pct=25.0,
        )
        # Same noise argument as supervision: the quick sweep is short
        # enough that thread scheduling dominates a tight 5% budget.
        service = bench_service(
            "t5", 20_000, (8, 16), (1, 2, 4), 3, max(1, args.repeats - 1),
            budget_pct=25.0,
        )
    else:
        optimizer = bench_optimizer(
            "p93791", (16, 32, 64), args.repeats, 200, 7, 4
        )
        compaction = bench_compaction("d695", 10_000, 7, 3)
        table, cache = bench_table("d695", 2_000, (8, 16, 32), (1, 2, 4), 1)
        sweep = bench_sweep(
            [
                ("t5", 60_000, (8, 16), (1, 2, 4)),
                ("d695", 30_000, (8, 16), (1, 2, 4, 8)),
            ],
            jobs=2,
            seed=3,
        )
        plan = bench_plan(
            "t5", 60_000, (8, 16), (1, 2, 4), 3, args.repeats
        )
        supervision = bench_supervision(
            "t5", 60_000, (8, 16), (1, 2, 4), 3, args.repeats
        )
        service = bench_service(
            "t5", 60_000, (8, 16), (1, 2, 4), 3, args.repeats
        )
    return {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "pr": args.pr,
        "quick": args.quick,
        "optimizer": optimizer,
        "compaction": compaction,
        "table": table,
        "cache": cache,
        "sweep": sweep,
        "plan": plan,
        "supervision": supervision,
        "service": service,
    }


def check(result, baseline_path, threshold) -> list[str]:
    """Ratio regressions of ``result`` against a checked-in baseline."""
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    if not result["optimizer"]["identical"]:
        failures.append("optimizer backends diverged (identical=false)")
    if not result["compaction"]["identical"]:
        failures.append("compaction backends diverged (identical=false)")
    if not result["sweep"]["identical"]:
        failures.append("sweep backends diverged (identical=false)")
    plan = result.get("plan")
    if plan is not None and plan["overhead_pct"] > plan["budget_pct"]:
        failures.append(
            f"plan.overhead_pct over budget: {plan['overhead_pct']}% > "
            f"{plan['budget_pct']}%"
        )
    supervision = result.get("supervision")
    if supervision is not None:
        if not supervision["identical"]:
            failures.append(
                "supervised sweep diverged from default (identical=false)"
            )
        if supervision["overhead_pct"] > supervision["budget_pct"]:
            failures.append(
                "supervision.overhead_pct over budget: "
                f"{supervision['overhead_pct']}% > "
                f"{supervision['budget_pct']}%"
            )
    service = result.get("service")
    if service is not None:
        if not service["identical"]:
            failures.append(
                "service run diverged from direct run (identical=false)"
            )
        if service["overhead_pct"] > service["budget_pct"]:
            failures.append(
                "service.overhead_pct over budget: "
                f"{service['overhead_pct']}% > {service['budget_pct']}%"
            )
    for section, metric in GATED_RATIOS:
        # Sections absent from an older baseline (recorded before they
        # existed) have no reference to regress against.
        was = baseline.get(section, {}).get(metric)
        now = result[section][metric]
        if was is None:
            continue
        if was > 0 and now < was / threshold:
            failures.append(
                f"{section}.{metric} regressed >{threshold}x: "
                f"{was} -> {now}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-trajectory benchmark point",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="write the result JSON here")
    parser.add_argument("--pr", type=int, default=10,
                        help="PR number this point belongs to")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timed section")
    parser.add_argument("--quick", action="store_true",
                        help="CI scale: thinner sweeps, same code paths")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare ratio metrics against this baseline "
                             "JSON and exit non-zero on a regression")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed degradation factor for --check")
    args = parser.parse_args(argv)

    result = run(args)
    print(json.dumps(result, indent=2))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check is not None:
        failures = check(result, args.check, args.threshold)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf check passed against {args.check} "
            f"(threshold {args.threshold}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
