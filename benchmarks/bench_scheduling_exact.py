"""Benchmarks certifying Algorithm 1 against the exact scheduler and
timing the shift-vector emission backend.
"""

import pytest

from repro.compaction.horizontal import build_si_test_groups
from repro.core.exact_schedule import exact_si_schedule
from repro.core.optimizer import optimize_tam
from repro.core.scheduling import TamEvaluator, schedule_si_tests
from repro.sitest.generator import generate_random_patterns
from repro.sitest.vectors import expand_group


@pytest.fixture(scope="module")
def scheduling_instance(d695):
    patterns = generate_random_patterns(d695, 3_000, seed=41)
    grouping = build_si_test_groups(d695, patterns, parts=8, seed=41)
    result = optimize_tam(d695, 32, groups=grouping.groups)
    evaluator = TamEvaluator(d695, grouping.groups)
    entries = evaluator.calculate_si_test_times(result.architecture)
    return d695, grouping, result, entries, patterns


def bench_algorithm1_vs_exact_schedule(benchmark, scheduling_instance):
    _, _, _, entries, _ = scheduling_instance

    def run():
        _, greedy = schedule_si_tests(entries)
        exact = exact_si_schedule(entries)
        return greedy, exact

    greedy, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = (greedy - exact.t_si) / exact.t_si if exact.t_si else 0.0
    print(
        f"\nAlgorithm 1: {greedy} cc; exact: {exact.t_si} cc "
        f"({exact.permutations_tried} permutations, gap {gap:.1%})"
    )
    assert greedy >= exact.t_si
    assert gap <= 0.25


def bench_vector_emission(benchmark, scheduling_instance):
    soc, grouping, result, _, _ = scheduling_instance
    group = max(grouping.groups, key=lambda g: g.patterns)
    compacted = grouping.compactions[
        grouping.groups.index(group)
    ].compacted

    vectors = benchmark(
        expand_group, soc, result.architecture, group, list(compacted)
    )
    total = sum(rv.shift_cycles for rv in vectors.rails)
    print(
        f"\ngroup {group.group_id}: {group.patterns} patterns expanded to "
        f"{total} shift cycles across {len(vectors.rails)} rails"
    )
    # Emitted cycles must equal the evaluator's shift prediction exactly.
    evaluator = TamEvaluator(soc, (group,), capture_cycles=0)
    for rail_vectors in vectors.rails:
        stats = evaluator.rail_stats(
            result.architecture.rails[rail_vectors.rail_index]
        )
        assert rail_vectors.shift_cycles == stats.time_si
