"""Ablation benchmarks for design choices called out in DESIGN.md.

* Bus-usage probability: the shared-bus conflict rule is what stops
  vertical compaction from collapsing everything; sweeping the usage
  probability quantifies its cost.
* Fault-model source: MA versus reduced-MT pattern sets pushed through the
  full compaction + optimization pipeline.
* Scheduler: Algorithm 1's resource-aware packing versus naive
  serialization of the SI groups.
"""

import pytest

from repro.compaction.horizontal import build_si_test_groups
from repro.compaction.vertical import greedy_compact
from repro.core.optimizer import optimize_tam
from repro.core.scheduling import TamEvaluator, schedule_si_tests
from repro.sitest.faults import generate_ma_patterns, generate_reduced_mt_patterns
from repro.sitest.generator import GeneratorConfig, generate_random_patterns
from repro.sitest.topology import random_topology


@pytest.mark.parametrize("bus_probability", [0.0, 0.5, 1.0])
def bench_bus_probability_vs_compaction(benchmark, d695, bus_probability):
    config = GeneratorConfig(bus_probability=bus_probability)
    patterns = generate_random_patterns(d695, 3_000, seed=21, config=config)
    result = benchmark(greedy_compact, patterns)
    print(
        f"\nbus p={bus_probability}: {result.original_count} -> "
        f"{result.compacted_count} (ratio {result.ratio:.1f}x)"
    )
    assert result.compacted_count < result.original_count


@pytest.mark.parametrize("model", ["ma", "reduced_mt_k1"])
def bench_fault_model_through_pipeline(benchmark, d695, model):
    topology = random_topology(d695, fanouts_per_core=2, locality=3, seed=5)
    if model == "ma":
        patterns = list(generate_ma_patterns(topology))
    else:
        import itertools

        stream = generate_reduced_mt_patterns(topology, locality=1)
        patterns = list(itertools.islice(stream, 20_000))

    def pipeline():
        grouping = build_si_test_groups(d695, patterns, parts=4, seed=5)
        return optimize_tam(d695, 32, groups=grouping.groups)

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    print(
        f"\n{model}: {len(patterns)} patterns -> "
        f"T_total={result.t_total} (T_si={result.evaluation.t_si})"
    )
    assert result.evaluation.t_si > 0


def bench_scheduler_vs_serial(benchmark, d695):
    patterns = generate_random_patterns(d695, 4_000, seed=9)
    grouping = build_si_test_groups(d695, patterns, parts=8, seed=9)
    result = optimize_tam(d695, 48, groups=grouping.groups)
    evaluator = TamEvaluator(d695, grouping.groups)
    entries = evaluator.calculate_si_test_times(result.architecture)

    _, t_parallel = benchmark(schedule_si_tests, entries)
    t_serial = sum(entry.time_si for entry in entries)
    print(f"\nAlgorithm 1: {t_parallel} cc; naive serial: {t_serial} cc")
    assert t_parallel <= t_serial
