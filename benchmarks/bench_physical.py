"""Benchmarks for the physical-modeling extensions: crosstalk-derived
topologies, fault-dictionary diagnosis, 1500 session overhead, and the
seed-stability study.
"""

import pytest

from repro.experiments.stability import run_stability_study
from repro.sitest.crosstalk import (
    analyze_crosstalk,
    channel_placement,
    topology_from_placement,
)
from repro.sitest.diagnosis import build_dictionary, syndrome_of
from repro.sitest.faults import generate_ma_patterns
from repro.sitest.topology import Net, random_topology
from repro.wrapper.p1500 import overhead_report, session_overhead


def _nets(count):
    return [
        Net(net_id=i, driver=(1 + i % 4, i // 4), receivers=((i + 1) % 4 + 1,))
        for i in range(count)
    ]


def bench_crosstalk_analysis(benchmark):
    wires = channel_placement(400, tracks=40, seed=7)
    analysis = benchmark(analyze_crosstalk, wires)
    coupled = sum(1 for c in analysis.contributions.values() if c)
    print(f"\n400 wires: {coupled} nets with at least one aggressor")
    assert coupled > 300


def bench_physical_vs_locality_topology(benchmark):
    """Compare aggressor-set sizes of the physically derived topology
    against the index-locality heuristic on the same nets."""
    nets = _nets(200)
    wires = channel_placement(200, tracks=20, seed=3)

    def build():
        return topology_from_placement(nets, wires, noise_threshold=0.06)

    physical = benchmark(build)
    sizes = [len(physical.neighborhoods[n.net_id]) for n in nets]
    print(
        f"\nphysical aggressor sets at 60 mV threshold: mean "
        f"{sum(sizes) / len(sizes):.1f}, max {max(sizes)}"
    )
    # Track screening keeps neighborhoods bounded, but unlike the
    # index-locality heuristic (2k aggressors for every net) the sizes
    # vary with the actual geometry.
    assert max(sizes) <= 2 * 2 * 10  # two tracks either side, 10 wires each
    assert len(set(sizes)) > 3


def bench_fault_dictionary_diagnosis(benchmark, d695):
    topology = random_topology(d695, fanouts_per_core=1, locality=1, seed=6)
    patterns = list(generate_ma_patterns(topology))[:2_000]
    dictionary = build_dictionary(topology, patterns)

    fault = dictionary.detectable_faults[7]
    syndrome = syndrome_of(topology, patterns, (fault,))

    candidates = benchmark(dictionary.diagnose, syndrome)
    print(
        f"\n{len(dictionary.faults)} faults, {len(patterns)} patterns, "
        f"resolution {dictionary.diagnostic_resolution:.2f}; syndrome "
        f"matched {len(candidates)} candidate(s)"
    )
    assert fault in candidates


def bench_p1500_overhead(benchmark, d695):
    from repro.compaction.horizontal import build_si_test_groups
    from repro.core.optimizer import optimize_tam
    from repro.sitest.generator import generate_random_patterns

    patterns = generate_random_patterns(d695, 2_000, seed=17)
    grouping = build_si_test_groups(d695, patterns, parts=8, seed=17)
    result = optimize_tam(d695, 32, groups=grouping.groups)

    overhead = benchmark(
        session_overhead, d695, result.architecture, grouping.groups
    )
    print("\n" + overhead_report(
        d695, result.architecture, result.evaluation, grouping.groups
    ))
    # On a realistic SOC the 1500 control traffic stays in the low
    # percent even with eight SI groups — the standard "negligible"
    # assumption, now measured rather than assumed.
    assert overhead.relative_to(result.t_total) < 0.05


def bench_seed_stability(benchmark, d695):
    report = benchmark.pedantic(
        run_stability_study,
        args=(d695, 1_500, 24),
        kwargs={"seeds": (1, 2, 3), "group_counts": (1, 4)},
        rounds=1,
        iterations=1,
    )
    print("\n" + report.format())
    # The headline metric must not be pure noise: the spread of T_min
    # stays within 15% of its mean across seeds.
    assert report.t_min.spread <= report.t_min.mean * 0.15


def bench_generator_sensitivity(benchmark, d695):
    from repro.experiments.sensitivity import (
        format_sensitivity_report,
        run_sensitivity_study,
    )

    points = benchmark.pedantic(
        run_sensitivity_study,
        args=(d695, 2_000, 24),
        kwargs={"parts": 4, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_sensitivity_report(points))
    reference = points[0].t_total
    # The protocol knobs move T_soc by percents, not factors: the headline
    # results are algorithm-driven, not artifacts of the generator.
    for point in points:
        assert abs(point.t_total - reference) / reference < 0.25


def bench_session_simulation(benchmark, d695):
    from repro.compaction.horizontal import build_si_test_groups
    from repro.core.optimizer import optimize_tam
    from repro.core.session_sim import simulate_session
    from repro.sitest.generator import generate_random_patterns

    patterns = generate_random_patterns(d695, 2_000, seed=29)
    grouping = build_si_test_groups(d695, patterns, parts=4, seed=29)
    result = optimize_tam(d695, 32, groups=grouping.groups)

    trace = benchmark(
        simulate_session, d695, result.architecture, result.evaluation
    )
    print(
        f"\nsimulated {len(trace.events)} events; makespan "
        f"{trace.makespan} cc == analytic {result.t_total} cc"
    )
    assert trace.makespan == result.t_total
