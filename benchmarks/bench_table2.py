"""Benchmark regenerating the paper's **Table 2**: overall test time
comparison for SOC p34392.

Columns: ``T_[8]`` (SI-oblivious TR-Architect), ``T_g1..T_g8`` (proposed
TAM_Optimization with the SI tests split into 1/2/4/8 groups), ``T_min``,
``ΔT_[8]`` and ``ΔT_g`` — for each ``W_max`` and each ``N_r``.

Shape expectations from the paper: the proposed flow wins by more as
``W_max`` and ``N_r`` grow; at ``W_max = 8`` it can tie or slightly lose;
``ΔT_g`` (the benefit of 2-D over 1-D compaction) is up to ~14%.
"""

import pytest

from benchmarks.conftest import TABLE_PATTERN_COUNTS, TABLE_WIDTHS
from repro.experiments.reporting import render_table, save_result
from repro.experiments.table_runner import run_table_experiment


@pytest.mark.parametrize("pattern_count", TABLE_PATTERN_COUNTS)
def bench_table2_p34392(benchmark, p34392, pattern_count, results_dir):
    result = benchmark.pedantic(
        run_table_experiment,
        args=(p34392, pattern_count),
        kwargs={"widths": TABLE_WIDTHS, "seed": 1},
        rounds=1,
        iterations=1,
    )
    table = render_table(result)
    save_result(result, results_dir / f"table2_nr{pattern_count}.json")
    (results_dir / f"table2_nr{pattern_count}.txt").write_text(table + "\n")
    print()
    print(table)

    # Shape checks mirroring the paper's observations.
    widest = result.rows[-1]
    assert widest.delta_baseline_pct > 0, (
        "SI-aware optimization must beat the SI-oblivious baseline at wide "
        "TAMs"
    )
    times = [row.t_min for row in result.rows]
    assert times == sorted(times, reverse=True), (
        "T_min must be non-increasing in W_max"
    )
