"""Benchmark regenerating the paper's **Fig. 3 / Example 1**: the same SOC
and SI test groups under two TAM designs, showing that the SI testing time
of the *same* group differs with the architecture and that the scheduler
exploits disjoint rail sets.
"""

from repro.compaction.groups import SITestGroup
from repro.core.scheduling import TamEvaluator
from repro.soc.model import Soc
from repro.tam.gantt import render_schedule
from repro.tam.testrail import TestRail, TestRailArchitecture
from tests.conftest import make_core

WOC = {1: 8, 2: 16, 3: 8, 4: 8, 5: 4}


def _setup():
    soc = Soc(
        name="fig3",
        cores=tuple(
            make_core(core_id, inputs=4, outputs=WOC[core_id], patterns=10)
            for core_id in sorted(WOC)
        ),
    )
    groups = (
        SITestGroup(group_id=1, cores=frozenset({1, 2, 3, 4, 5}), patterns=10),
        SITestGroup(group_id=2, cores=frozenset({1, 4, 5}), patterns=5),
        SITestGroup(group_id=3, cores=frozenset({2, 3}), patterns=4),
    )
    design_a = TestRailArchitecture(
        rails=(
            TestRail.of([1, 2], width=2),
            TestRail.of([3, 4], width=2),
            TestRail.of([5], width=1),
        )
    )
    design_b = TestRailArchitecture(
        rails=(
            TestRail.of([1, 4, 5], width=2),
            TestRail.of([2, 3], width=3),
        )
    )
    return soc, groups, design_a, design_b


def bench_example1_schedules(benchmark):
    soc, groups, design_a, design_b = _setup()
    evaluator = TamEvaluator(soc, groups)

    def evaluate_both():
        return evaluator.evaluate(design_a), evaluator.evaluate(design_b)

    eval_a, eval_b = benchmark(evaluate_both)

    print("\n--- Fig. 3(a) ---")
    print(render_schedule(soc, design_a, eval_a))
    print("--- Fig. 3(b) ---")
    print(render_schedule(soc, design_b, eval_b))

    si1_a = next(e.time_si for e in eval_a.schedule if e.group_id == 1)
    si1_b = next(e.time_si for e in eval_b.schedule if e.group_id == 1)
    # Example 1's headline: T_si1 depends on the TAM design.
    assert si1_a == 130 and si1_b == 110
