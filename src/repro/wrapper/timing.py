"""Core-internal (InTest) test-time model.

Uses the standard scan test time formula from the wrapper/TAM
co-optimization literature [Iyengar, Chakrabarty, Marinissen, JETTA 2002]:

    T(w) = (1 + max(s_i, s_o)) * p + min(s_i, s_o)

where ``s_i``/``s_o`` are the longest wrapper scan-in/scan-out chains of the
balanced wrapper at width ``w`` and ``p`` is the pattern count.  Pipelining
of scan-in of pattern ``k+1`` with scan-out of pattern ``k`` is assumed,
giving the ``max``/``min`` structure.

Cores can carry several test sets (ITC'02 ``Test`` blocks); their times
add up because they reuse the same wrapper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.soc.model import Core
from repro.wrapper.design import design_wrapper


@lru_cache(maxsize=None)
def core_test_time(core: Core, width: int) -> int:
    """InTest application time (clock cycles) of ``core`` at TAM ``width``."""
    design = design_wrapper(core, width)
    scan_in = design.max_scan_in
    scan_out = design.max_scan_out
    longest = max(scan_in, scan_out)
    shortest = min(scan_in, scan_out)
    total = 0
    for test in core.tests:
        if test.patterns == 0:
            continue
        total += (1 + longest) * test.patterns + shortest
    return total


def core_time_table(core: Core, max_width: int) -> tuple[int, ...]:
    """InTest times of ``core`` for every width ``1..max_width``.

    Index ``w - 1`` holds the time at width ``w``.  Useful for Pareto
    analysis and for fast lookups inside the optimizers.
    """
    if max_width <= 0:
        raise ValueError(f"max_width must be positive, got {max_width}")
    return tuple(core_test_time(core, width) for width in range(1, max_width + 1))


def pareto_widths(core: Core, max_width: int) -> tuple[int, ...]:
    """Widths in ``1..max_width`` at which the core's test time strictly
    improves over all smaller widths.

    Because wrapper chains cannot be shorter than the longest internal scan
    chain, test time is a staircase function of width; only the Pareto
    widths are worth assigning.
    """
    table = core_time_table(core, max_width)
    best = None
    result = []
    for width, time in enumerate(table, start=1):
        if best is None or time < best:
            best = time
            result.append(width)
    return tuple(result)
