"""Balanced test-wrapper design for embedded cores.

Implements the ``Combine``-style wrapper construction of Marinissen, Goel and
Lousberg [ITC 2000], as used by the paper for InTest mode:

1. Core-internal scan chains are partitioned over the available TAM width
   with the Largest Processing Time (LPT) heuristic — longest chain first,
   always onto the currently shortest wrapper chain.
2. Wrapper input cells (functional inputs + bidirs) are then distributed to
   balance the *scan-in* lengths, and wrapper output cells (outputs + bidirs)
   to balance the *scan-out* lengths.

The outcome is characterized by ``s_i`` (longest wrapper scan-in chain) and
``s_o`` (longest wrapper scan-out chain), which determine the core test time.

For SI test mode wrapper chains contain wrapper *output* cells only; the
paper assumes balanced chains, i.e. shift depth ``ceil(woc / width)``
(see :func:`si_shift_depth`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache

from repro.soc.model import Core


@dataclass(frozen=True)
class WrapperDesign:
    """A balanced wrapper configuration for one core at one TAM width.

    Attributes:
        width: Number of TAM wires (== number of wrapper scan chains).
        scan_in_lengths: Scan-in length of each wrapper chain
            (input cells + internal scan cells on that chain).
        scan_out_lengths: Scan-out length of each wrapper chain
            (internal scan cells + output cells on that chain).
    """

    width: int
    scan_in_lengths: tuple[int, ...]
    scan_out_lengths: tuple[int, ...]

    @property
    def max_scan_in(self) -> int:
        """Longest wrapper scan-in chain, ``s_i``."""
        return max(self.scan_in_lengths, default=0)

    @property
    def max_scan_out(self) -> int:
        """Longest wrapper scan-out chain, ``s_o``."""
        return max(self.scan_out_lengths, default=0)


def _lpt_partition(lengths: tuple[int, ...], bins: int) -> list[int]:
    """Partition ``lengths`` over ``bins`` bins with the LPT heuristic.

    Returns the resulting bin loads (length ``bins``).
    """
    loads = [0] * bins
    if not lengths:
        return loads
    # Heap of (load, bin index) — longest item goes to the least-loaded bin.
    heap = [(0, index) for index in range(bins)]
    heapq.heapify(heap)
    for length in sorted(lengths, reverse=True):
        load, index = heapq.heappop(heap)
        loads[index] = load + length
        heapq.heappush(heap, (loads[index], index))
    return loads


def _distribute_cells(base_lengths: list[int], cells: int) -> list[int]:
    """Add ``cells`` single-bit wrapper cells onto the chains in
    ``base_lengths`` so that the maximum resulting length is minimized.

    Greedy one-cell-at-a-time onto the currently shortest chain, which is
    optimal for unit-size items.
    """
    result = list(base_lengths)
    if cells <= 0 or not result:
        return result
    heap = [(length, index) for index, length in enumerate(result)]
    heapq.heapify(heap)
    for _ in range(cells):
        length, index = heapq.heappop(heap)
        result[index] = length + 1
        heapq.heappush(heap, (result[index], index))
    return result


def _ffd_fits(lengths: tuple[int, ...], bins: int, capacity: int) -> bool:
    """First-fit-decreasing feasibility check for the MULTIFIT search."""
    loads = [0] * bins
    for length in sorted(lengths, reverse=True):
        if length > capacity:
            return False
        for index in range(bins):
            if loads[index] + length <= capacity:
                loads[index] += length
                break
        else:
            return False
    return True


def _multifit_partition(lengths: tuple[int, ...], bins: int) -> list[int]:
    """Partition via MULTIFIT [Coffman, Garey, Johnson 1978]: binary-search
    the smallest capacity for which first-fit-decreasing packs into
    ``bins`` bins.  Often beats LPT on adversarial chain length mixes.
    """
    if not lengths:
        return [0] * bins
    low = max(max(lengths), -(-sum(lengths) // bins))
    high = sum(lengths)
    while low < high:
        middle = (low + high) // 2
        if _ffd_fits(lengths, bins, middle):
            high = middle
        else:
            low = middle + 1
    # Reconstruct the packing at the found capacity.
    loads = [0] * bins
    for length in sorted(lengths, reverse=True):
        for index in range(bins):
            if loads[index] + length <= low:
                loads[index] += length
                break
    return loads


_PARTITIONERS = {"lpt": _lpt_partition, "multifit": _multifit_partition}


@lru_cache(maxsize=None)
def design_wrapper(core: Core, width: int, strategy: str = "lpt") -> WrapperDesign:
    """Design a balanced test wrapper for ``core`` using ``width`` TAM wires.

    Bidirectional terminals contribute a cell to both the scan-in and the
    scan-out path, following the usual convention in the TAM literature.

    Args:
        core: The core to wrap.
        width: Number of TAM wires.
        strategy: Scan-chain balancing heuristic — ``"lpt"`` (the Combine
            procedure's choice, default) or ``"multifit"`` (binary-searched
            first-fit-decreasing; sometimes shorter on adversarial chain
            mixes).

    Raises:
        ValueError: If ``width`` is not positive or ``strategy`` unknown.
    """
    if width <= 0:
        raise ValueError(f"TAM width must be positive, got {width}")
    if strategy not in _PARTITIONERS:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from "
            f"{sorted(_PARTITIONERS)}"
        )

    scan_loads = _PARTITIONERS[strategy](core.scan_chains, width)
    scan_in = _distribute_cells(scan_loads, core.inputs + core.bidirs)
    scan_out = _distribute_cells(scan_loads, core.outputs + core.bidirs)
    return WrapperDesign(
        width=width,
        scan_in_lengths=tuple(scan_in),
        scan_out_lengths=tuple(scan_out),
    )


def si_shift_depth(core: Core, width: int) -> int:
    """Shift depth of the core's SI-mode wrapper chains at ``width`` wires.

    In SI test mode wrapper chains contain wrapper output cells only and are
    assumed balanced (paper, Section 4), hence depth ``ceil(woc / width)``.
    A core with no output cells contributes zero shift cycles.
    """
    if width <= 0:
        raise ValueError(f"TAM width must be positive, got {width}")
    woc = core.woc_count
    return -(-woc // width) if woc else 0
