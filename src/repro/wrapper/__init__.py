"""Test wrapper design and InTest timing."""

from repro.wrapper.cells import (
    CellLibrary,
    WrapperOverhead,
    core_wrapper_overhead,
    format_overhead_report,
    soc_si_area_um2,
    soc_wrapper_overhead,
)
from repro.wrapper.design import WrapperDesign, design_wrapper, si_shift_depth
from repro.wrapper.netlist import (
    WrapperCell,
    WrapperChain,
    WrapperNetlist,
    build_wrapper_netlist,
    format_wrapper_summary,
    save_wrapper_netlist,
)
from repro.wrapper.p1500 import (
    SessionOverhead,
    WirConfig,
    core_wir_length,
    overhead_report,
    session_overhead,
)
from repro.wrapper.timing import core_test_time, core_time_table, pareto_widths

__all__ = [
    "CellLibrary",
    "WrapperCell",
    "WrapperChain",
    "WrapperDesign",
    "WrapperNetlist",
    "build_wrapper_netlist",
    "format_wrapper_summary",
    "save_wrapper_netlist",
    "SessionOverhead",
    "WirConfig",
    "WrapperOverhead",
    "core_wir_length",
    "overhead_report",
    "session_overhead",
    "core_wrapper_overhead",
    "format_overhead_report",
    "soc_si_area_um2",
    "soc_wrapper_overhead",
    "core_test_time",
    "core_time_table",
    "design_wrapper",
    "pareto_widths",
    "si_shift_depth",
]
