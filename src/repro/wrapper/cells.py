"""Hardware model of SI-capable wrapper cells and their DFT overhead.

The paper assumes IEEE 1500 compatible wrappers with "some additional
hardware added for signal integrity test" (Section 2): wrapper output
cells (WOCs) need a transition generator able to launch two consecutive
values, and wrapper input cells (WICs) need an integrity-loss sensor (ILS)
in the style of Bai/Dey/Rajski [DAC 2000] or Tehranipour et al.
[VTS 2003] that latches noise/delay violations.

This module prices that extra hardware so that the area cost of making an
SOC SI-testable can be reported next to the test-time gains.  Gate counts
are parameterized; the defaults follow the cell structures described in
the cited papers (a standard 1500 cell is roughly a mux + flop; the SI
extensions add a second flop stage for the WOC's vector pair and a sensor
latch + comparison logic for the WIC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.model import Core, Soc


@dataclass(frozen=True)
class CellLibrary:
    """Gate-equivalent costs of the wrapper cell variants.

    Attributes:
        standard_cell_gates: A plain IEEE 1500 wrapper boundary cell
            (capture/shift flop plus routing muxes).
        transition_generator_gates: Extra gates a WOC needs to launch the
            second vector of an SI vector pair (one more flop + mux).
        ils_sensor_gates: Extra gates a WIC needs for the integrity-loss
            sensor (noise/skew detector plus sticky latch).
        gate_area_um2: Silicon area of one gate equivalent.
    """

    standard_cell_gates: float = 10.0
    transition_generator_gates: float = 6.0
    ils_sensor_gates: float = 14.0
    gate_area_um2: float = 1.2

    def __post_init__(self) -> None:
        for label in (
            "standard_cell_gates",
            "transition_generator_gates",
            "ils_sensor_gates",
            "gate_area_um2",
        ):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")


@dataclass(frozen=True)
class WrapperOverhead:
    """DFT overhead breakdown for one core (gate equivalents).

    ``standard`` is what a plain 1500 wrapper costs anyway; ``si_extra``
    is the *additional* price of SI testability, the quantity that trades
    against the test-time savings.
    """

    core_id: int
    standard: float
    si_extra: float

    @property
    def total(self) -> float:
        return self.standard + self.si_extra

    @property
    def si_fraction(self) -> float:
        """Share of the wrapper spent on SI support."""
        if self.total == 0:
            return 0.0
        return self.si_extra / self.total


def core_wrapper_overhead(
    core: Core, library: CellLibrary = CellLibrary()
) -> WrapperOverhead:
    """Gate cost of an SI-capable wrapper for ``core``.

    Every functional terminal gets a standard 1500 cell; every output-side
    cell (outputs + bidirs) additionally gets a transition generator and
    every input-side cell (inputs + bidirs) an ILS sensor — bidirs carry
    both roles, as they both launch onto and receive from interconnects.
    """
    standard = core.terminal_count * library.standard_cell_gates
    si_extra = (
        core.woc_count * library.transition_generator_gates
        + core.wic_count * library.ils_sensor_gates
    )
    return WrapperOverhead(core_id=core.core_id, standard=standard,
                           si_extra=si_extra)


def soc_wrapper_overhead(
    soc: Soc, library: CellLibrary = CellLibrary()
) -> tuple[WrapperOverhead, ...]:
    """Per-core wrapper overheads for the whole SOC."""
    return tuple(core_wrapper_overhead(core, library) for core in soc)


def soc_si_area_um2(soc: Soc, library: CellLibrary = CellLibrary()) -> float:
    """Total *additional* silicon area (um^2) SI testability costs."""
    return sum(
        overhead.si_extra for overhead in soc_wrapper_overhead(soc, library)
    ) * library.gate_area_um2


def format_overhead_report(
    soc: Soc, library: CellLibrary = CellLibrary()
) -> str:
    """Readable per-core overhead table."""
    overheads = soc_wrapper_overhead(soc, library)
    lines = [
        f"{'core':>5} {'terminals':>9} {'1500 gates':>11} "
        f"{'SI extra':>9} {'SI share':>9}"
    ]
    for core, overhead in zip(soc, overheads):
        lines.append(
            f"{core.core_id:>5} {core.terminal_count:>9} "
            f"{overhead.standard:>11.0f} {overhead.si_extra:>9.0f} "
            f"{overhead.si_fraction:>8.1%}"
        )
    total_standard = sum(o.standard for o in overheads)
    total_extra = sum(o.si_extra for o in overheads)
    lines.append(
        f"{'total':>5} {soc.total_terminals:>9} {total_standard:>11.0f} "
        f"{total_extra:>9.0f} "
        f"{total_extra / (total_standard + total_extra):>8.1%}"
    )
    lines.append(
        f"additional SI area: {soc_si_area_um2(soc, library):,.0f} um^2"
    )
    return "\n".join(lines)
