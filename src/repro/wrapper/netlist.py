"""Structural wrapper netlist generation.

Turns a :class:`~repro.wrapper.design.WrapperDesign` into an explicit
IEEE 1500 style structure: named cells (WIC/WOC/internal scan segments)
wired into wrapper scan chains between the Wrapper Serial Input/Output
ports, plus the WIR and bypass.  This is the artifact a DFT-insertion flow
would hand to synthesis; here it makes the wrapper model *auditable* —
every cell the timing model charges for exists in the netlist, which the
tests check cell-by-cell.

Cell types:

* ``WIC`` — wrapper input cell; with SI support it carries an
  integrity-loss sensor (``ils`` flag).
* ``WOC`` — wrapper output cell; with SI support it carries a transition
  generator (``transition_generator`` flag).
* ``SCAN`` — a core-internal scan-chain segment (length recorded, not
  expanded into flops).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.soc.model import Core
from repro.wrapper.design import design_wrapper


@dataclass(frozen=True)
class WrapperCell:
    """One element of a wrapper scan chain.

    Attributes:
        name: Unique instance name within the wrapper.
        cell_type: ``WIC``, ``WOC`` or ``SCAN``.
        length: Scan length of the element (1 for boundary cells).
        ils: WICs only — integrity-loss sensor present.
        transition_generator: WOCs only — vector-pair launch hardware.
    """

    name: str
    cell_type: str
    length: int = 1
    ils: bool = False
    transition_generator: bool = False


@dataclass(frozen=True)
class WrapperChain:
    """One wrapper scan chain from WSI[i] to WSO[i]."""

    index: int
    cells: tuple[WrapperCell, ...]

    @property
    def scan_in_length(self) -> int:
        """Cells on the scan-in path: WICs and scan segments."""
        return sum(
            cell.length for cell in self.cells
            if cell.cell_type in ("WIC", "SCAN")
        )

    @property
    def scan_out_length(self) -> int:
        """Cells on the scan-out path: scan segments and WOCs."""
        return sum(
            cell.length for cell in self.cells
            if cell.cell_type in ("SCAN", "WOC")
        )


@dataclass(frozen=True)
class WrapperNetlist:
    """Complete structural wrapper of one core at one TAM width."""

    core_id: int
    core_name: str
    width: int
    si_capable: bool
    chains: tuple[WrapperChain, ...]
    wir_bits: int = 4

    @property
    def cell_count(self) -> int:
        return sum(len(chain.cells) for chain in self.chains)

    @property
    def boundary_cell_count(self) -> int:
        return sum(
            1
            for chain in self.chains
            for cell in chain.cells
            if cell.cell_type in ("WIC", "WOC")
        )

    def to_dict(self) -> dict:
        return {
            "format": "repro-wrapper-netlist",
            "version": 1,
            "core_id": self.core_id,
            "core_name": self.core_name,
            "width": self.width,
            "si_capable": self.si_capable,
            "wir_bits": self.wir_bits,
            "chains": [
                {
                    "index": chain.index,
                    "cells": [asdict(cell) for cell in chain.cells],
                }
                for chain in self.chains
            ],
        }


def build_wrapper_netlist(
    core: Core,
    width: int,
    si_capable: bool = True,
    wir_bits: int = 4,
) -> WrapperNetlist:
    """Generate the structural wrapper matching :func:`design_wrapper`.

    The same LPT assignment drives both, so the netlist's per-chain
    scan-in/scan-out lengths reproduce the design's — asserted before
    returning, making the timing model auditable against structure.
    """
    design = design_wrapper(core, width)

    # Reproduce the LPT scan-chain assignment deterministically.
    import heapq

    loads = [0] * width
    heap = [(0, index) for index in range(width)]
    heapq.heapify(heap)
    scan_of_chain: list[list[int]] = [[] for _ in range(width)]
    for length in sorted(core.scan_chains, reverse=True):
        load, index = heapq.heappop(heap)
        scan_of_chain[index].append(length)
        loads[index] = load + length
        heapq.heappush(heap, (loads[index], index))

    # Distribute boundary cells exactly like _distribute_cells: greedy
    # one-at-a-time onto the currently shortest side.
    def distribute(counts: list[int], total: int) -> list[int]:
        result = [0] * width
        side = [counts[index] for index in range(width)]
        heap2 = [(side[index], index) for index in range(width)]
        heapq.heapify(heap2)
        for _ in range(total):
            length, index = heapq.heappop(heap2)
            result[index] += 1
            heapq.heappush(heap2, (length + 1, index))
        return result

    wics = distribute(loads, core.inputs + core.bidirs)
    wocs = distribute(loads, core.outputs + core.bidirs)

    chains = []
    for index in range(width):
        cells: list[WrapperCell] = []
        for wic_index in range(wics[index]):
            cells.append(
                WrapperCell(
                    name=f"wic_{index}_{wic_index}",
                    cell_type="WIC",
                    ils=si_capable,
                )
            )
        for segment_index, length in enumerate(scan_of_chain[index]):
            cells.append(
                WrapperCell(
                    name=f"scan_{index}_{segment_index}",
                    cell_type="SCAN",
                    length=length,
                )
            )
        for woc_index in range(wocs[index]):
            cells.append(
                WrapperCell(
                    name=f"woc_{index}_{woc_index}",
                    cell_type="WOC",
                    transition_generator=si_capable,
                )
            )
        chains.append(WrapperChain(index=index, cells=tuple(cells)))

    netlist = WrapperNetlist(
        core_id=core.core_id,
        core_name=core.name,
        width=width,
        si_capable=si_capable,
        chains=tuple(chains),
        wir_bits=wir_bits,
    )

    # Audit: the structure must reproduce the design's chain lengths.
    if max(chain.scan_in_length for chain in chains) != design.max_scan_in:
        raise AssertionError("netlist scan-in length diverges from design")
    if max(chain.scan_out_length for chain in chains) != design.max_scan_out:
        raise AssertionError("netlist scan-out length diverges from design")
    return netlist


def save_wrapper_netlist(netlist: WrapperNetlist, path: str | Path) -> None:
    """Write the netlist as JSON."""
    Path(path).write_text(json.dumps(netlist.to_dict(), indent=2) + "\n")


def format_wrapper_summary(netlist: WrapperNetlist) -> str:
    """Short text summary of the wrapper structure."""
    lines = [
        f"wrapper for core {netlist.core_id} ({netlist.core_name}) at "
        f"width {netlist.width} "
        f"({'SI-capable' if netlist.si_capable else 'plain 1500'})"
    ]
    for chain in netlist.chains:
        wics = sum(1 for cell in chain.cells if cell.cell_type == "WIC")
        wocs = sum(1 for cell in chain.cells if cell.cell_type == "WOC")
        scan = sum(
            cell.length for cell in chain.cells if cell.cell_type == "SCAN"
        )
        lines.append(
            f"  chain {chain.index}: {wics} WIC + {scan} scan FF + "
            f"{wocs} WOC (in {chain.scan_in_length} / "
            f"out {chain.scan_out_length})"
        )
    lines.append(f"  WIR: {netlist.wir_bits} bits; bypass: 1 bit")
    return "\n".join(lines)
