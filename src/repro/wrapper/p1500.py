"""IEEE 1500 session modeling: instruction overhead between tests.

Switching a wrapped core between modes (InTest, ExTest/SI, bypass) shifts
an instruction through its Wrapper Instruction Register (WIR) over the
Wrapper Serial Port.  Architecture optimizers usually ignore this
constant-ish overhead; this module prices it so users can check the
assumption for their SOC — with many small SI groups the WIR traffic is
not always negligible.

Model: WIRs of the cores on one rail are daisy-chained on the rail's
serial control path, so loading new instructions for a rail costs the sum
of its cores' WIR lengths (plus Update/Capture cycles).  A test session
is: one instruction load per rail per *phase transition* its cores
participate in — InTest setup, one setup per SI group the rail serves,
and a final bypass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.compaction.groups import SITestGroup
from repro.soc.model import Core, Soc
from repro.tam.testrail import TestRailArchitecture

if TYPE_CHECKING:
    from repro.core.scheduling import Evaluation


@dataclass(frozen=True)
class WirConfig:
    """Wrapper Instruction Register parameters.

    Attributes:
        instruction_bits: WIR length per core (1500 mandates >= 3 ops:
            WS_BYPASS, WS_EXTEST, plus user ops; real WIRs are 3–8 bits).
        update_cycles: Update/Capture cycles after each shift.
    """

    instruction_bits: int = 4
    update_cycles: int = 2

    def __post_init__(self) -> None:
        if self.instruction_bits <= 0:
            raise ValueError("instruction_bits must be positive")
        if self.update_cycles < 0:
            raise ValueError("update_cycles must be non-negative")


def core_wir_length(core: Core, config: WirConfig = WirConfig()) -> int:
    """WIR length of one core — constant per the 1500 standard."""
    del core  # uniform WIRs; parameter kept for future per-core overrides
    return config.instruction_bits


@dataclass(frozen=True)
class SessionOverhead:
    """WIR traffic of one complete test session.

    Attributes:
        instruction_loads: Number of per-rail instruction load operations.
        total_cycles: Cycles spent shifting/updating WIRs overall.
    """

    instruction_loads: int
    total_cycles: int

    def relative_to(self, t_soc: int) -> float:
        """Overhead as a fraction of the payload test time."""
        if t_soc <= 0:
            raise ValueError("t_soc must be positive")
        return self.total_cycles / t_soc


def session_overhead(
    soc: Soc,
    architecture: TestRailArchitecture,
    groups: tuple[SITestGroup, ...] = (),
    config: WirConfig = WirConfig(),
) -> SessionOverhead:
    """Price the WIR traffic of the full InTest + SI session.

    Per rail: one load to enter InTest, one load per SI group the rail
    serves (its cores must switch between SI-drive and bypass roles), and
    one final load back to bypass/functional.
    """
    loads = 0
    cycles = 0
    for rail in architecture.rails:
        chain_bits = sum(
            core_wir_length(soc.core_by_id(core_id), config)
            for core_id in rail.cores
        )
        rail_cores = set(rail.cores)
        si_sessions = sum(
            1 for group in groups
            if not group.is_empty and rail_cores & group.cores
        )
        rail_loads = 1 + si_sessions + 1
        loads += rail_loads
        cycles += rail_loads * (chain_bits + config.update_cycles)
    return SessionOverhead(instruction_loads=loads, total_cycles=cycles)


def overhead_report(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
    groups: tuple[SITestGroup, ...] = (),
    config: WirConfig = WirConfig(),
) -> str:
    """One-paragraph report: is the 1500 control overhead negligible?"""
    overhead = session_overhead(soc, architecture, groups, config)
    fraction = overhead.relative_to(max(evaluation.t_total, 1))
    verdict = "negligible" if fraction < 0.01 else "NOT negligible"
    return (
        f"1500 session overhead: {overhead.instruction_loads} instruction "
        f"loads, {overhead.total_cycles} cycles = {fraction:.2%} of "
        f"T_soc ({verdict})"
    )
