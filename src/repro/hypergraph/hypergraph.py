"""Weighted hypergraph data structure for the partitioner.

Vertices are integers ``0 .. n-1`` with positive integer weights; hyperedges
are sets of at least two distinct vertices with positive integer weights.
In the SI-compaction use case vertices are cores (weight = wrapper output
cell count) and hyperedges are distinct care-core sets (weight = number of
patterns with that care set), following Fig. 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Hypergraph:
    """An immutable-by-convention weighted hypergraph.

    Attributes:
        vertex_weights: Weight of each vertex; defines the vertex count.
        edges: Pin lists, each a sorted tuple of distinct vertex indices.
        edge_weights: Weight of each edge, parallel to ``edges``.
    """

    vertex_weights: list[int]
    edges: list[tuple[int, ...]] = field(default_factory=list)
    edge_weights: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.edge_weights):
            raise ValueError("edges and edge_weights must have equal length")
        if any(weight <= 0 for weight in self.vertex_weights):
            raise ValueError("vertex weights must be positive")
        if any(weight <= 0 for weight in self.edge_weights):
            raise ValueError("edge weights must be positive")
        n = len(self.vertex_weights)
        for pins in self.edges:
            if len(pins) < 2:
                raise ValueError(f"hyperedge {pins} has fewer than two pins")
            if len(set(pins)) != len(pins):
                raise ValueError(f"hyperedge {pins} has duplicate pins")
            if any(not 0 <= pin < n for pin in pins):
                raise ValueError(f"hyperedge {pins} references unknown vertex")

    @property
    def vertex_count(self) -> int:
        return len(self.vertex_weights)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    @property
    def total_vertex_weight(self) -> int:
        return sum(self.vertex_weights)

    def incidence(self) -> list[list[int]]:
        """Edge indices incident to each vertex."""
        incident: list[list[int]] = [[] for _ in range(self.vertex_count)]
        for edge_index, pins in enumerate(self.edges):
            for pin in pins:
                incident[pin].append(edge_index)
        return incident


def build_hypergraph(
    vertex_weights: list[int],
    weighted_edges: dict[frozenset[int], int],
) -> Hypergraph:
    """Build a hypergraph from a ``{pin set: weight}`` mapping.

    Pin sets with fewer than two vertices are dropped (they can never be
    cut), matching how care-core sets of single-core patterns behave.
    """
    edges = []
    edge_weights = []
    for pins in sorted(weighted_edges, key=sorted):
        if len(pins) < 2:
            continue
        edges.append(tuple(sorted(pins)))
        edge_weights.append(weighted_edges[pins])
    return Hypergraph(
        vertex_weights=list(vertex_weights),
        edges=edges,
        edge_weights=edge_weights,
    )


def cut_weight(graph: Hypergraph, assignment: list[int]) -> int:
    """Total weight of hyperedges spanning more than one part."""
    if len(assignment) != graph.vertex_count:
        raise ValueError("assignment length must equal vertex count")
    total = 0
    for pins, weight in zip(graph.edges, graph.edge_weights):
        first = assignment[pins[0]]
        if any(assignment[pin] != first for pin in pins[1:]):
            total += weight
    return total


def part_weights(graph: Hypergraph, assignment: list[int], parts: int) -> list[int]:
    """Sum of vertex weights per part."""
    weights = [0] * parts
    for vertex, part in enumerate(assignment):
        weights[part] += graph.vertex_weights[vertex]
    return weights
