"""Multilevel hypergraph partitioning (hMetis substitute)."""

from repro.hypergraph.hypergraph import (
    Hypergraph,
    build_hypergraph,
    cut_weight,
    part_weights,
)
from repro.hypergraph.multilevel import PartitionResult, partition

__all__ = [
    "Hypergraph",
    "PartitionResult",
    "build_hypergraph",
    "cut_weight",
    "part_weights",
    "partition",
]
