"""Fiduccia–Mattheyses (FM) refinement for hypergraph bisection.

Standard pass-based FM: every vertex may move once per pass; the move with
the highest cut gain that keeps the bisection within the balance envelope is
applied; at the end of a pass the best prefix of moves is kept.  Gains use
the usual hyperedge pin-count rule — moving ``v`` from part ``a`` to part
``b`` removes edge ``e`` from the cut when ``v`` is the only pin of ``e`` in
``a`` and adds ``e`` to the cut when no pin of ``e`` was in ``b``.
"""

from __future__ import annotations

import heapq

from repro.hypergraph.hypergraph import Hypergraph


class BalanceEnvelope:
    """Admissible weight range for part 0 of a bisection.

    Args:
        target0: Ideal weight of part 0.
        total: Total vertex weight.
        epsilon: Allowed relative deviation from the target.
        slack: Absolute slack added on both sides; callers set this to the
            maximum vertex weight so that lumpy weights never make the
            envelope infeasible.
    """

    def __init__(self, target0: int, total: int, epsilon: float, slack: int) -> None:
        margin = max(int(target0 * epsilon), slack)
        self.lower = max(0, target0 - margin)
        self.upper = min(total, target0 + margin)

    def admits(self, weight0: int) -> bool:
        return self.lower <= weight0 <= self.upper


def _pin_counts(
    graph: Hypergraph, assignment: list[int]
) -> tuple[list[int], list[int]]:
    """Pins of each edge in part 0 and part 1."""
    in0 = [0] * graph.edge_count
    in1 = [0] * graph.edge_count
    for edge_index, pins in enumerate(graph.edges):
        for pin in pins:
            if assignment[pin] == 0:
                in0[edge_index] += 1
            else:
                in1[edge_index] += 1
    return in0, in1


def _gain(
    graph: Hypergraph,
    incident: list[list[int]],
    in0: list[int],
    in1: list[int],
    vertex: int,
    part: int,
) -> int:
    gain = 0
    for edge_index in incident[vertex]:
        weight = graph.edge_weights[edge_index]
        same = in0[edge_index] if part == 0 else in1[edge_index]
        other = in1[edge_index] if part == 0 else in0[edge_index]
        if same == 1:
            gain += weight
        if other == 0:
            gain -= weight
    return gain


def fm_refine(
    graph: Hypergraph,
    assignment: list[int],
    envelope: BalanceEnvelope,
    max_passes: int = 10,
) -> list[int]:
    """Refine a bisection in place over up to ``max_passes`` FM passes.

    Returns the refined assignment (the same list object).
    """
    incident = graph.incidence()
    for _ in range(max_passes):
        improved = _fm_pass(graph, assignment, envelope, incident)
        if not improved:
            break
    return assignment


def _fm_pass(
    graph: Hypergraph,
    assignment: list[int],
    envelope: BalanceEnvelope,
    incident: list[list[int]],
) -> bool:
    """One FM pass; returns True when the cut strictly improved."""
    in0, in1 = _pin_counts(graph, assignment)
    weight0 = sum(
        graph.vertex_weights[v] for v in range(graph.vertex_count)
        if assignment[v] == 0
    )
    locked = [False] * graph.vertex_count

    # Lazy max-heap of (-gain, vertex); stale entries are skipped on pop.
    heap: list[tuple[int, int]] = []
    current_gain = [0] * graph.vertex_count
    for vertex in range(graph.vertex_count):
        gain = _gain(graph, incident, in0, in1, vertex, assignment[vertex])
        current_gain[vertex] = gain
        heapq.heappush(heap, (-gain, vertex))

    moves: list[int] = []
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0

    while heap:
        neg_gain, vertex = heapq.heappop(heap)
        if locked[vertex] or -neg_gain != current_gain[vertex]:
            continue
        part = assignment[vertex]
        vertex_weight = graph.vertex_weights[vertex]
        new_weight0 = weight0 - vertex_weight if part == 0 else weight0 + vertex_weight
        if not envelope.admits(new_weight0):
            locked[vertex] = True  # cannot move this pass
            continue

        # Apply the move.
        locked[vertex] = True
        assignment[vertex] = 1 - part
        weight0 = new_weight0
        cumulative += current_gain[vertex]
        moves.append(vertex)
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(moves)

        # Update pin counts and neighbor gains.
        touched: set[int] = set()
        for edge_index in incident[vertex]:
            if part == 0:
                in0[edge_index] -= 1
                in1[edge_index] += 1
            else:
                in1[edge_index] -= 1
                in0[edge_index] += 1
            for pin in graph.edges[edge_index]:
                if not locked[pin]:
                    touched.add(pin)
        # Sorted so heap pushes happen in a set-iteration-independent
        # order; (-gain, pin) entries are totally ordered anyway, but this
        # keeps the pass bit-reproducible under any hash seed.
        for pin in sorted(touched):
            gain = _gain(graph, incident, in0, in1, pin, assignment[pin])
            if gain != current_gain[pin]:
                current_gain[pin] = gain
                heapq.heappush(heap, (-gain, pin))

    # Roll back moves past the best prefix.
    for vertex in moves[best_prefix:]:
        assignment[vertex] = 1 - assignment[vertex]
    return best_cumulative > 0
