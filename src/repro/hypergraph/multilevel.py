"""Multilevel hypergraph partitioning (the hMetis substitute).

`partition` produces a k-way partition by recursive bisection.  Each
bisection is multilevel: the hypergraph is coarsened with heavy-edge
matching, an initial bisection is grown greedily at the coarsest level, and
the solution is projected back level by level with FM refinement
(:mod:`repro.hypergraph.fm`) after every projection.  Several random starts
are tried and the best cut kept, so results are deterministic for a fixed
seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hypergraph.fm import BalanceEnvelope, fm_refine
from repro.hypergraph.hypergraph import Hypergraph, cut_weight

_COARSEST_SIZE = 32
_RANDOM_STARTS = 4


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of :func:`partition`.

    Attributes:
        assignment: Part index (``0 .. parts-1``) per vertex.
        cut: Total weight of hyperedges spanning more than one part.
    """

    assignment: tuple[int, ...]
    cut: int


def partition(
    graph: Hypergraph,
    parts: int,
    epsilon: float = 0.10,
    seed: int = 0,
) -> PartitionResult:
    """Partition ``graph`` into ``parts`` parts minimizing hyperedge cut.

    Args:
        graph: The hypergraph to partition.
        parts: Number of parts (>= 1).
        epsilon: Allowed relative part-weight imbalance.
        seed: RNG seed for the randomized starts.

    Raises:
        ValueError: If ``parts`` is not positive or exceeds the vertex count.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts > graph.vertex_count:
        raise ValueError(
            f"cannot split {graph.vertex_count} vertices into {parts} parts"
        )
    assignment = [0] * graph.vertex_count
    rng = random.Random(seed)
    _recursive_bisect(
        graph,
        vertices=list(range(graph.vertex_count)),
        parts=parts,
        first_part=0,
        assignment=assignment,
        epsilon=epsilon,
        rng=rng,
    )
    return PartitionResult(
        assignment=tuple(assignment),
        cut=cut_weight(graph, assignment),
    )


def _recursive_bisect(
    graph: Hypergraph,
    vertices: list[int],
    parts: int,
    first_part: int,
    assignment: list[int],
    epsilon: float,
    rng: random.Random,
) -> None:
    if parts == 1:
        for vertex in vertices:
            assignment[vertex] = first_part
        return

    left_parts = (parts + 1) // 2
    right_parts = parts - left_parts
    sub, local_of = _subgraph(graph, vertices)
    fraction = left_parts / parts
    local_assignment = _bisect(sub, fraction, epsilon, rng)

    left = [vertices[v] for v in range(len(vertices)) if local_assignment[v] == 0]
    right = [vertices[v] for v in range(len(vertices)) if local_assignment[v] == 1]
    del local_of  # only needed while building the subgraph
    # Every side must receive at least as many vertices as the parts it has
    # to host, or the recursion would starve a part.  Move the lightest
    # vertices from the surplus side when the bisection was too lopsided.
    left.sort(key=lambda v: graph.vertex_weights[v])
    right.sort(key=lambda v: graph.vertex_weights[v])
    while len(left) < left_parts:
        left.append(right.pop(0))
    while len(right) < right_parts:
        right.append(left.pop(0))
    _recursive_bisect(graph, left, left_parts, first_part, assignment, epsilon, rng)
    if right:
        _recursive_bisect(
            graph, right, right_parts, first_part + left_parts,
            assignment, epsilon, rng,
        )


def _subgraph(
    graph: Hypergraph, vertices: list[int]
) -> tuple[Hypergraph, dict[int, int]]:
    """Restrict ``graph`` to ``vertices``; edges lose pins outside the set."""
    local_of = {vertex: index for index, vertex in enumerate(vertices)}
    edges = []
    edge_weights = []
    for pins, weight in zip(graph.edges, graph.edge_weights):
        local_pins = tuple(sorted(local_of[p] for p in pins if p in local_of))
        if len(local_pins) >= 2:
            edges.append(local_pins)
            edge_weights.append(weight)
    sub = Hypergraph(
        vertex_weights=[graph.vertex_weights[v] for v in vertices],
        edges=edges,
        edge_weights=edge_weights,
    )
    return sub, local_of


def _bisect(
    graph: Hypergraph,
    fraction: float,
    epsilon: float,
    rng: random.Random,
) -> list[int]:
    """Multilevel bisection of ``graph``; part 0 targets ``fraction`` of
    the total weight."""
    total = graph.total_vertex_weight
    target0 = int(round(total * fraction))
    slack = max(graph.vertex_weights, default=1)
    envelope = BalanceEnvelope(target0, total, epsilon, slack)

    levels = _coarsen(graph, rng)
    coarsest = levels[-1][0]

    best_assignment: list[int] | None = None
    best_cut = None
    for _ in range(_RANDOM_STARTS):
        candidate = _initial_bisection(coarsest, target0, rng)
        coarse_envelope = BalanceEnvelope(
            target0, total, epsilon, max(coarsest.vertex_weights, default=1)
        )
        fm_refine(coarsest, candidate, coarse_envelope)
        cut = cut_weight(coarsest, candidate)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_assignment = candidate
    assert best_assignment is not None

    # Project back through the levels, refining at each.
    assignment = best_assignment
    for level_index in range(len(levels) - 1, 0, -1):
        _, mapping = levels[level_index]
        finer_graph = levels[level_index - 1][0]
        finer_assignment = [0] * finer_graph.vertex_count
        for fine_vertex, coarse_vertex in enumerate(mapping):
            finer_assignment[fine_vertex] = assignment[coarse_vertex]
        level_envelope = BalanceEnvelope(
            target0, total, epsilon, max(finer_graph.vertex_weights, default=1)
        )
        fm_refine(finer_graph, finer_assignment, level_envelope)
        assignment = finer_assignment

    if len(levels) == 1:
        fm_refine(graph, assignment, envelope)
    return assignment


def _initial_bisection(
    graph: Hypergraph, target0: int, rng: random.Random
) -> list[int]:
    """Greedy region growth: seed part 0 from a random vertex and keep
    absorbing the most strongly attached outside vertex until part 0
    reaches its target weight.  Everything else lands in part 1."""
    n = graph.vertex_count
    assignment = [1] * n
    if n == 0:
        return assignment
    incident = graph.incidence()
    seed_vertex = rng.randrange(n)
    assignment[seed_vertex] = 0
    weight0 = graph.vertex_weights[seed_vertex]
    attachment = [0.0] * n
    in_part0 = [False] * n
    in_part0[seed_vertex] = True

    def absorb(vertex: int) -> None:
        for edge_index in incident[vertex]:
            pins = graph.edges[edge_index]
            share = graph.edge_weights[edge_index] / (len(pins) - 1)
            for pin in pins:
                if not in_part0[pin]:
                    attachment[pin] += share

    absorb(seed_vertex)
    while weight0 < target0:
        best = -1
        best_score = (-1.0, 0)
        for vertex in range(n):
            if in_part0[vertex]:
                continue
            score = (attachment[vertex], -graph.vertex_weights[vertex])
            if score > best_score:
                best_score = score
                best = vertex
        if best == -1:
            break
        in_part0[best] = True
        assignment[best] = 0
        weight0 += graph.vertex_weights[best]
        absorb(best)
    return assignment


def _coarsen(
    graph: Hypergraph, rng: random.Random
) -> list[tuple[Hypergraph, list[int] | None]]:
    """Build the coarsening hierarchy.

    Returns ``[(graph_0, None), (graph_1, map_0to1), ...]`` where
    ``map_ito(i+1)[v]`` is the coarse vertex containing fine vertex ``v``.
    """
    levels: list[tuple[Hypergraph, list[int] | None]] = [(graph, None)]
    current = graph
    while current.vertex_count > _COARSEST_SIZE:
        mapping = _heavy_edge_matching(current, rng)
        coarse_count = max(mapping) + 1
        if coarse_count >= current.vertex_count:
            break  # no progress; stop coarsening
        current = _contract(current, mapping, coarse_count)
        levels.append((current, mapping))
    return levels


def _heavy_edge_matching(graph: Hypergraph, rng: random.Random) -> list[int]:
    """Match each vertex with its most strongly connected unmatched
    neighbor; connectivity of a shared edge counts ``w(e) / (|e| - 1)``."""
    incident = graph.incidence()
    order = list(range(graph.vertex_count))
    rng.shuffle(order)
    mate = [-1] * graph.vertex_count
    for vertex in order:
        if mate[vertex] != -1:
            continue
        scores: dict[int, float] = {}
        for edge_index in incident[vertex]:
            weight = graph.edge_weights[edge_index]
            pins = graph.edges[edge_index]
            share = weight / (len(pins) - 1)
            for pin in pins:
                if pin != vertex and mate[pin] == -1:
                    scores[pin] = scores.get(pin, 0.0) + share
        if scores:
            partner = max(scores, key=lambda p: (scores[p], -p))
            mate[vertex] = partner
            mate[partner] = vertex
        else:
            mate[vertex] = vertex

    mapping = [-1] * graph.vertex_count
    next_id = 0
    for vertex in range(graph.vertex_count):
        if mapping[vertex] != -1:
            continue
        mapping[vertex] = next_id
        partner = mate[vertex]
        if partner != vertex and partner != -1:
            mapping[partner] = next_id
        next_id += 1
    return mapping


def _contract(graph: Hypergraph, mapping: list[int], coarse_count: int) -> Hypergraph:
    vertex_weights = [0] * coarse_count
    for vertex, coarse in enumerate(mapping):
        vertex_weights[coarse] += graph.vertex_weights[vertex]

    merged: dict[tuple[int, ...], int] = {}
    for pins, weight in zip(graph.edges, graph.edge_weights):
        coarse_pins = tuple(sorted({mapping[p] for p in pins}))
        if len(coarse_pins) < 2:
            continue
        merged[coarse_pins] = merged.get(coarse_pins, 0) + weight
    return Hypergraph(
        vertex_weights=vertex_weights,
        edges=list(merged),
        edge_weights=[merged[pins] for pins in merged],
    )
