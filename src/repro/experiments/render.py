"""One text renderer per plan kind, shared by the CLI and the service.

The CLI commands and the :mod:`repro.service` job server must print the
*same* bytes for the same report — the service equivalence suite pins
that down — so both go through this registry instead of each keeping its
own formatting call.  ``render_report`` covers the deterministic body of
each command's output; presentation extras that are deliberately not
part of the report (the table command's wall-clock ``(elapsed: ...)``
line, ``--verbose`` progress) stay CLI-side.
"""

from __future__ import annotations

import importlib
from typing import Callable

_RENDERERS: dict[str, Callable] = {}

#: kind -> (module, attribute); ``None`` attribute means the report
#: renders itself via ``report.format()``.
_BUILTIN_RENDERERS = {
    "table": ("repro.experiments.reporting", "render_table"),
    "pareto": ("repro.experiments.pareto", "format_curve"),
    "volume": ("repro.experiments.compaction_study", "format_volume_report"),
    "compare": ("repro.experiments.compare", "format_comparison"),
    "multisite": ("repro.experiments.multisite", "format_multisite_report"),
    "scaling": ("repro.experiments.scaling", "format_scaling_report"),
    "sensitivity": (
        "repro.experiments.sensitivity", "format_sensitivity_report"
    ),
    "stability": ("repro.experiments.stability", None),
    "optimize": ("repro.experiments.single", "format_optimize_report"),
    "evaluate": ("repro.experiments.single", "format_evaluate_report"),
}


def register_renderer(kind: str, fn: Callable) -> None:
    """Register ``fn(report) -> str`` for a plan kind (external kinds)."""
    _RENDERERS[kind] = fn


def render_report(kind: str, report) -> str:
    """Render ``report`` (a plan kind's assembled object) to text.

    Raises:
        ValueError: On a kind with no registered renderer.
    """
    fn = _RENDERERS.get(kind)
    if fn is None and kind in _BUILTIN_RENDERERS:
        module_name, attribute = _BUILTIN_RENDERERS[kind]
        importlib.import_module(module_name)
        fn = (
            (lambda rendered: rendered.format())
            if attribute is None
            else getattr(importlib.import_module(module_name), attribute)
        )
        _RENDERERS[kind] = fn
    if fn is None:
        known = sorted(set(_RENDERERS) | set(_BUILTIN_RENDERERS))
        raise ValueError(
            f"no renderer for plan kind {kind!r}; known: {', '.join(known)}"
        )
    return fn(report)
