"""Test-data-volume analysis of the two-dimensional compaction (§3 claim:
"the proposed two-dimensional SI test set compaction strategy is able to
reduce test data volume significantly").

Volume is measured in *shift bits*: a pattern confined to a core group
costs the sum of that group's WOCs per application; a residual pattern
costs the WOCs of every core.  The study reports, per group count:

* pattern counts before/after vertical compaction,
* total data volume before/after (and relative to the uncompacted set),
* the vertical (count) and horizontal (length) shares of the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.horizontal import build_si_test_groups
from repro.runtime.executor import run_cells
from repro.runtime.instrumentation import (
    absorb_snapshot,
    call_with_instrumentation,
)
from repro.sitest.patterns import SIPattern
from repro.soc.model import Soc


@dataclass(frozen=True)
class CompactionVolume:
    """Volume figures for one grouping choice.

    Attributes:
        parts: Group count ``i``.
        patterns_before: Uncompacted pattern count.
        patterns_after: Total compacted pattern count.
        volume_before: Shift bits of the uncompacted set (all patterns at
            full length).
        volume_after: Shift bits of the compacted, grouped set.
        residual_patterns: Compacted patterns stuck at full length.
    """

    parts: int
    patterns_before: int
    patterns_after: int
    volume_before: int
    volume_after: int
    residual_patterns: int

    @property
    def count_reduction(self) -> float:
        if self.patterns_before == 0:
            return 1.0
        return self.patterns_after / self.patterns_before

    @property
    def volume_reduction(self) -> float:
        if self.volume_before == 0:
            return 1.0
        return self.volume_after / self.volume_before


def _grouping_cell(spec):
    """Sweep cell: one grouping (two-dimensional compaction) run."""
    soc, patterns, parts, seed, backend = spec
    return call_with_instrumentation(
        build_si_test_groups, soc, patterns, parts=parts, seed=seed,
        backend=backend,
    )


def measure_compaction(
    soc: Soc,
    patterns: list[SIPattern],
    group_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
    jobs: int = 1,
    backend: str = "auto",
    sweep_backend: str = "auto",
) -> tuple[CompactionVolume, ...]:
    """Measure data volume across grouping choices.

    Group counts are independent, so ``jobs > 1`` fans them out over
    worker processes without changing the reported volumes.  ``backend``
    selects the vertical compaction implementation (see
    :func:`repro.compaction.vertical.greedy_compact`); ``sweep_backend``
    the fan-out machinery (see
    :data:`repro.runtime.executor.SWEEP_BACKENDS`).  The volumes are
    independent of both.

    Raises:
        ValueError: If ``group_counts`` is empty.
    """
    if not group_counts:
        raise ValueError("need at least one group count")
    woc_of = {core.core_id: core.woc_count for core in soc}
    full_length = sum(woc_of.values())
    volume_before = len(patterns) * full_length

    cells = run_cells(
        _grouping_cell,
        [(soc, patterns, parts, seed, backend) for parts in group_counts],
        jobs=jobs,
        backend=sweep_backend,
    )
    results = []
    for parts, (grouping, snapshot) in zip(group_counts, cells):
        absorb_snapshot(snapshot)
        volume_after = 0
        residual = 0
        for group in grouping.groups:
            length = sum(woc_of.get(core_id, 0) for core_id in group.cores)
            volume_after += group.patterns * length
            if group.is_residual:
                residual += group.patterns
        results.append(
            CompactionVolume(
                parts=parts,
                patterns_before=len(patterns),
                patterns_after=grouping.total_compacted_patterns,
                volume_before=volume_before,
                volume_after=volume_after,
                residual_patterns=residual,
            )
        )
    return tuple(results)


def format_volume_report(volumes: tuple[CompactionVolume, ...]) -> str:
    """Text table of the volume study."""
    lines = [
        f"{'i':>3} {'patterns':>14} {'volume (bits)':>22} "
        f"{'count x':>8} {'volume x':>9} {'residual':>9}"
    ]
    for volume in volumes:
        count_factor = (
            volume.patterns_before / volume.patterns_after
            if volume.patterns_after
            else float("inf")
        )
        volume_factor = (
            volume.volume_before / volume.volume_after
            if volume.volume_after
            else float("inf")
        )
        lines.append(
            f"{volume.parts:>3} "
            f"{volume.patterns_before:>6} -> {volume.patterns_after:<5} "
            f"{volume.volume_before:>10} -> {volume.volume_after:<9} "
            f"{count_factor:>7.1f}x {volume_factor:>8.1f}x "
            f"{volume.residual_patterns:>9}"
        )
    return "\n".join(lines)
