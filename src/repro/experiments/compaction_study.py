"""Test-data-volume analysis of the two-dimensional compaction (§3 claim:
"the proposed two-dimensional SI test set compaction strategy is able to
reduce test data volume significantly").

Volume is measured in *shift bits*: a pattern confined to a core group
costs the sum of that group's WOCs per application; a residual pattern
costs the WOCs of every core.  The study reports, per group count:

* pattern counts before/after vertical compaction,
* total data volume before/after (and relative to the uncompacted set),
* the vertical (count) and horizontal (length) shares of the reduction.

The study is the declarative :class:`VolumePlan` — one ``grouping/{i}``
cell per group count — accepting two parameter shapes:

* a *recipe* (``pattern_count``/``seed``/``generator_config``): patterns
  travel as a :class:`~repro.runtime.pool.PatternsRef` and each cell is
  keyed by :func:`~repro.runtime.cache.grouping_cache_key`, sharing
  grouping results with the table experiment through the same cache;
* a raw ``patterns`` list (the :func:`measure_compaction` library path):
  cells run :data:`~repro.experiments.plan.UNCACHED`, exactly the
  old semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.horizontal import build_si_test_groups
from repro.experiments.plan import (
    UNCACHED,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import (
    EvaluationCache,
    grouping_cache_key,
    patterns_cache_key,
)
from repro.runtime.pool import PatternsRef, resolve_patterns
from repro.sitest.generator import GeneratorConfig
from repro.sitest.patterns import SIPattern
from repro.soc.model import Soc


@dataclass(frozen=True)
class CompactionVolume:
    """Volume figures for one grouping choice.

    Attributes:
        parts: Group count ``i``.
        patterns_before: Uncompacted pattern count.
        patterns_after: Total compacted pattern count.
        volume_before: Shift bits of the uncompacted set (all patterns at
            full length).
        volume_after: Shift bits of the compacted, grouped set.
        residual_patterns: Compacted patterns stuck at full length.
    """

    parts: int
    patterns_before: int
    patterns_after: int
    volume_before: int
    volume_after: int
    residual_patterns: int

    @property
    def count_reduction(self) -> float:
        if self.patterns_before == 0:
            return 1.0
        return self.patterns_after / self.patterns_before

    @property
    def volume_reduction(self) -> float:
        if self.volume_before == 0:
            return 1.0
        return self.volume_after / self.volume_before


def _volume_cell_fn(soc, patterns, parts, seed, backend):
    """Plan cell: one grouping (two-dimensional compaction) run.

    ``patterns`` is either the raw list (library path) or a
    :class:`PatternsRef` resolved through the warm per-process state
    cache.  The returned grouping is codec-reduced — group metadata only,
    exactly what a cache hit would return.
    """
    from repro.runtime.codec import grouping_from_dict, grouping_to_dict

    if isinstance(patterns, PatternsRef):
        patterns = resolve_patterns(soc, patterns)
    grouping = build_si_test_groups(
        soc, patterns, parts=parts, seed=seed, backend=backend
    )
    return grouping_from_dict(grouping_to_dict(grouping))


def _volume_params(params: dict) -> tuple:
    soc = params["soc"]
    group_counts = tuple(params["group_counts"])
    seed = params.get("seed", 0)
    backend = params.get("backend", "auto")
    return soc, group_counts, seed, backend


class VolumePlan(PlanKind):
    """The volume study as a declarative cell graph (module docstring)."""

    name = "volume"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, group_counts, seed, backend = _volume_params(params)
        if not group_counts:
            raise ValueError("need at least one group count")
        if "patterns" in params:
            patterns = list(params["patterns"])
            source, key_of, shard = patterns, (lambda parts: UNCACHED), None
        else:
            pattern_count = params["pattern_count"]
            config = params.get("generator_config") or GeneratorConfig()
            pattern_seed = params.get("pattern_seed", seed)
            shard = patterns_cache_key(
                soc, pattern_seed, pattern_count, config=config
            )
            source = PatternsRef(
                count=pattern_count,
                seed=pattern_seed,
                config=config,
                fingerprint=shard,
                store_dir=None,
            )

            def key_of(parts, _soc=soc):
                return grouping_cache_key(
                    _soc, seed, pattern_count, parts, config=config
                )

        return tuple(
            CellSpec(
                cell_id=f"grouping/{parts}",
                kind="grouping",
                fn=_volume_cell_fn,
                args=(soc, source, parts, seed, backend),
                cache_key=key_of(parts),
                shard_key=shard,
            )
            for parts in group_counts
        )

    def assemble(
        self, params: dict, results: dict
    ) -> tuple[CompactionVolume, ...]:
        soc, group_counts, _seed, _backend = _volume_params(params)
        if "patterns" in params:
            patterns_before = len(params["patterns"])
        else:
            patterns_before = params["pattern_count"]
        woc_of = {core.core_id: core.woc_count for core in soc}
        full_length = sum(woc_of.values())
        volume_before = patterns_before * full_length
        volumes = []
        for parts in group_counts:
            grouping = results[f"grouping/{parts}"]
            volume_after = 0
            residual = 0
            for group in grouping.groups:
                length = sum(
                    woc_of.get(core_id, 0) for core_id in group.cores
                )
                volume_after += group.patterns * length
                if group.is_residual:
                    residual += group.patterns
            volumes.append(
                CompactionVolume(
                    parts=parts,
                    patterns_before=patterns_before,
                    patterns_after=grouping.total_compacted_patterns,
                    volume_before=volume_before,
                    volume_after=volume_after,
                    residual_patterns=residual,
                )
            )
        return tuple(volumes)

    def verify(self, params: dict, results: dict) -> list[str]:
        """Accounting invariants every grouping must satisfy: group
        pattern counts sum to the compacted total and never exceed the
        uncompacted count."""
        soc, group_counts, _seed, _backend = _volume_params(params)
        if "patterns" in params:
            patterns_before = len(params["patterns"])
        else:
            patterns_before = params["pattern_count"]
        violations = []
        for parts in group_counts:
            grouping = results[f"grouping/{parts}"]
            total = sum(group.patterns for group in grouping.groups)
            if total != grouping.total_compacted_patterns:
                violations.append(
                    f"i={parts}: group pattern counts sum to {total}, "
                    f"grouping reports {grouping.total_compacted_patterns}"
                )
            if grouping.total_compacted_patterns > patterns_before:
                violations.append(
                    f"i={parts}: compaction grew the pattern count "
                    f"({grouping.total_compacted_patterns} > "
                    f"{patterns_before})"
                )
        return violations


register_plan_kind(VolumePlan)


def volume_plan(
    soc: Soc,
    pattern_count: int,
    group_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
    generator_config: GeneratorConfig = GeneratorConfig(),
    backend: str = "auto",
    pattern_seed: int | None = None,
) -> ExperimentPlan:
    """The recipe-shaped (cacheable, serializable) volume plan."""
    return ExperimentPlan(
        "volume",
        {
            "soc": soc,
            "pattern_count": pattern_count,
            "group_counts": tuple(group_counts),
            "seed": seed,
            "generator_config": generator_config,
            "backend": backend,
            "pattern_seed": seed if pattern_seed is None else pattern_seed,
        },
    )


def measure_compaction(
    soc: Soc,
    patterns: list[SIPattern],
    group_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
    jobs: int = 1,
    backend: str = "auto",
    sweep_backend: str = "auto",
    verify: bool = False,
) -> tuple[CompactionVolume, ...]:
    """Measure data volume across grouping choices.

    Group counts are independent, so ``jobs > 1`` fans them out over
    worker processes without changing the reported volumes.  ``backend``
    selects the vertical compaction implementation (see
    :func:`repro.compaction.vertical.greedy_compact`); ``sweep_backend``
    the fan-out machinery (see
    :data:`repro.runtime.executor.SWEEP_BACKENDS`).  The volumes are
    independent of both.

    Raises:
        ValueError: If ``group_counts`` is empty.
    """
    runner = PlanRunner(
        jobs=jobs, sweep_backend=sweep_backend, verify=verify
    )
    run = runner.run(
        ExperimentPlan(
            "volume",
            {
                "soc": soc,
                "patterns": list(patterns),
                "group_counts": tuple(group_counts),
                "seed": seed,
                "backend": backend,
            },
        )
    )
    return run.report


def run_volume_study(
    soc: Soc,
    pattern_count: int,
    group_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
    generator_config: GeneratorConfig = GeneratorConfig(),
    backend: str = "auto",
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> tuple[CompactionVolume, ...]:
    """The recipe path: generate ``pattern_count`` patterns at ``seed``
    (inside the cells, via a shared :class:`PatternsRef`) and measure the
    compaction — cacheable and resumable, unlike the raw-pattern
    :func:`measure_compaction` library path."""
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        volume_plan(
            soc,
            pattern_count,
            group_counts=group_counts,
            seed=seed,
            generator_config=generator_config,
            backend=backend,
        )
    )
    return run.report


def format_volume_report(volumes: tuple[CompactionVolume, ...]) -> str:
    """Text table of the volume study."""
    lines = [
        f"{'i':>3} {'patterns':>14} {'volume (bits)':>22} "
        f"{'count x':>8} {'volume x':>9} {'residual':>9}"
    ]
    for volume in volumes:
        count_factor = (
            volume.patterns_before / volume.patterns_after
            if volume.patterns_after
            else float("inf")
        )
        volume_factor = (
            volume.volume_before / volume.volume_after
            if volume.volume_after
            else float("inf")
        )
        lines.append(
            f"{volume.parts:>3} "
            f"{volume.patterns_before:>6} -> {volume.patterns_after:<5} "
            f"{volume.volume_before:>10} -> {volume.volume_after:<9} "
            f"{count_factor:>7.1f}x {volume_factor:>8.1f}x "
            f"{volume.residual_patterns:>9}"
        )
    return "\n".join(lines)
