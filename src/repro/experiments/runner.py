"""PlanRunner: one executor for every declarative experiment plan.

:class:`PlanRunner` takes an :class:`~repro.experiments.plan.ExperimentPlan`
and drives its cell graph to completion through the existing runtime —
:func:`repro.runtime.executor.run_cells` fan-out (serial / classic pool /
persistent work-stealing workers), the keyed
:class:`~repro.runtime.cache.EvaluationCache`, and
:class:`~repro.resilience.checkpoint.SweepCheckpoint` resume — so every
experiment gets ``--jobs/--cache/--sweep-backend/--resume/--verify``
uniformly, with counter totals identical to a serial run.

The execution model is a deterministic wave loop over the cell graph:

1. resolve cache keys (eager keys immediately; lazy ``key_fn`` keys as
   soon as their ``key_deps`` results exist);
2. look each newly-keyed cell up — checkpoint first (resume
   correctness), then the cache — and record hits back into the
   checkpoint so it alone can resume the plan;
3. compute the *needed* set: unresolved output cells, plus —
   transitively — the dependencies of every needed cell that is known to
   execute.  A cell needed only by an unresolved cell whose lookup is
   still pending (lazy key not yet computable) stays deferred: this is
   what lets a cached downstream cell prune its expensive upstream
   producer (e.g. a cached baseline pricing skips the SI-oblivious
   optimizer run entirely);
4. execute every needed cell whose dependencies are resolved — one
   :func:`run_cells` batch per wave, in expansion order, sharing one
   warm :class:`~repro.runtime.pool.WorkerPool` across all waves on the
   ``workers`` backend — absorb worker snapshots, cache and checkpoint
   the results, and loop.

When the loop drains, still-unresolved cells are *pruned* (never
needed), the kind's ``verify`` hook re-checks results independently when
requested, and the kind's pure ``assemble`` builds the report object.

Heavy inputs travel as :class:`~repro.runtime.pool.PatternsRef`
references: the runner points them at the cache's shared state store
when one is configured, materializes them parent-side for the classic
one-shot pool (whose disposable workers cannot amortize generation), and
otherwise lets the cell resolve them through the warm per-process state
cache — exactly the protocol the table experiment hand-rolled before.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.experiments.plan import (
    UNCACHED,
    CellRef,
    CellSpec,
    ExperimentPlan,
    plan_cell_key,
    plan_kind,
    project,
)
from repro.runtime.cache import EvaluationCache
from repro.runtime.executor import CellError, resolve_sweep_backend, run_cells
from repro.runtime.instrumentation import (
    absorb_snapshot,
    call_with_instrumentation,
    incr,
)
from repro.runtime.supervision import (
    PlanDeadlineError,
    RunPolicy,
    current_breaker,
    degraded_backend,
    use_policy,
)
from repro.runtime.pool import (
    PatternsRef,
    PoolUnavailable,
    WorkerPool,
    default_warmup,
    resolve_patterns,
)
from repro.soc.model import Soc


def _execute_plan_cell(spec):
    """Worker entry for every plan cell: ``fn(*args)`` under fresh
    instrumentation, snapshot shipped back with the value."""
    fn, args = spec
    return call_with_instrumentation(fn, *args)


def _valid_cell_payload(value) -> bool:
    """Reject anything that is not the ``(value, snapshot)`` protocol
    tuple — a sick worker shipping a garbage/partial payload must hit the
    retry path, not crash the runner unpacking it."""
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], dict)
    )


@dataclass
class PlanRun:
    """Everything a :meth:`PlanRunner.run` produced.

    Attributes:
        plan: The executed plan.
        fingerprint: Its content hash (checkpoint/dedup scope).
        report: The kind's assembled report object.
        results: Cell results by cell id (pruned cells absent).
        backend: The resolved sweep backend (``pool``/``workers``).
        jobs: Worker process count the run was configured with.
        wall_seconds: End-to-end elapsed time.
        cells: Total cells in the expanded graph.
        executed: Cells actually computed this run.
        cached: Cells served by the evaluation cache.
        resumed: Cells replayed from the checkpoint.
        pruned: Cells never needed (all consumers served warm).
        cache_stats: :meth:`EvaluationCache.stats` snapshot (empty when
            no cache was configured).
        status: ``"complete"`` or — when poisoned cells were quarantined
            under an ``allow_partial`` policy — ``"partial"`` (the
            ``report`` is then ``None``).
        poisoned: Cell id -> reason for every quarantined cell (budget
            exhausted, poisoned dependency, breaker, plan deadline).
        breaker_tripped: Whether the failure-rate circuit breaker opened
            during the run.
    """

    plan: ExperimentPlan
    fingerprint: str
    report: object
    results: dict[str, object] = field(default_factory=dict)
    backend: str = "pool"
    jobs: int = 1
    wall_seconds: float = 0.0
    cells: int = 0
    executed: int = 0
    cached: int = 0
    resumed: int = 0
    pruned: int = 0
    cache_stats: dict = field(default_factory=dict)
    status: str = "complete"
    poisoned: dict[str, str] = field(default_factory=dict)
    breaker_tripped: bool = False


class PlanRunner:
    """Execute any registered plan with caching, resume, and fan-out.

    Args:
        jobs: Worker processes for cell fan-out (1 = serial; results are
            bit-identical either way).
        cache: Optional :class:`EvaluationCache` shared across runs.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.SweepCheckpoint`; cells
            found in it are replayed, every completed cell (cache hits
            included) is recorded.
        sweep_backend: One of
            :data:`repro.runtime.executor.SWEEP_BACKENDS`.
        verify: Run the plan kind's independent verification over the
            results and raise on any violation.
        timeout: Optional per-cell budget in seconds (overrides the
            policy's ``cell_timeout`` when both are set).
        policy: Optional :class:`~repro.runtime.supervision.RunPolicy`
            governing retries, deadlines, the circuit breaker, and
            partial-run salvage; the default policy reproduces the
            historical behavior exactly.
        pool: Optional externally-owned warm
            :class:`~repro.runtime.pool.WorkerPool` to reuse for the
            ``workers`` backend instead of creating one per run (e.g.
            the optimization service shares one pool across all jobs).
            The caller keeps ownership: the runner never closes it.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: EvaluationCache | None = None,
        checkpoint=None,
        sweep_backend: str = "auto",
        verify: bool = False,
        timeout: float | None = None,
        policy: RunPolicy | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        resolve_sweep_backend(sweep_backend)  # fail fast on a typo
        self.jobs = jobs
        self.cache = cache
        self.checkpoint = checkpoint
        self.sweep_backend = sweep_backend
        self.verify = verify
        self.timeout = timeout
        self.policy = policy if policy is not None else RunPolicy()
        self.pool = pool

    # -- plumbing ---------------------------------------------------------

    def _lookup(self, key: str):
        """Checkpoint first (resume correctness), then the cache.

        Returns ``(value, origin)`` with origin ``"resumed"``/``"cached"``,
        or ``(None, None)`` on a miss.
        """
        if self.checkpoint is not None and key in self.checkpoint:
            value = self.checkpoint.fetch(key)
            if value is not None:
                return value, "resumed"
        if self.cache is not None:
            value = self.cache.get(key)
            if value is not None:
                return value, "cached"
        return None, None

    def _record(self, key: str, value) -> None:
        if self.checkpoint is not None:
            self.checkpoint.record(key, value)

    def _state_store_dir(self) -> str | None:
        if self.cache is not None and self.cache.store_dir is not None:
            return str(self.cache.store_dir / "state")
        return None

    # -- the run ----------------------------------------------------------

    def run(self, plan: ExperimentPlan) -> PlanRun:
        """Drive ``plan`` to completion and assemble its report.

        Under an ``allow_partial`` policy a plan whose cells exhaust
        their budgets completes as a ``status == "partial"`` run with
        the quarantined cells enumerated in :attr:`PlanRun.poisoned`
        and ``report`` left ``None``; otherwise the first exhausted
        cell raises :class:`~repro.runtime.executor.CellError`.
        """
        with use_policy(self.policy):
            return self._supervised_run(plan)

    def _supervised_run(self, plan: ExperimentPlan) -> PlanRun:
        backend = resolve_sweep_backend(self.sweep_backend, jobs=self.jobs)
        start = time.perf_counter()
        fingerprint = plan.fingerprint()
        cells = plan.expand()
        incr("plan.cells_expanded", len(cells))

        pool: WorkerPool | None = None
        pool_failed = False

        def sweep_pool() -> WorkerPool | None:
            """The run's shared warm worker pool (``workers`` backend
            only), created on first parallel wave; ``None`` means the
            classic pool (requested, workers unavailable here, or the
            degradation ladder has retired the workers backend)."""
            nonlocal pool, pool_failed
            if (
                backend != "workers"
                or self.jobs <= 1
                or pool_failed
                or degraded_backend("workers") != "workers"
            ):
                return None
            if self.pool is not None:
                return self.pool
            if pool is None:
                try:
                    pool = WorkerPool(self.jobs, warmup=default_warmup)
                except PoolUnavailable:
                    pool_failed = True
                    return None
            return pool

        run = PlanRun(
            plan=plan,
            fingerprint=fingerprint,
            report=None,
            backend=backend,
            jobs=self.jobs,
            cells=len(cells),
        )
        try:
            self._drain(cells, fingerprint, run, sweep_pool)
        finally:
            if pool is not None:
                pool.close()

        breaker = current_breaker()
        run.breaker_tripped = breaker is not None and breaker.tripped
        if run.poisoned:
            # Partial salvage: the report would be built from an
            # incomplete result set, so it stays None — consumers key
            # off ``status`` and the poisoned map instead.
            run.status = "partial"
            incr("plan.partial_runs")
            if self.cache is not None:
                run.cache_stats = self.cache.stats()
            run.wall_seconds = time.perf_counter() - start
            return run

        kind = plan_kind(plan.name)
        params = dict(plan.params)
        if self.verify:
            violations = kind.verify(params, dict(run.results))
            if violations:
                from repro.resilience.verify import ScheduleVerificationError

                raise ScheduleVerificationError(list(violations))
        run.report = kind.assemble(params, dict(run.results))
        if self.cache is not None:
            run.cache_stats = self.cache.stats()
        run.wall_seconds = time.perf_counter() - start
        return run

    def _poison(self, run: PlanRun, keys, cell_id: str, reason: str) -> None:
        """Quarantine ``cell_id``: record the reason on the run (and in
        the checkpoint when the cell has a durable key) so dependents
        prune and a resume re-attempts it."""
        run.poisoned[cell_id] = reason
        incr("plan.cells_poisoned")
        key = keys.get(cell_id)
        if (
            key is not None
            and key != UNCACHED
            and self.checkpoint is not None
        ):
            self.checkpoint.poison(key, reason)

    def _drain(self, cells, fingerprint, run: PlanRun, sweep_pool) -> None:
        """The wave loop: resolve keys, look up, execute needed cells."""
        by_id = {cell.cell_id: cell for cell in cells}
        results = run.results
        keys: dict[str, str] = {}
        looked: set[str] = set()
        lookups_enabled = self.cache is not None or self.checkpoint is not None
        policy = self.policy
        deadline = policy.plan_deadline
        drain_start = time.monotonic()
        ckpt_poisoned = (
            dict(self.checkpoint.poisoned)
            if self.checkpoint is not None
            else {}
        )

        def unresolved():
            return [
                cell
                for cell in cells
                if cell.cell_id not in results
                and cell.cell_id not in run.poisoned
            ]

        def quarantine_remaining(reason: str) -> None:
            for cell in unresolved():
                self._poison(run, keys, cell.cell_id, reason)

        while True:
            if (
                deadline is not None
                and time.monotonic() - drain_start > deadline
            ):
                remaining = unresolved()
                if not remaining:
                    break
                if policy.allow_partial:
                    quarantine_remaining("plan deadline exceeded")
                    break
                raise PlanDeadlineError(
                    f"plan exceeded its {deadline:g}s deadline with "
                    f"{len(remaining)} cells unresolved"
                )
            breaker = current_breaker()
            if (
                breaker is not None
                and breaker.tripped
                and policy.allow_partial
            ):
                quarantine_remaining(
                    f"circuit breaker open ({breaker.describe()})"
                )
                break
            # 1+2. Resolve cache keys and run warm lookups to a fixpoint:
            # a lookup hit can make another cell's lazy key computable
            # within the same wave.
            while True:
                changed = False
                for cell in unresolved():
                    if cell.cell_id in keys:
                        continue
                    if cell.cache_key == UNCACHED:
                        keys[cell.cell_id] = UNCACHED
                    elif cell.cache_key is not None:
                        keys[cell.cell_id] = cell.cache_key
                    elif cell.key_fn is None:
                        keys[cell.cell_id] = plan_cell_key(
                            fingerprint, cell.cell_id
                        )
                    elif all(dep in results for dep in cell.key_deps):
                        keys[cell.cell_id] = cell.key_fn(
                            tuple(results[dep] for dep in cell.key_deps)
                        )
                    else:
                        continue
                    changed = True
                if lookups_enabled:
                    for cell in unresolved():
                        key = keys.get(cell.cell_id)
                        if (
                            key is None
                            or key == UNCACHED
                            or cell.cell_id in looked
                        ):
                            continue
                        looked.add(cell.cell_id)
                        if key in ckpt_poisoned:
                            # Poisoned on a previous run: the resume
                            # re-attempts it from scratch.
                            incr("recovery.poison_retried")
                        value, origin = self._lookup(key)
                        if origin is None:
                            continue
                        changed = True
                        results[cell.cell_id] = value
                        self._record(key, value)
                        if origin == "resumed":
                            run.resumed += 1
                            incr("plan.cells_resumed")
                        else:
                            run.cached += 1
                            incr("plan.cells_cached")
                if not changed:
                    break
            pending = unresolved()
            if not pending:
                break

            # Poison propagation: a cell whose dependency (or key
            # dependency) is quarantined can never run — quarantine it
            # too, to a fixpoint, so the wave loop drains instead of
            # deadlocking on an unrunnable needed set.
            if run.poisoned:
                while True:
                    tainted = [
                        cell
                        for cell in pending
                        if any(
                            dep in run.poisoned
                            for dep in (*cell.deps, *cell.key_deps)
                        )
                    ]
                    if not tainted:
                        break
                    for cell in tainted:
                        dep = next(
                            d
                            for d in (*cell.deps, *cell.key_deps)
                            if d in run.poisoned
                        )
                        self._poison(
                            run,
                            keys,
                            cell.cell_id,
                            f"dependency {dep} poisoned",
                        )
                    pending = unresolved()
                if not pending:
                    break

            # 3. The needed set.  A cell is known to execute once its key
            # is resolved and its lookup came back empty (or lookups are
            # off); its dependencies are then needed too.  A cell whose
            # fate is still open (lazy key pending) pins only its
            # key_deps — everything else stays deferred, prunable.
            def will_execute(cell_id: str) -> bool:
                key = keys.get(cell_id)
                if key is None:
                    return False
                return (
                    key == UNCACHED
                    or not lookups_enabled
                    or cell_id in looked
                )

            pending_ids = {cell.cell_id for cell in pending}
            needed = {
                cell.cell_id for cell in pending if cell.output
            }
            while True:
                grown = set(needed)
                for cell_id in needed:
                    cell = by_id[cell_id]
                    pinned = (
                        cell.deps if will_execute(cell_id) else cell.key_deps
                    )
                    grown.update(
                        dep for dep in pinned if dep in pending_ids
                    )
                if grown == needed:
                    break
                needed = grown

            if not needed:
                break  # everything left is prunable

            # 4. Execute the ready slice of the needed set as one batch.
            batch = [
                cell
                for cell in pending
                if cell.cell_id in needed
                and will_execute(cell.cell_id)
                and all(dep in results for dep in cell.deps)
            ]
            if not batch:
                raise RuntimeError(
                    "plan wave deadlock: needed cells "
                    f"{sorted(needed)!r} have no runnable member"
                )
            self._run_batch(batch, results, keys, run, sweep_pool)

        pruned = [
            cell
            for cell in cells
            if cell.cell_id not in results
            and cell.cell_id not in run.poisoned
        ]
        run.pruned = len(pruned)
        if pruned:
            incr("plan.cells_pruned", len(pruned))

    def _run_batch(self, batch, results, keys, run, sweep_pool) -> None:
        """Fan one wave of cells out through :func:`run_cells`."""
        store_dir = self._state_store_dir()
        spool = sweep_pool()
        specs = []
        for cell in batch:
            args = _resolve_args(cell.args, results, store_dir)
            if spool is None and self.jobs > 1:
                # Classic one-shot pool: disposable workers cannot
                # amortize reference resolution, so materialize in the
                # parent (through the same state cache) and ship whole.
                args = _materialize_refs(args)
            specs.append((cell.fn, args))
        policy = self.policy
        timeout = (
            self.timeout if self.timeout is not None else policy.cell_timeout
        )
        outcomes = run_cells(
            _execute_plan_cell,
            specs,
            jobs=self.jobs,
            timeout=timeout,
            validate=_valid_cell_payload,
            backend="workers" if spool is not None else "pool",
            pool=spool,
            shard_keys=(
                [cell.shard_key for cell in batch]
                if spool is not None
                else None
            ),
            on_error="return" if policy.allow_partial else "raise",
        )
        for cell, outcome in zip(batch, outcomes):
            if isinstance(outcome, CellError):
                cause = outcome.cause
                reason = f"{type(cause).__name__}: {cause}"
                if len(reason) > 200:
                    reason = reason[:197] + "..."
                self._poison(run, keys, cell.cell_id, reason)
                continue
            value, snapshot = outcome
            absorb_snapshot(snapshot)
            results[cell.cell_id] = value
            run.executed += 1
            incr("plan.cells_executed")
            key = keys[cell.cell_id]
            if key != UNCACHED:
                if self.cache is not None:
                    self.cache.put(key, value)
                self._record(key, value)


def _resolve_args(value, results, store_dir):
    """Substitute cell results for :class:`CellRef` args (through their
    projections) and point state references at the shared store."""
    if isinstance(value, CellRef):
        return project(value, results[value.cell_id])
    if isinstance(value, PatternsRef):
        if value.store_dir is None and store_dir is not None:
            return dataclasses.replace(value, store_dir=store_dir)
        return value
    if isinstance(value, tuple):
        return tuple(_resolve_args(item, results, store_dir) for item in value)
    if isinstance(value, list):
        return [_resolve_args(item, results, store_dir) for item in value]
    if isinstance(value, dict):
        return {
            key: _resolve_args(item, results, store_dir)
            for key, item in value.items()
        }
    return value


def _materialize_refs(args: tuple) -> tuple:
    """Resolve every :class:`PatternsRef` in ``args`` parent-side (classic
    pool protocol).  The owning SOC is found in the same args tuple —
    the convention every built-in plan follows."""
    soc = next((item for item in args if isinstance(item, Soc)), None)

    def materialize(value):
        if isinstance(value, PatternsRef):
            if soc is None:
                raise ValueError(
                    "cell args carry a PatternsRef but no Soc to "
                    "resolve it against"
                )
            return resolve_patterns(soc, value)
        if isinstance(value, tuple):
            return tuple(materialize(item) for item in value)
        if isinstance(value, list):
            return [materialize(item) for item in value]
        return value

    return tuple(materialize(item) for item in args)
