"""Declarative experiment plans and their deterministic cell graphs.

Every experiment in this repository — the Table 2/3 sweeps, the Pareto
curve, the volume study, the optimizer shoot-out, multisite economics,
scaling, sensitivity and stability — decomposes the same way:

* an :class:`ExperimentPlan` is pure data: a registered plan *kind* name
  plus JSON-able parameters, with a stable content-hash
  :meth:`~ExperimentPlan.fingerprint`;
* the kind's :meth:`~PlanKind.expand` turns the parameters into a
  deterministic *cell graph* — :class:`CellSpec`\\ s with explicit
  dependencies (:class:`CellRef`), cache keys, and shard keys;
* the kind's :meth:`~PlanKind.assemble` is a pure function from the cell
  results back to the experiment's report object.

Execution is entirely the
:class:`~repro.experiments.runner.PlanRunner`'s business: any plan runs
through the same executor/pool machinery with caching, checkpoint
resume, verification, and fault-injection disclosure for free, and a
serialized plan (:func:`plan_to_dict`) is exactly the payload a future
job server would accept over the wire.

The cell graph contract:

* cell ids are unique strings; ``deps`` name other cells in the same
  plan; the graph must be acyclic;
* cell functions are **module-level callables** (the executor ships them
  to worker processes) applied as ``fn(*args)``;
* an argument may be a :class:`CellRef` — the runner substitutes the
  referenced cell's result (optionally through a named *projection*)
  before submitting, which is how dependency edges carry data;
* ``cache_key`` is either a ready content-hash key, ``None`` for the
  default plan-fingerprint key (value must then be plain JSON), or
  :data:`UNCACHED`; a lazy ``key_fn(values)`` receives the results of
  ``key_deps`` positionally and returns the key — for keys that depend
  on upstream *results* (e.g. an optimization keyed by the grouping it
  consumes);
* ``output=False`` marks a cell consumed only by other cells; the runner
  prunes it when every consumer was served from cache or checkpoint.

Expansion must be deterministic: expanding the same plan twice yields
the same ids, dependencies, and keys, in the same order.  That is what
makes resume, dedup, and distribution sound, and ``tools/selfcheck.py``
checks it for every registered kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Callable, Iterator, Mapping

from repro.runtime.cache import soc_fingerprint, stable_hash
from repro.soc.model import Soc

#: Sentinel for cells that must never be cached or checkpointed (e.g.
#: wall-clock measurements a caller explicitly wants re-run).
UNCACHED = "__uncached__"


@dataclass(frozen=True)
class CellRef:
    """Reference to another cell's result inside a :class:`CellSpec`'s args.

    Attributes:
        cell_id: The producing cell.
        project: Optional name of a registered projection applied to the
            result before substitution (see :func:`register_projection`)
            — ships only the part a dependent cell needs.
    """

    cell_id: str
    project: str | None = None


#: Named projections applied parent-side when resolving a CellRef.
_PROJECTIONS: dict[str, Callable] = {}


def register_projection(name: str, fn: Callable) -> None:
    """Register a named :class:`CellRef` projection.

    Projections are named (not inline callables) so cell graphs stay
    comparable and serializable; registering an existing name with a
    different function raises.
    """
    current = _PROJECTIONS.get(name)
    if current is not None and current is not fn:
        raise ValueError(f"projection {name!r} already registered")
    _PROJECTIONS[name] = fn


def project(ref: CellRef, value):
    """Apply ``ref``'s projection (if any) to the producing cell's value."""
    if ref.project is None:
        return value
    try:
        fn = _PROJECTIONS[ref.project]
    except KeyError:
        raise ValueError(f"unknown projection {ref.project!r}") from None
    return fn(value)


@dataclass(frozen=True)
class CellSpec:
    """One node of a plan's cell graph.

    Attributes:
        cell_id: Unique id within the plan (conventionally
            ``"phase/param"``, e.g. ``"optimize/16/4"``).
        kind: Cell family (``"grouping"``, ``"optimize"``, ...) used for
            grouping in reports.
        fn: Module-level callable; the runner executes ``fn(*args)`` in a
            worker (or serially) under fresh instrumentation.
        args: Positional arguments; may contain :class:`CellRef` entries
            (including inside tuples/lists one level down).
        cache_key: Content-hash key for cache/checkpoint, ``None`` for
            the default plan-scoped key, or :data:`UNCACHED`.
        key_fn: Lazy key: called with the results of ``key_deps`` (in
            order) once they are available.  Mutually exclusive with
            ``cache_key``.
        key_deps: Cells whose results ``key_fn`` needs.
        shard_key: Optional affinity key for the work-stealing pool —
            cells sharing one land on the same warm worker.
        output: Whether :meth:`PlanKind.assemble` consumes this cell's
            value.  Non-output cells are pruned when no pending cell
            depends on them.
        extra_deps: Ordering-only dependencies not carried via args.
    """

    cell_id: str
    kind: str
    fn: Callable
    args: tuple
    cache_key: str | None = None
    key_fn: Callable | None = None
    key_deps: tuple[str, ...] = ()
    shard_key: str | None = None
    output: bool = True
    extra_deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.cache_key is not None and self.key_fn is not None:
            raise ValueError(
                f"cell {self.cell_id!r}: cache_key and key_fn are "
                "mutually exclusive"
            )
        if self.key_fn is None and self.key_deps:
            raise ValueError(
                f"cell {self.cell_id!r}: key_deps without key_fn"
            )

    @property
    def deps(self) -> tuple[str, ...]:
        """All dependencies, in first-mention order, without duplicates."""
        seen: dict[str, None] = {}
        for ref in iter_refs(self.args):
            seen.setdefault(ref.cell_id)
        for dep in self.extra_deps:
            seen.setdefault(dep)
        for dep in self.key_deps:
            seen.setdefault(dep)
        return tuple(seen)

    def signature(self) -> dict:
        """Deterministic JSON-able identity of the cell (graph-shape
        only — values and callables excluded) for determinism checks."""
        return {
            "cell_id": self.cell_id,
            "kind": self.kind,
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "deps": list(self.deps),
            "cache_key": (
                self.cache_key if self.key_fn is None else
                ["lazy", list(self.key_deps)]
            ),
            "shard_key": self.shard_key,
            "output": self.output,
        }


def iter_refs(value) -> Iterator[CellRef]:
    """Yield every :class:`CellRef` inside an args structure (args tuple,
    plus one level of nested tuples/lists/dict values)."""
    if isinstance(value, CellRef):
        yield value
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            yield from iter_refs(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_refs(item)


def validate_cells(cells: tuple[CellSpec, ...]) -> None:
    """Check the graph invariants: unique ids, known deps, acyclic.

    Raises:
        ValueError: On a duplicate id, a dangling dependency, a
            ``key_dep`` that is not a dependency, or a cycle.
    """
    by_id: dict[str, CellSpec] = {}
    for cell in cells:
        if cell.cell_id in by_id:
            raise ValueError(f"duplicate cell id {cell.cell_id!r}")
        by_id[cell.cell_id] = cell
    for cell in cells:
        for dep in cell.deps:
            if dep not in by_id:
                raise ValueError(
                    f"cell {cell.cell_id!r} depends on unknown cell {dep!r}"
                )
    # Kahn's algorithm; anything left over sits on a cycle.
    pending = {cell.cell_id: set(cell.deps) for cell in cells}
    ready = [cell_id for cell_id, deps in pending.items() if not deps]
    while ready:
        done = ready.pop()
        del pending[done]
        ready.extend(
            cell_id
            for cell_id, deps in pending.items()
            if done in deps and not (deps.discard(done) or deps)
        )
    if pending:
        raise ValueError(
            f"cell graph has a cycle through {sorted(pending)!r}"
        )


def namespaced(prefix: str, cells: tuple[CellSpec, ...]) -> tuple[CellSpec, ...]:
    """Remap a cell graph under ``prefix/`` so plans compose.

    Ids, dependencies, and :class:`CellRef` arguments are all rewritten;
    ``key_fn`` is untouched because it receives dep *values*
    positionally, never ids.  Used e.g. by the stability plan, which is
    the union of one table plan per seed.
    """

    def rename(cell_id: str) -> str:
        return f"{prefix}/{cell_id}"

    def remap(value):
        if isinstance(value, CellRef):
            return CellRef(rename(value.cell_id), project=value.project)
        if isinstance(value, tuple):
            return tuple(remap(item) for item in value)
        if isinstance(value, list):
            return [remap(item) for item in value]
        if isinstance(value, dict):
            return {key: remap(item) for key, item in value.items()}
        return value

    return tuple(
        CellSpec(
            cell_id=rename(cell.cell_id),
            kind=cell.kind,
            fn=cell.fn,
            args=remap(cell.args),
            cache_key=cell.cache_key,
            key_fn=cell.key_fn,
            key_deps=tuple(rename(dep) for dep in cell.key_deps),
            shard_key=cell.shard_key,
            output=cell.output,
            extra_deps=tuple(rename(dep) for dep in cell.extra_deps),
        )
        for cell in cells
    )


def subset(prefix: str, results: Mapping[str, object]) -> dict[str, object]:
    """The de-namespaced slice of ``results`` under ``prefix/`` — the
    inverse of :func:`namespaced` for feeding a sub-plan's assemble."""
    marker = f"{prefix}/"
    return {
        cell_id[len(marker):]: value
        for cell_id, value in results.items()
        if cell_id.startswith(marker)
    }


# ---------------------------------------------------------------------------
# Parameter fingerprinting and serialization.
# ---------------------------------------------------------------------------


def params_fingerprint(value):
    """Canonical JSON-able rendering of plan params for hashing.

    SOCs hash by structural content (never by name), dataclass configs
    by field values; containers recurse.  Anything else must already be
    JSON-scalar.

    Raises:
        TypeError: On a value that has no canonical rendering (e.g. a
            raw pattern list) — such params make a plan un-fingerprintable
            and belong behind a reference or a recipe instead.
    """
    if isinstance(value, Soc):
        return {"__soc__": soc_fingerprint(value)}
    if isinstance(value, Mapping):
        return {
            str(key): params_fingerprint(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (tuple, list)):
        return [params_fingerprint(item) for item in value]
    if isinstance(value, (set, frozenset)):
        # Order-canonicalized; SI groups carry core-id frozensets.
        return sorted(
            (params_fingerprint(item) for item in value), key=repr
        )
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: params_fingerprint(getattr(value, f.name))
                for f in fields(value)
            },
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"plan parameter of type {type(value).__name__} has no canonical "
        "fingerprint; pass a recipe (count/seed/config) or a reference "
        "instead"
    )


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative experiment: kind name + parameters, nothing else.

    Attributes:
        name: Registered :class:`PlanKind` name (``"table"``,
            ``"pareto"``, ...).
        params: The experiment's parameters.  Keep them fingerprint-able
            (see :func:`params_fingerprint`); a live :class:`Soc` or a
            config dataclass is fine, raw pattern lists are not.
    """

    name: str
    params: Mapping = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable content hash of the plan — the dedup/submission key a
        job server would use, and the default checkpoint scope."""
        return "plan-" + stable_hash(
            {"plan": self.name, "params": params_fingerprint(self.params)}
        )

    def expand(self) -> tuple[CellSpec, ...]:
        """The plan's validated cell graph."""
        cells = tuple(plan_kind(self.name).expand(dict(self.params)))
        validate_cells(cells)
        return cells

    def assemble(self, results: Mapping[str, object]):
        """Pure assembly of the report object from cell results."""
        return plan_kind(self.name).assemble(dict(self.params), dict(results))


class PlanKind:
    """One experiment family: how a plan expands and assembles.

    Subclasses set :attr:`name`, implement :meth:`expand` and
    :meth:`assemble`, and may override :meth:`verify` to re-check
    results independently (the ``--verify`` contract).
    """

    name: str = ""

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        raise NotImplementedError

    def assemble(self, params: dict, results: dict[str, object]):
        raise NotImplementedError

    def verify(self, params: dict, results: dict[str, object]) -> list[str]:
        """Independent post-condition check; a non-empty list of
        violation strings fails the run.  Default: nothing to check."""
        return []


# ---------------------------------------------------------------------------
# Kind registry.  Built-in kinds live next to their experiment modules and
# register on import; the lazy map below avoids importing every experiment
# to look one up.
# ---------------------------------------------------------------------------

_KINDS: dict[str, PlanKind] = {}

_BUILTIN_MODULES = {
    "table": "repro.experiments.table_runner",
    "pareto": "repro.experiments.pareto",
    "volume": "repro.experiments.compaction_study",
    "compare": "repro.experiments.compare",
    "multisite": "repro.experiments.multisite",
    "scaling": "repro.experiments.scaling",
    "sensitivity": "repro.experiments.sensitivity",
    "stability": "repro.experiments.stability",
    "optimize": "repro.experiments.single",
    "evaluate": "repro.experiments.single",
}


def register_plan_kind(kind: PlanKind) -> PlanKind:
    """Register a :class:`PlanKind` instance (or class — instantiated
    here) under its :attr:`~PlanKind.name`."""
    if isinstance(kind, type):
        kind = kind()
    if not kind.name:
        raise ValueError("plan kind must set a name")
    _KINDS[kind.name] = kind
    return kind


def plan_kind(name: str) -> PlanKind:
    """Look up a registered kind, importing its built-in module on the
    first miss.

    Raises:
        ValueError: On an unknown kind name.
    """
    if name not in _KINDS and name in _BUILTIN_MODULES:
        import importlib

        importlib.import_module(_BUILTIN_MODULES[name])
    try:
        return _KINDS[name]
    except KeyError:
        known = sorted(set(_KINDS) | set(_BUILTIN_MODULES))
        raise ValueError(
            f"unknown plan kind {name!r}; known kinds: {', '.join(known)}"
        ) from None


def registered_plans() -> tuple[str, ...]:
    """Every known plan kind name (built-ins imported on demand)."""
    for name in _BUILTIN_MODULES:
        plan_kind(name)
    return tuple(sorted(_KINDS))


def plan_cell_key(plan_fingerprint: str, cell_id: str) -> str:
    """Default content-hash key of a plan cell: scoped by the plan's
    fingerprint, so two plans never alias and a checkpoint written for
    one plan can only resume that plan.  Values stored under this key
    must be plain JSON (``"plancell"`` codec)."""
    return "plancell-" + stable_hash(
        {"plan": plan_fingerprint, "cell": cell_id}
    )


# ---------------------------------------------------------------------------
# Plan serialization (the job-server wire format).
# ---------------------------------------------------------------------------


def _encode_param(value):
    from repro.compaction.groups import SITestGroup
    from repro.runtime.codec import group_to_dict
    from repro.sitest.generator import GeneratorConfig
    from repro.soc.itc02 import dumps

    if isinstance(value, Soc):
        return {"__kind__": "soc", "itc02": dumps(value)}
    if isinstance(value, GeneratorConfig):
        return {
            "__kind__": "generator_config",
            "fields": {
                f.name: getattr(value, f.name) for f in fields(value)
            },
        }
    if isinstance(value, SITestGroup):
        return {"__kind__": "si_group", "group": group_to_dict(value)}
    if isinstance(value, Mapping):
        return {str(key): _encode_param(item) for key, item in value.items()}
    if isinstance(value, (tuple, list)):
        return [_encode_param(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"plan parameter of type {type(value).__name__} is not serializable"
    )


def _decode_param(value):
    from repro.runtime.codec import group_from_dict
    from repro.sitest.generator import GeneratorConfig
    from repro.soc.itc02 import parse

    if isinstance(value, dict):
        kind = value.get("__kind__")
        if kind == "soc":
            return parse(value["itc02"])
        if kind == "generator_config":
            return GeneratorConfig(**value["fields"])
        if kind == "si_group":
            return group_from_dict(value["group"])
        return {key: _decode_param(item) for key, item in value.items()}
    if isinstance(value, list):
        return tuple(_decode_param(item) for item in value)
    return value


PLAN_FORMAT = "repro-experiment-plan"
PLAN_VERSION = 1


def plan_to_dict(plan: ExperimentPlan) -> dict:
    """JSON-able serialization of a plan — the payload a submitted job
    carries.  Round-trips through :func:`plan_from_dict` with an
    identical fingerprint."""
    return {
        "format": PLAN_FORMAT,
        "version": PLAN_VERSION,
        "plan": plan.name,
        "params": _encode_param(dict(plan.params)),
        "fingerprint": plan.fingerprint(),
    }


def plan_from_dict(data: dict) -> ExperimentPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output.

    Raises:
        ValueError: On an unexpected format/version or a fingerprint
            that does not match the reconstructed plan (a tampered or
            incompatible submission).
    """
    if data.get("format") != PLAN_FORMAT:
        raise ValueError(f"unexpected plan format {data.get('format')!r}")
    if data.get("version") != PLAN_VERSION:
        raise ValueError(f"unsupported plan version {data.get('version')!r}")
    plan = ExperimentPlan(
        name=data["plan"], params=_decode_param(data["params"])
    )
    expected = data.get("fingerprint")
    if expected is not None and plan.fingerprint() != expected:
        raise ValueError(
            "plan fingerprint mismatch: the serialized plan does not "
            "reconstruct to the submitted content"
        )
    return plan
