"""Harness regenerating the paper's Table 2 and Table 3.

For one SOC the experiment sweeps the TAM width ``W_max`` and, per width,
reports:

* ``T_[8]`` — the SI-oblivious flow: TR-Architect optimizes for InTest
  only, then the SI tests are scheduled on the resulting architecture.
  The paper does not state which grouping prices the baseline's SI tests;
  we give the baseline the *best* grouping (minimum over the same group
  counts), which makes the reported gains conservative.
* ``T_g_i`` — the proposed ``TAM_Optimization`` with the SI tests grouped
  into ``i`` parts (two-dimensional compaction), for each group count.
* ``T_min = min_i T_g_i`` and the derived percentages
  ``ΔT_[8] = (T_[8] - T_min) / T_[8]`` and
  ``ΔT_g = (T_g_1 - T_min) / T_g_1``.

The experiment is expressed as the reference :class:`TablePlan` — a
declarative cell graph executed by
:class:`~repro.experiments.runner.PlanRunner` (see
:mod:`repro.experiments.plan`), which replaces the bespoke two-phase
orchestration this module used to hand-roll:

* one ``grouping/{i}`` cell per group count, keyed by
  :func:`~repro.runtime.cache.grouping_cache_key`, sharing the SI pattern
  set as a :class:`~repro.runtime.pool.PatternsRef` (warm workers
  generate it once per process; cells are sharded by its fingerprint so
  they land together);
* per width, one ``optimize/{w}/{i}`` cell per grouping whose cache key
  derives *lazily* from the grouping result it consumes
  (:class:`~repro.experiments.plan.CellRef` dependency edges), plus the
  InTest-only ``optimize/{w}/base`` cell (``output=False``);
* one ``baseline/{w}`` pricing cell per width — the SI-oblivious
  architecture priced with the *best* grouping — keyed by
  :func:`~repro.runtime.cache.baseline_cache_key` over all grouping
  fingerprints.  When that key is warm the runner *prunes* the
  ``optimize/{w}/base`` producer entirely, exactly as the hand-rolled
  harness skipped it.

Groupings produced by a sweep cell (or restored from the cache) carry an
empty ``compactions`` tuple (see :mod:`repro.runtime.codec`) — the
harness reads only group metadata, and per-group merged pattern lists
would dominate worker→parent traffic.  All sweep backends, job counts,
and warm/cold cache states produce byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compaction.horizontal import GroupingResult, build_si_test_groups
from repro.core.optimizer import evaluate_architecture, optimize_tam
from repro.experiments.plan import (
    CellRef,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
    register_projection,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import (
    EvaluationCache,
    baseline_cache_key,
    grouping_cache_key,
    groups_fingerprint,
    optimize_cache_key,
    patterns_cache_key,
)
from repro.runtime.instrumentation import incr
from repro.runtime.pool import PatternsRef, resolve_patterns
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc

DEFAULT_GROUP_COUNTS = (1, 2, 4, 8)
DEFAULT_WIDTHS = (8, 16, 24, 32, 40, 48, 56, 64)


@dataclass(frozen=True)
class TableRow:
    """One row of a Table 2/3 style experiment (one ``W_max``)."""

    w_max: int
    t_baseline: int
    t_grouped: dict[int, int]

    @property
    def t_min(self) -> int:
        return min(self.t_grouped.values())

    @property
    def best_grouping(self) -> int:
        return min(self.t_grouped, key=self.t_grouped.get)

    @property
    def delta_baseline_pct(self) -> float:
        """``ΔT_[8]`` — gain of the proposed flow over the SI-oblivious one."""
        if self.t_baseline == 0:
            return 0.0
        return (self.t_baseline - self.t_min) / self.t_baseline * 100.0

    @property
    def delta_grouping_pct(self) -> float:
        """``ΔT_g`` — gain of 2-D compaction over 1-D (count-only)."""
        t_g1 = self.t_grouped.get(1)
        if not t_g1:
            return 0.0
        return (t_g1 - self.t_min) / t_g1 * 100.0


@dataclass
class TableResult:
    """A complete table: one experiment over the width sweep."""

    soc_name: str
    pattern_count: int
    seed: int
    group_counts: tuple[int, ...]
    rows: list[TableRow] = field(default_factory=list)
    groupings: dict[int, GroupingResult] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


# ---------------------------------------------------------------------------
# Cell functions (module-level: they ship to worker processes).
# ---------------------------------------------------------------------------


def _grouping_cell_fn(soc, patterns, parts, seed) -> GroupingResult:
    """Plan cell: one two-dimensional compaction run (one group count).

    ``patterns`` may be the materialized list (classic pool protocol) or a
    :class:`PatternsRef` resolved through the warm per-process state cache
    (serial and ``workers`` backends).  The returned grouping is the
    codec-reduced form — ``compactions == ()``, exactly what a cache hit
    would return — so the result ships group metadata, not pattern lists.
    """
    from repro.runtime.codec import grouping_from_dict, grouping_to_dict

    if isinstance(patterns, PatternsRef):
        patterns = resolve_patterns(soc, patterns)
    grouping = build_si_test_groups(soc, patterns, parts=parts, seed=seed)
    return grouping_from_dict(grouping_to_dict(grouping))


def _optimize_cell_fn(soc, w_max, groups, backend):
    """Plan cell: one ``TAM_Optimization`` run (one width, one grouping;
    an empty group tuple is the TR-Architect baseline).  The args carry
    the optimizer backend so a :class:`~repro.runtime.executor.CellError`
    report names the engine that was active when the cell failed."""
    return optimize_tam(soc, w_max, groups=groups, backend=backend)


def _baseline_cell_fn(soc, baseline, groups_of_counts) -> dict:
    """Plan cell: price the SI-oblivious architecture — schedule the SI
    tests of every grouping on it and keep the best total (conservative
    baseline, see module docstring)."""
    return {
        "t_baseline": min(
            evaluate_architecture(
                soc, baseline.architecture, groups
            ).t_total
            for groups in groups_of_counts
        )
    }


def _groups_of(grouping: GroupingResult):
    return grouping.groups


register_projection("grouping.groups", _groups_of)


# ---------------------------------------------------------------------------
# The reference plan kind.
# ---------------------------------------------------------------------------


def _table_params(params: dict) -> tuple:
    soc = params["soc"]
    pattern_count = params["pattern_count"]
    widths = tuple(params.get("widths", DEFAULT_WIDTHS))
    group_counts = tuple(params.get("group_counts", DEFAULT_GROUP_COUNTS))
    seed = params.get("seed", 1)
    config = params.get("generator_config") or GeneratorConfig()
    optimizer_backend = params.get("optimizer_backend", "auto")
    return soc, pattern_count, widths, group_counts, seed, config, \
        optimizer_backend


def _optimize_key(soc, w_max):
    def key(values):
        (grouping,) = values
        return optimize_cache_key(soc, w_max, grouping.groups)

    return key


def _baseline_key(soc, w_max):
    def key(values):
        return baseline_cache_key(
            soc, w_max,
            [groups_fingerprint(grouping.groups) for grouping in values],
        )

    return key


class TablePlan(PlanKind):
    """The Table 2/3 sweep as a declarative cell graph (module docstring)."""

    name = "table"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        (soc, pattern_count, widths, group_counts, seed, config,
         optimizer_backend) = _table_params(params)
        patterns_fp = patterns_cache_key(
            soc, seed, pattern_count, config=config
        )
        patterns_ref = PatternsRef(
            count=pattern_count,
            seed=seed,
            config=config,
            fingerprint=patterns_fp,
            store_dir=None,  # the runner points this at the cache's store
        )
        cells: list[CellSpec] = []
        for parts in group_counts:
            cells.append(
                CellSpec(
                    cell_id=f"grouping/{parts}",
                    kind="grouping",
                    fn=_grouping_cell_fn,
                    args=(soc, patterns_ref, parts, seed),
                    cache_key=grouping_cache_key(
                        soc, seed, pattern_count, parts, config=config
                    ),
                    shard_key=patterns_fp,
                )
            )
        grouping_ids = tuple(f"grouping/{parts}" for parts in group_counts)
        for w_max in widths:
            cells.append(
                CellSpec(
                    cell_id=f"optimize/{w_max}/base",
                    kind="optimize",
                    fn=_optimize_cell_fn,
                    args=(soc, w_max, (), optimizer_backend),
                    cache_key=optimize_cache_key(soc, w_max, ()),
                    output=False,  # pruned when the baseline price is warm
                )
            )
            for parts in group_counts:
                cells.append(
                    CellSpec(
                        cell_id=f"optimize/{w_max}/{parts}",
                        kind="optimize",
                        fn=_optimize_cell_fn,
                        args=(
                            soc,
                            w_max,
                            CellRef(
                                f"grouping/{parts}",
                                project="grouping.groups",
                            ),
                            optimizer_backend,
                        ),
                        key_fn=_optimize_key(soc, w_max),
                        key_deps=(f"grouping/{parts}",),
                    )
                )
            cells.append(
                CellSpec(
                    cell_id=f"baseline/{w_max}",
                    kind="baseline",
                    fn=_baseline_cell_fn,
                    args=(
                        soc,
                        CellRef(f"optimize/{w_max}/base"),
                        tuple(
                            CellRef(cell_id, project="grouping.groups")
                            for cell_id in grouping_ids
                        ),
                    ),
                    key_fn=_baseline_key(soc, w_max),
                    key_deps=grouping_ids,
                )
            )
        return tuple(cells)

    def assemble(self, params: dict, results: dict) -> TableResult:
        (soc, pattern_count, widths, group_counts, seed, _config,
         _backend) = _table_params(params)
        result = TableResult(
            soc_name=soc.name,
            pattern_count=pattern_count,
            seed=seed,
            group_counts=tuple(group_counts),
        )
        for parts in group_counts:
            result.groupings[parts] = results[f"grouping/{parts}"]
        for w_max in widths:
            result.rows.append(
                TableRow(
                    w_max=w_max,
                    t_baseline=results[f"baseline/{w_max}"]["t_baseline"],
                    t_grouped={
                        parts: results[f"optimize/{w_max}/{parts}"].t_total
                        for parts in group_counts
                    },
                )
            )
        return result

    def verify(self, params: dict, results: dict) -> list[str]:
        """Independently re-verify every optimized schedule present in the
        results — cache and checkpoint hits included (the pruned
        SI-oblivious cells are absent by design)."""
        from repro.resilience.verify import (
            ScheduleVerificationError,
            verify_optimization,
        )

        (soc, _count, widths, group_counts, _seed, _config,
         _backend) = _table_params(params)
        optimized_of: dict[tuple[int, int | None], object] = {}
        for w_max in widths:
            for parts in (None, *group_counts):
                cell_id = (
                    f"optimize/{w_max}/base"
                    if parts is None
                    else f"optimize/{w_max}/{parts}"
                )
                if cell_id in results:
                    optimized_of[(w_max, parts)] = results[cell_id]
        for (w_max, parts), optimized in sorted(
            optimized_of.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            groups = (
                ()
                if parts is None
                else results[f"grouping/{parts}"].groups
            )
            violations = verify_optimization(soc, optimized, groups)
            incr("verify.schedules_checked")
            if violations:
                incr("verify.schedules_failed")
                raise ScheduleVerificationError(
                    [f"W_max={w_max} i={parts}: {v}" for v in violations]
                )
        return []


register_plan_kind(TablePlan)


def table_plan(
    soc: Soc,
    pattern_count: int,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    optimizer_backend: str = "auto",
) -> ExperimentPlan:
    """The declarative plan for one Table 2/3 experiment."""
    return ExperimentPlan(
        "table",
        {
            "soc": soc,
            "pattern_count": pattern_count,
            "widths": tuple(widths),
            "group_counts": tuple(group_counts),
            "seed": seed,
            "generator_config": generator_config,
            "optimizer_backend": optimizer_backend,
        },
    )


def run_table_experiment(
    soc: Soc,
    pattern_count: int,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    verbose: bool = False,
    jobs: int = 1,
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
    optimizer_backend: str = "auto",
    sweep_backend: str = "auto",
) -> TableResult:
    """Run the full Table 2/3 experiment for one SOC and one ``N_r``.

    Args:
        soc: The benchmark SOC.
        pattern_count: ``N_r`` — initial SI pattern count before compaction.
        widths: The ``W_max`` sweep.
        group_counts: Group counts ``i`` for the ``T_g_i`` columns.
        seed: Seed for the random SI pattern set.
        generator_config: Pattern generator knobs (paper defaults).
        verbose: Print progress lines after running.
        jobs: Worker processes for the sweep cells (1 = serial; the table
            is identical either way).
        cache: Optional evaluation cache memoizing grouping and optimizer
            cells across runs.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.SweepCheckpoint`.  Cells
            found in it are replayed instead of recomputed (resume after
            a crash); every completed cell — including cache hits — is
            recorded, so the checkpoint alone can resume the sweep.
        verify: Independently re-verify every optimized schedule
            (:func:`repro.resilience.verify.verify_schedule`) — cache and
            checkpoint hits included — and raise on any violation.
        optimizer_backend: Optimizer engine for every cell, one of
            :data:`repro.core.optimizer.OPTIMIZER_BACKENDS`.  All
            backends are bit-identical, so cache keys (and therefore
            hits) are shared across backends by design.
        sweep_backend: Cell fan-out backend, one of
            :data:`repro.runtime.executor.SWEEP_BACKENDS` (``auto``
            resolves to the persistent work-stealing ``workers`` pool for
            ``jobs > 1``).  All backends produce bit-identical tables.
    """
    from repro.core.optimizer import resolve_optimizer_backend

    resolve_optimizer_backend(optimizer_backend)  # fail fast on a typo
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        table_plan(
            soc,
            pattern_count,
            widths=widths,
            group_counts=group_counts,
            seed=seed,
            generator_config=generator_config,
            optimizer_backend=optimizer_backend,
        )
    )
    result: TableResult = run.report
    result.elapsed_seconds = run.wall_seconds
    if verbose:
        print_table_progress(result)
    return result


def print_table_progress(result: TableResult) -> None:
    """Print the per-grouping and per-row progress lines (the
    ``--verbose`` rendering, shared by the library path and the CLI)."""
    tag = f"[{result.soc_name} N_r={result.pattern_count}]"
    for parts in result.group_counts:
        grouping = result.groupings[parts]
        sizes = [group.patterns for group in grouping.groups]
        print(
            f"{tag} grouping i={parts}: "
            f"patterns {sizes} (residual holds {grouping.cut_patterns} "
            "originals)"
        )
    for row in result.rows:
        grouped = " ".join(
            f"T_g{parts}={row.t_grouped[parts]}"
            for parts in result.group_counts
        )
        print(
            f"{tag} W={row.w_max}: "
            f"T_[8]={row.t_baseline} {grouped} "
            f"dT8={row.delta_baseline_pct:.2f}% "
            f"dTg={row.delta_grouping_pct:.2f}%"
        )
