"""Harness regenerating the paper's Table 2 and Table 3.

For one SOC the experiment sweeps the TAM width ``W_max`` and, per width,
reports:

* ``T_[8]`` — the SI-oblivious flow: TR-Architect optimizes for InTest
  only, then the SI tests are scheduled on the resulting architecture.
  The paper does not state which grouping prices the baseline's SI tests;
  we give the baseline the *best* grouping (minimum over the same group
  counts), which makes the reported gains conservative.
* ``T_g_i`` — the proposed ``TAM_Optimization`` with the SI tests grouped
  into ``i`` parts (two-dimensional compaction), for each group count.
* ``T_min = min_i T_g_i`` and the derived percentages
  ``ΔT_[8] = (T_[8] - T_min) / T_[8]`` and
  ``ΔT_g = (T_g_1 - T_min) / T_g_1``.

Groupings depend only on (SOC, pattern seed, ``N_r``, group count), so they
are computed once per experiment and shared across the width sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compaction.horizontal import GroupingResult, build_si_test_groups
from repro.core.optimizer import evaluate_architecture, optimize_tam
from repro.sitest.generator import GeneratorConfig, generate_random_patterns
from repro.soc.model import Soc
from repro.tam.tr_architect import tr_architect

DEFAULT_GROUP_COUNTS = (1, 2, 4, 8)
DEFAULT_WIDTHS = (8, 16, 24, 32, 40, 48, 56, 64)


@dataclass(frozen=True)
class TableRow:
    """One row of a Table 2/3 style experiment (one ``W_max``)."""

    w_max: int
    t_baseline: int
    t_grouped: dict[int, int]

    @property
    def t_min(self) -> int:
        return min(self.t_grouped.values())

    @property
    def best_grouping(self) -> int:
        return min(self.t_grouped, key=self.t_grouped.get)

    @property
    def delta_baseline_pct(self) -> float:
        """``ΔT_[8]`` — gain of the proposed flow over the SI-oblivious one."""
        if self.t_baseline == 0:
            return 0.0
        return (self.t_baseline - self.t_min) / self.t_baseline * 100.0

    @property
    def delta_grouping_pct(self) -> float:
        """``ΔT_g`` — gain of 2-D compaction over 1-D (count-only)."""
        t_g1 = self.t_grouped.get(1)
        if not t_g1:
            return 0.0
        return (t_g1 - self.t_min) / t_g1 * 100.0


@dataclass
class TableResult:
    """A complete table: one experiment over the width sweep."""

    soc_name: str
    pattern_count: int
    seed: int
    group_counts: tuple[int, ...]
    rows: list[TableRow] = field(default_factory=list)
    groupings: dict[int, GroupingResult] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


def run_table_experiment(
    soc: Soc,
    pattern_count: int,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    verbose: bool = False,
) -> TableResult:
    """Run the full Table 2/3 experiment for one SOC and one ``N_r``.

    Args:
        soc: The benchmark SOC.
        pattern_count: ``N_r`` — initial SI pattern count before compaction.
        widths: The ``W_max`` sweep.
        group_counts: Group counts ``i`` for the ``T_g_i`` columns.
        seed: Seed for the random SI pattern set.
        generator_config: Pattern generator knobs (paper defaults).
        verbose: Print progress lines while running.
    """
    start = time.perf_counter()
    patterns = generate_random_patterns(
        soc, pattern_count, seed=seed, config=generator_config
    )

    result = TableResult(
        soc_name=soc.name,
        pattern_count=pattern_count,
        seed=seed,
        group_counts=tuple(group_counts),
    )
    for parts in group_counts:
        grouping = build_si_test_groups(soc, patterns, parts=parts, seed=seed)
        result.groupings[parts] = grouping
        if verbose:
            sizes = [group.patterns for group in grouping.groups]
            print(
                f"[{soc.name} N_r={pattern_count}] grouping i={parts}: "
                f"patterns {sizes} (residual holds {grouping.cut_patterns} "
                "originals)"
            )

    for w_max in widths:
        baseline = tr_architect(soc, w_max)
        t_baseline = min(
            evaluate_architecture(
                soc, baseline.architecture, result.groupings[parts].groups
            ).t_total
            for parts in group_counts
        )
        t_grouped = {}
        for parts in group_counts:
            optimized = optimize_tam(
                soc, w_max, groups=result.groupings[parts].groups
            )
            t_grouped[parts] = optimized.t_total
        row = TableRow(w_max=w_max, t_baseline=t_baseline, t_grouped=t_grouped)
        result.rows.append(row)
        if verbose:
            grouped = " ".join(
                f"T_g{parts}={t_grouped[parts]}" for parts in group_counts
            )
            print(
                f"[{soc.name} N_r={pattern_count}] W={w_max}: "
                f"T_[8]={t_baseline} {grouped} "
                f"dT8={row.delta_baseline_pct:.2f}% "
                f"dTg={row.delta_grouping_pct:.2f}%"
            )

    result.elapsed_seconds = time.perf_counter() - start
    return result
