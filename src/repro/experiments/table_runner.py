"""Harness regenerating the paper's Table 2 and Table 3.

For one SOC the experiment sweeps the TAM width ``W_max`` and, per width,
reports:

* ``T_[8]`` — the SI-oblivious flow: TR-Architect optimizes for InTest
  only, then the SI tests are scheduled on the resulting architecture.
  The paper does not state which grouping prices the baseline's SI tests;
  we give the baseline the *best* grouping (minimum over the same group
  counts), which makes the reported gains conservative.
* ``T_g_i`` — the proposed ``TAM_Optimization`` with the SI tests grouped
  into ``i`` parts (two-dimensional compaction), for each group count.
* ``T_min = min_i T_g_i`` and the derived percentages
  ``ΔT_[8] = (T_[8] - T_min) / T_[8]`` and
  ``ΔT_g = (T_g_1 - T_min) / T_g_1``.

Groupings depend only on (SOC, pattern seed, ``N_r``, group count), so they
are computed once per experiment and shared across the width sweep.

The sweep decomposes into independent cells — one grouping per group
count, one optimizer run per (``W_max``, group count) pair plus the
InTest-only baseline per width — which ``jobs > 1`` fans out over worker
processes via :mod:`repro.runtime.executor`.  Cell results are reassembled
in deterministic (width, group count) order, so the produced table is
byte-identical to the serial one.  An optional
:class:`~repro.runtime.cache.EvaluationCache` memoizes grouping and
optimization cells across runs; a grouping produced by a sweep cell (or
restored from the cache) carries an empty ``compactions`` tuple (see
:mod:`repro.runtime.codec`) — the harness reads only the group metadata,
and the per-group merged pattern lists would dominate the result traffic
between worker and parent.

With the ``workers`` sweep backend (the default resolution of ``auto``
for ``jobs > 1``) one persistent :class:`~repro.runtime.pool.WorkerPool`
spans both cell phases: workers warm up once (C engines pre-loaded), the
SI pattern set travels as a :class:`~repro.runtime.pool.PatternsRef`
resolved through each worker's warm state cache instead of being pickled
into every grouping cell, and grouping cells are routed to workers by
their pattern fingerprint so the set is materialized as few times as
possible.  The serial path resolves the same reference through the same
(parent-process) cache, so repeated sweeps over one (SOC, seed, ``N_r``,
config) generate the pattern set exactly once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compaction.horizontal import GroupingResult, build_si_test_groups
from repro.core.optimizer import evaluate_architecture, optimize_tam
from repro.runtime.cache import (
    EvaluationCache,
    baseline_cache_key,
    grouping_cache_key,
    groups_fingerprint,
    optimize_cache_key,
    patterns_cache_key,
)
from repro.runtime.executor import resolve_sweep_backend, run_cells
from repro.runtime.instrumentation import (
    absorb_snapshot,
    call_with_instrumentation,
)
from repro.runtime.pool import (
    PatternsRef,
    PoolUnavailable,
    WorkerPool,
    default_warmup,
    resolve_patterns,
)
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc
from repro.tam.tr_architect import tr_architect

DEFAULT_GROUP_COUNTS = (1, 2, 4, 8)
DEFAULT_WIDTHS = (8, 16, 24, 32, 40, 48, 56, 64)


@dataclass(frozen=True)
class TableRow:
    """One row of a Table 2/3 style experiment (one ``W_max``)."""

    w_max: int
    t_baseline: int
    t_grouped: dict[int, int]

    @property
    def t_min(self) -> int:
        return min(self.t_grouped.values())

    @property
    def best_grouping(self) -> int:
        return min(self.t_grouped, key=self.t_grouped.get)

    @property
    def delta_baseline_pct(self) -> float:
        """``ΔT_[8]`` — gain of the proposed flow over the SI-oblivious one."""
        if self.t_baseline == 0:
            return 0.0
        return (self.t_baseline - self.t_min) / self.t_baseline * 100.0

    @property
    def delta_grouping_pct(self) -> float:
        """``ΔT_g`` — gain of 2-D compaction over 1-D (count-only)."""
        t_g1 = self.t_grouped.get(1)
        if not t_g1:
            return 0.0
        return (t_g1 - self.t_min) / t_g1 * 100.0


@dataclass
class TableResult:
    """A complete table: one experiment over the width sweep."""

    soc_name: str
    pattern_count: int
    seed: int
    group_counts: tuple[int, ...]
    rows: list[TableRow] = field(default_factory=list)
    groupings: dict[int, GroupingResult] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


def _grouping_cell(spec) -> tuple[GroupingResult, dict]:
    """Sweep cell: one two-dimensional compaction run (one group count).

    ``patterns`` may be the materialized list (classic pool protocol) or a
    :class:`PatternsRef` resolved through the warm per-process state cache
    (serial and ``workers`` backends).  The returned grouping is the
    codec-reduced form — ``compactions == ()``, exactly what a cache hit
    would return — so the result ships group metadata, not pattern lists.
    """
    from repro.runtime.codec import grouping_from_dict, grouping_to_dict

    soc, patterns, parts, seed = spec
    if isinstance(patterns, PatternsRef):
        patterns = resolve_patterns(soc, patterns)

    def build() -> GroupingResult:
        grouping = build_si_test_groups(soc, patterns, parts=parts, seed=seed)
        return grouping_from_dict(grouping_to_dict(grouping))

    return call_with_instrumentation(build)


def _optimize_cell(spec) -> tuple[object, dict]:
    """Sweep cell: one ``TAM_Optimization`` run (one width, one grouping;
    an empty group tuple is the TR-Architect baseline).  The spec carries
    the optimizer backend so a :class:`~repro.runtime.executor.CellError`
    report names the engine that was active when the cell failed."""
    soc, w_max, groups, backend = spec
    return call_with_instrumentation(
        optimize_tam, soc, w_max, groups=groups, backend=backend
    )


def run_table_experiment(
    soc: Soc,
    pattern_count: int,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    verbose: bool = False,
    jobs: int = 1,
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
    optimizer_backend: str = "auto",
    sweep_backend: str = "auto",
) -> TableResult:
    """Run the full Table 2/3 experiment for one SOC and one ``N_r``.

    Args:
        soc: The benchmark SOC.
        pattern_count: ``N_r`` — initial SI pattern count before compaction.
        widths: The ``W_max`` sweep.
        group_counts: Group counts ``i`` for the ``T_g_i`` columns.
        seed: Seed for the random SI pattern set.
        generator_config: Pattern generator knobs (paper defaults).
        verbose: Print progress lines while running.
        jobs: Worker processes for the sweep cells (1 = serial; the table
            is identical either way).
        cache: Optional evaluation cache memoizing grouping and optimizer
            cells across runs.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.SweepCheckpoint`.  Cells
            found in it are replayed instead of recomputed (resume after
            a crash); every completed cell — including cache hits — is
            recorded, so the checkpoint alone can resume the sweep.
        verify: Independently re-verify every optimized schedule
            (:func:`repro.resilience.verify.verify_schedule`) — cache and
            checkpoint hits included — and raise on any violation.
        optimizer_backend: Optimizer engine for every cell, one of
            :data:`repro.core.optimizer.OPTIMIZER_BACKENDS`.  All
            backends are bit-identical, so cache keys (and therefore
            hits) are shared across backends by design.
        sweep_backend: Cell fan-out backend, one of
            :data:`repro.runtime.executor.SWEEP_BACKENDS` (``auto``
            resolves to the persistent work-stealing ``workers`` pool for
            ``jobs > 1``).  All backends produce bit-identical tables.
    """
    from repro.core.optimizer import resolve_optimizer_backend

    resolve_optimizer_backend(optimizer_backend)  # fail fast on a typo
    backend = resolve_sweep_backend(sweep_backend, jobs=jobs)
    start = time.perf_counter()

    pool: WorkerPool | None = None
    pool_failed = False

    def sweep_pool() -> WorkerPool | None:
        """The sweep's shared warm worker pool (``workers`` backend only),
        created on first parallel phase; ``None`` means use the classic
        pool (requested, or persistent workers unavailable here)."""
        nonlocal pool, pool_failed
        if backend != "workers" or jobs <= 1 or pool_failed:
            return None
        if pool is None:
            try:
                pool = WorkerPool(jobs, warmup=default_warmup)
            except PoolUnavailable:
                pool_failed = True
                return None
        return pool

    def lookup(key):
        """Checkpoint first (resume correctness), then the cache."""
        if checkpoint is not None and key in checkpoint:
            value = checkpoint.fetch(key)
            if value is not None:
                return value
        if cache is not None:
            return cache.get(key)
        return None

    def record(key, value):
        if checkpoint is not None:
            checkpoint.record(key, value)

    result = TableResult(
        soc_name=soc.name,
        pattern_count=pattern_count,
        seed=seed,
        group_counts=tuple(group_counts),
    )
    try:
        _run_phases(
            soc, pattern_count, widths, group_counts, seed,
            generator_config, verbose, jobs, cache, checkpoint,
            verify, optimizer_backend, lookup, record, result, sweep_pool,
        )
    finally:
        if pool is not None:
            pool.close()
    result.elapsed_seconds = time.perf_counter() - start
    return result


def _run_phases(
    soc, pattern_count, widths, group_counts, seed, generator_config,
    verbose, jobs, cache, checkpoint, verify, optimizer_backend, lookup,
    record, result, sweep_pool,
) -> None:
    """Body of :func:`run_table_experiment`: the grouping and optimizer
    phases plus verification and row assembly, factored out so the sweep
    pool's lifecycle wraps it cleanly."""
    # --- Groupings: one cell per group count, cached and parallel. -------
    grouping_keys = {
        parts: grouping_cache_key(
            soc, seed, pattern_count, parts, config=generator_config
        )
        for parts in group_counts
    }
    pending_parts = list(group_counts)
    if cache is not None or checkpoint is not None:
        still_pending = []
        for parts in pending_parts:
            hit = lookup(grouping_keys[parts])
            if hit is not None:
                result.groupings[parts] = hit
                record(grouping_keys[parts], hit)
            else:
                still_pending.append(parts)
        pending_parts = still_pending

    if pending_parts:
        patterns_ref = PatternsRef(
            count=pattern_count,
            seed=seed,
            config=generator_config,
            fingerprint=patterns_cache_key(
                soc, seed, pattern_count, config=generator_config
            ),
            store_dir=(
                str(cache.store_dir / "state")
                if cache is not None and cache.store_dir is not None
                else None
            ),
        )
        spool = sweep_pool()
        if spool is None and jobs > 1:
            # Classic one-shot pool: its disposable workers cannot
            # amortize generation, so materialize once in the parent
            # (through the same state cache) and ship per cell.
            spec_patterns = resolve_patterns(soc, patterns_ref)
        else:
            # Serial parent or warm workers resolve the reference through
            # their per-process state cache.
            spec_patterns = patterns_ref
        cells = run_cells(
            _grouping_cell,
            [(soc, spec_patterns, parts, seed) for parts in pending_parts],
            jobs=jobs,
            backend="workers" if spool is not None else "pool",
            pool=spool,
            shard_keys=(
                [patterns_ref.fingerprint] * len(pending_parts)
                if spool is not None else None
            ),
        )
        for parts, (grouping, snapshot) in zip(pending_parts, cells):
            absorb_snapshot(snapshot)
            result.groupings[parts] = grouping
            if cache is not None:
                cache.put(grouping_keys[parts], grouping)
            record(grouping_keys[parts], grouping)

    if verbose:
        for parts in group_counts:
            grouping = result.groupings[parts]
            sizes = [group.patterns for group in grouping.groups]
            print(
                f"[{soc.name} N_r={pattern_count}] grouping i={parts}: "
                f"patterns {sizes} (residual holds {grouping.cut_patterns} "
                "originals)"
            )

    # --- Optimizer cells: per width, the baseline plus one run per -------
    # --- grouping; only cache misses are fanned out.                -------
    all_groupings = [
        groups_fingerprint(result.groupings[parts].groups)
        for parts in group_counts
    ]
    baseline_keys = {
        w_max: baseline_cache_key(soc, w_max, all_groupings)
        for w_max in widths
    }
    optimize_keys = {
        (w_max, parts): optimize_cache_key(
            soc,
            w_max,
            () if parts is None else result.groupings[parts].groups,
        )
        for w_max in widths
        for parts in (None, *group_counts)
    }

    t_baseline_of: dict[int, int] = {}
    optimized_of: dict[tuple[int, int | None], object] = {}
    specs: list[tuple[int, int | None]] = []
    for w_max in widths:
        cached_baseline = lookup(baseline_keys[w_max])
        if cached_baseline is not None:
            t_baseline_of[w_max] = cached_baseline["t_baseline"]
            record(baseline_keys[w_max], cached_baseline)
            baseline_parts = ()  # baseline architecture not needed
        else:
            baseline_parts = (None,)
        for parts in (*baseline_parts, *group_counts):
            hit = lookup(optimize_keys[(w_max, parts)])
            if hit is not None:
                optimized_of[(w_max, parts)] = hit
                record(optimize_keys[(w_max, parts)], hit)
                continue
            specs.append((w_max, parts))

    cell_args = [
        (
            soc,
            w_max,
            () if parts is None else result.groupings[parts].groups,
            optimizer_backend,
        )
        for w_max, parts in specs
    ]
    spool = sweep_pool()
    for (w_max, parts), (optimized, snapshot) in zip(
        specs,
        run_cells(
            _optimize_cell, cell_args, jobs=jobs,
            backend="workers" if spool is not None else "pool",
            pool=spool,
        ),
    ):
        absorb_snapshot(snapshot)
        optimized_of[(w_max, parts)] = optimized
        if cache is not None:
            cache.put(optimize_keys[(w_max, parts)], optimized)
        record(optimize_keys[(w_max, parts)], optimized)

    if verify:
        from repro.resilience.verify import (
            ScheduleVerificationError,
            verify_optimization,
        )
        from repro.runtime.instrumentation import incr

        for (w_max, parts), optimized in sorted(
            optimized_of.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            groups = () if parts is None else result.groupings[parts].groups
            violations = verify_optimization(soc, optimized, groups)
            incr("verify.schedules_checked")
            if violations:
                incr("verify.schedules_failed")
                raise ScheduleVerificationError(
                    [f"W_max={w_max} i={parts}: {v}" for v in violations]
                )

    # --- Assemble rows in deterministic width order. ---------------------
    for w_max in widths:
        if w_max not in t_baseline_of:
            baseline = optimized_of[(w_max, None)]
            t_baseline_of[w_max] = min(
                evaluate_architecture(
                    soc,
                    baseline.architecture,
                    result.groupings[parts].groups,
                ).t_total
                for parts in group_counts
            )
            if cache is not None:
                cache.put(
                    baseline_keys[w_max],
                    {"t_baseline": t_baseline_of[w_max]},
                )
            record(
                baseline_keys[w_max], {"t_baseline": t_baseline_of[w_max]}
            )
        t_grouped = {
            parts: optimized_of[(w_max, parts)].t_total
            for parts in group_counts
        }
        row = TableRow(
            w_max=w_max, t_baseline=t_baseline_of[w_max], t_grouped=t_grouped
        )
        result.rows.append(row)
        if verbose:
            grouped = " ".join(
                f"T_g{parts}={t_grouped[parts]}" for parts in group_counts
            )
            print(
                f"[{soc.name} N_r={pattern_count}] W={w_max}: "
                f"T_[8]={row.t_baseline} {grouped} "
                f"dT8={row.delta_baseline_pct:.2f}% "
                f"dTg={row.delta_grouping_pct:.2f}%"
            )
