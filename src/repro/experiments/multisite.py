"""Multi-site test economics: how many dies to test in parallel.

A tester has a fixed channel budget ``C``.  Testing ``s`` dies ("sites")
concurrently gives each die ``W = C / s`` TAM wires: more sites mean more
dies per insertion but a longer test per die (narrower TAM).  Throughput
is ``s / T_soc(W)`` dies per cycle — maximized where the SOC's
width/time curve flattens, which is exactly why the Pareto knee matters
commercially.

The study reuses the full SI-aware optimizer per site width, so the SI
test burden (which scales differently with width than InTest) is part of
the economics.  It is the declarative :class:`MultisitePlan` — one
``optimize/{sites}`` cell per site count, keyed by
:func:`~repro.runtime.cache.optimize_cache_key` and therefore sharing
optimizer runs with the Pareto and table experiments through the same
evaluation cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import optimize_tam
from repro.experiments.plan import (
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import EvaluationCache, optimize_cache_key
from repro.soc.model import Soc


@dataclass(frozen=True)
class SitePoint:
    """Economics of one site count."""

    sites: int
    width_per_site: int
    t_soc: int

    @property
    def throughput(self) -> float:
        """Dies per kilocycle of tester time."""
        if self.t_soc == 0:
            return float("inf")
        return self.sites / self.t_soc * 1_000.0


@dataclass(frozen=True)
class MultisiteStudy:
    """Swept site counts for one SOC and channel budget."""

    soc_name: str
    channels: int
    points: tuple[SitePoint, ...]

    def best(self) -> SitePoint:
        """The throughput-optimal site count."""
        if not self.points:
            raise ValueError("empty study")
        return max(self.points, key=lambda point: point.throughput)


def _multisite_cell_fn(soc, width, groups):
    """Plan cell: optimize one per-site width."""
    return optimize_tam(soc, width, groups=groups)


def _multisite_params(params: dict) -> tuple:
    soc = params["soc"]
    channels = params["channels"]
    groups = tuple(params.get("groups", ()))
    site_counts = params.get("site_counts")
    if channels <= 0:
        raise ValueError("channel budget must be positive")
    if site_counts is None:
        site_counts = tuple(
            sites for sites in range(1, channels + 1)
            if channels % sites == 0
        )
    else:
        site_counts = tuple(site_counts)
    for sites in site_counts:
        if sites <= 0 or channels % sites != 0:
            raise ValueError(
                f"site count {sites} does not divide {channels} channels"
            )
    return soc, channels, groups, site_counts


class MultisitePlan(PlanKind):
    """The multisite sweep as a declarative cell graph."""

    name = "multisite"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, channels, groups, site_counts = _multisite_params(params)
        return tuple(
            CellSpec(
                cell_id=f"optimize/{sites}",
                kind="optimize",
                fn=_multisite_cell_fn,
                args=(soc, channels // sites, groups),
                cache_key=optimize_cache_key(soc, channels // sites, groups),
            )
            for sites in site_counts
        )

    def assemble(self, params: dict, results: dict) -> MultisiteStudy:
        soc, channels, _groups, site_counts = _multisite_params(params)
        points = tuple(
            SitePoint(
                sites=sites,
                width_per_site=channels // sites,
                t_soc=results[f"optimize/{sites}"].t_total,
            )
            for sites in site_counts
        )
        return MultisiteStudy(
            soc_name=soc.name, channels=channels, points=points
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        """Re-verify every per-site schedule — cache hits included."""
        from repro.resilience.verify import verify_optimization
        from repro.runtime.instrumentation import incr

        soc, channels, groups, site_counts = _multisite_params(params)
        violations = []
        for sites in site_counts:
            found = verify_optimization(
                soc, results[f"optimize/{sites}"], groups
            )
            incr("verify.schedules_checked")
            if found:
                incr("verify.schedules_failed")
                violations.extend(
                    f"sites={sites} W={channels // sites}: {v}"
                    for v in found
                )
        return violations


register_plan_kind(MultisitePlan)


def multisite_plan(
    soc: Soc,
    channels: int,
    groups: tuple[SITestGroup, ...] = (),
    site_counts: tuple[int, ...] | None = None,
) -> ExperimentPlan:
    """The declarative plan for one multisite study."""
    return ExperimentPlan(
        "multisite",
        {
            "soc": soc,
            "channels": channels,
            "groups": tuple(groups),
            "site_counts": (
                None if site_counts is None else tuple(site_counts)
            ),
        },
    )


def run_multisite_study(
    soc: Soc,
    channels: int,
    groups: tuple[SITestGroup, ...] = (),
    site_counts: tuple[int, ...] | None = None,
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> MultisiteStudy:
    """Sweep site counts that divide the channel budget.

    Args:
        soc: The SOC under test.
        channels: Total tester channel budget ``C``.
        groups: SI test groups (same per die).
        site_counts: Counts to sweep; defaults to every divisor of
            ``channels`` that leaves at least one wire per site.
        jobs: Worker processes for the per-site optimizer cells.
        sweep_backend: Cell fan-out backend (see
            :data:`repro.runtime.executor.SWEEP_BACKENDS`).
        cache: Optional evaluation cache shared with the other
            experiments (per-site cells reuse table/Pareto optimizer
            results at the same width).
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.SweepCheckpoint`.
        verify: Independently re-verify every per-site schedule.

    Raises:
        ValueError: On a non-positive channel budget or a site count that
            does not divide it.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        multisite_plan(soc, channels, groups=groups, site_counts=site_counts)
    )
    return run.report


def format_multisite_report(study: MultisiteStudy) -> str:
    """Text table with the throughput-optimal row marked."""
    best = study.best()
    lines = [
        f"{study.soc_name}: {study.channels} tester channels",
        f"{'sites':>6} {'W/site':>7} {'T_soc (cc)':>11} "
        f"{'dies/kcc':>9}",
    ]
    for point in study.points:
        marker = "  <- best" if point == best else ""
        lines.append(
            f"{point.sites:>6} {point.width_per_site:>7} "
            f"{point.t_soc:>11} {point.throughput:>9.4f}{marker}"
        )
    return "\n".join(lines)
