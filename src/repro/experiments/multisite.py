"""Multi-site test economics: how many dies to test in parallel.

A tester has a fixed channel budget ``C``.  Testing ``s`` dies ("sites")
concurrently gives each die ``W = C / s`` TAM wires: more sites mean more
dies per insertion but a longer test per die (narrower TAM).  Throughput
is ``s / T_soc(W)`` dies per cycle — maximized where the SOC's
width/time curve flattens, which is exactly why the Pareto knee matters
commercially.

The study reuses the full SI-aware optimizer per site width, so the SI
test burden (which scales differently with width than InTest) is part of
the economics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import optimize_tam
from repro.soc.model import Soc


@dataclass(frozen=True)
class SitePoint:
    """Economics of one site count."""

    sites: int
    width_per_site: int
    t_soc: int

    @property
    def throughput(self) -> float:
        """Dies per kilocycle of tester time."""
        if self.t_soc == 0:
            return float("inf")
        return self.sites / self.t_soc * 1_000.0


@dataclass(frozen=True)
class MultisiteStudy:
    """Swept site counts for one SOC and channel budget."""

    soc_name: str
    channels: int
    points: tuple[SitePoint, ...]

    def best(self) -> SitePoint:
        """The throughput-optimal site count."""
        if not self.points:
            raise ValueError("empty study")
        return max(self.points, key=lambda point: point.throughput)


def run_multisite_study(
    soc: Soc,
    channels: int,
    groups: tuple[SITestGroup, ...] = (),
    site_counts: tuple[int, ...] | None = None,
) -> MultisiteStudy:
    """Sweep site counts that divide the channel budget.

    Args:
        soc: The SOC under test.
        channels: Total tester channel budget ``C``.
        groups: SI test groups (same per die).
        site_counts: Counts to sweep; defaults to every divisor of
            ``channels`` that leaves at least one wire per site.

    Raises:
        ValueError: On a non-positive channel budget or a site count that
            does not divide it.
    """
    if channels <= 0:
        raise ValueError("channel budget must be positive")
    if site_counts is None:
        site_counts = tuple(
            sites for sites in range(1, channels + 1)
            if channels % sites == 0
        )
    points = []
    for sites in site_counts:
        if sites <= 0 or channels % sites != 0:
            raise ValueError(
                f"site count {sites} does not divide {channels} channels"
            )
        width = channels // sites
        result = optimize_tam(soc, width, groups=groups)
        points.append(
            SitePoint(sites=sites, width_per_site=width,
                      t_soc=result.t_total)
        )
    return MultisiteStudy(
        soc_name=soc.name, channels=channels, points=tuple(points)
    )


def format_multisite_report(study: MultisiteStudy) -> str:
    """Text table with the throughput-optimal row marked."""
    best = study.best()
    lines = [
        f"{study.soc_name}: {study.channels} tester channels",
        f"{'sites':>6} {'W/site':>7} {'T_soc (cc)':>11} "
        f"{'dies/kcc':>9}",
    ]
    for point in study.points:
        marker = "  <- best" if point == best else ""
        lines.append(
            f"{point.sites:>6} {point.width_per_site:>7} "
            f"{point.t_soc:>11} {point.throughput:>9.4f}{marker}"
        )
    return "\n".join(lines)
