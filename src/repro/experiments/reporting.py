"""Rendering of experiment results: the paper's table layout and the
unified JSON run report every plan-driven experiment emits.

:func:`experiment_report` is the single emitter behind ``--profile`` and
``tools/run_experiments.py``: one schema
(:class:`~repro.runtime.instrumentation.RunReport` — ``command``,
``arguments``, ``counters``, ``timers``, ``cache``, ``plan``) for every
experiment, with the executed plan's fingerprint, backend, and cell
accounting under the ``plan`` key.  Argument key names follow the CLI
flag names (``soc``, ``patterns``, ``widths``, ``parts``, ``seed``,
``jobs``, ``cache``, ``sweep_backend``, ``resume``, ``verify``) so
reports from different experiments diff cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import PlanRun
from repro.experiments.table_runner import TableResult
from repro.runtime.instrumentation import RunReport, get_instrumentation


def plan_block(run: PlanRun, counters: dict | None = None) -> dict:
    """The standardized ``plan`` section of a run report.

    With ``counters`` (the run's instrumentation counters) the block
    also discloses fault injection, recovery actions, and resource-guard
    hits under ``faults`` / ``recovery`` / ``guard`` sub-dicts, so a
    partial or degraded run is auditable from the JSON alone.
    """
    block = {
        "name": run.plan.name,
        "fingerprint": run.fingerprint,
        "backend": run.backend,
        "jobs": run.jobs,
        "status": run.status,
        "cells": {
            "expanded": run.cells,
            "executed": run.executed,
            "cached": run.cached,
            "resumed": run.resumed,
            "pruned": run.pruned,
            "poisoned": len(run.poisoned),
        },
    }
    if run.poisoned:
        block["poisoned"] = dict(sorted(run.poisoned.items()))
    if run.breaker_tripped:
        block["breaker_tripped"] = True
    if counters:
        for section, prefix in (
            ("faults", "faults.injected"),
            ("recovery", "recovery."),
            ("guard", "guard."),
        ):
            picked = {
                name: value
                for name, value in sorted(counters.items())
                if name.startswith(prefix)
            }
            if picked:
                block[section] = picked
    return block


def experiment_report(
    command: str,
    arguments: dict,
    run: PlanRun,
    wall_seconds: float | None = None,
    instrumentation=None,
) -> RunReport:
    """The unified run report of one executed plan.

    Args:
        command: CLI command (equals the plan kind for the built-ins).
        arguments: The run's parameters, keyed by CLI flag name.
        run: The :class:`~repro.experiments.runner.PlanRun` to report.
        wall_seconds: End-to-end elapsed time; defaults to the plan
            run's own wall clock.
        instrumentation: Instrumentation to snapshot (current if None).
    """
    inst = (
        instrumentation
        if instrumentation is not None
        else get_instrumentation()
    )
    report = RunReport.build(
        command=command,
        arguments=arguments,
        wall_seconds=(
            run.wall_seconds if wall_seconds is None else wall_seconds
        ),
        instrumentation=inst,
        plan=plan_block(run, counters=dict(inst.counters)),
    )
    report.cache = dict(run.cache_stats)
    return report


def render_table(result: TableResult) -> str:
    """Render a :class:`TableResult` like the paper's Table 2/3."""
    group_headers = [f"T_g{parts} (cc)" for parts in result.group_counts]
    headers = (
        ["Wmax", "T_[8] (cc)"]
        + group_headers
        + ["T_min (cc)", "dT_[8] (%)", "dT_g (%)"]
    )
    rows = []
    for row in result.rows:
        rows.append(
            [
                str(row.w_max),
                str(row.t_baseline),
                *(str(row.t_grouped[parts]) for parts in result.group_counts),
                str(row.t_min),
                f"{row.delta_baseline_pct:.2f}",
                f"{row.delta_grouping_pct:.2f}",
            ]
        )

    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        if rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = [
        f"SOC {result.soc_name}, N_r = {result.pattern_count:,} "
        f"(seed {result.seed})"
    ]
    lines.append(
        " | ".join(header.rjust(width) for header, width in zip(headers, widths))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def result_to_dict(result: TableResult) -> dict:
    """JSON-serializable summary of a table experiment."""
    return {
        "soc": result.soc_name,
        "pattern_count": result.pattern_count,
        "seed": result.seed,
        "group_counts": list(result.group_counts),
        "elapsed_seconds": result.elapsed_seconds,
        "compaction": {
            str(parts): {
                "groups": [
                    {
                        "cores": sorted(group.cores),
                        "patterns": group.patterns,
                        "original_patterns": group.original_patterns,
                        "is_residual": group.is_residual,
                    }
                    for group in grouping.groups
                ],
                "cut_patterns": grouping.cut_patterns,
            }
            for parts, grouping in result.groupings.items()
        },
        "rows": [
            {
                "w_max": row.w_max,
                "t_baseline": row.t_baseline,
                "t_grouped": {str(k): v for k, v in row.t_grouped.items()},
                "t_min": row.t_min,
                "delta_baseline_pct": round(row.delta_baseline_pct, 2),
                "delta_grouping_pct": round(row.delta_grouping_pct, 2),
            }
            for row in result.rows
        ],
    }


def save_result(result: TableResult, path: str | Path) -> None:
    """Write the JSON summary of a table experiment to disk."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
