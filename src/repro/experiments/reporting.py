"""Rendering of experiment results in the paper's table layout."""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.table_runner import TableResult


def render_table(result: TableResult) -> str:
    """Render a :class:`TableResult` like the paper's Table 2/3."""
    group_headers = [f"T_g{parts} (cc)" for parts in result.group_counts]
    headers = (
        ["Wmax", "T_[8] (cc)"]
        + group_headers
        + ["T_min (cc)", "dT_[8] (%)", "dT_g (%)"]
    )
    rows = []
    for row in result.rows:
        rows.append(
            [
                str(row.w_max),
                str(row.t_baseline),
                *(str(row.t_grouped[parts]) for parts in result.group_counts),
                str(row.t_min),
                f"{row.delta_baseline_pct:.2f}",
                f"{row.delta_grouping_pct:.2f}",
            ]
        )

    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        if rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = [
        f"SOC {result.soc_name}, N_r = {result.pattern_count:,} "
        f"(seed {result.seed})"
    ]
    lines.append(
        " | ".join(header.rjust(width) for header, width in zip(headers, widths))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def result_to_dict(result: TableResult) -> dict:
    """JSON-serializable summary of a table experiment."""
    return {
        "soc": result.soc_name,
        "pattern_count": result.pattern_count,
        "seed": result.seed,
        "group_counts": list(result.group_counts),
        "elapsed_seconds": result.elapsed_seconds,
        "compaction": {
            str(parts): {
                "groups": [
                    {
                        "cores": sorted(group.cores),
                        "patterns": group.patterns,
                        "original_patterns": group.original_patterns,
                        "is_residual": group.is_residual,
                    }
                    for group in grouping.groups
                ],
                "cut_patterns": grouping.cut_patterns,
            }
            for parts, grouping in result.groupings.items()
        },
        "rows": [
            {
                "w_max": row.w_max,
                "t_baseline": row.t_baseline,
                "t_grouped": {str(k): v for k, v in row.t_grouped.items()},
                "t_min": row.t_min,
                "delta_baseline_pct": round(row.delta_baseline_pct, 2),
                "delta_grouping_pct": round(row.delta_grouping_pct, 2),
            }
            for row in result.rows
        ],
    }


def save_result(result: TableResult, path: str | Path) -> None:
    """Write the JSON summary of a table experiment to disk."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
