"""Sensitivity of the headline results to the pattern-generation knobs.

The paper fixes the generation protocol (``N_a`` in 2..6, at most two
external aggressors, 50% bus usage).  This harness perturbs one knob at a
time and measures the effect on the compacted pattern count and on the
optimized ``T_soc`` — quantifying how much of the result depends on the
protocol rather than on the algorithms.

The study is the declarative :class:`SensitivityPlan`: per variant, a
``grouping/{i}`` cell (keyed by
:func:`~repro.runtime.cache.grouping_cache_key` under the variant's
generator config, patterns travelling as a
:class:`~repro.runtime.pool.PatternsRef`) feeding an ``optimize/{i}``
cell whose cache key derives lazily from the grouping it consumes.  Two
cells per variant make a killed run resume mid-variant — the grouping
survives even when the optimizer never finished.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.plan import (
    CellRef,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.runner import PlanRunner
from repro.experiments.table_runner import (
    _grouping_cell_fn,
    _optimize_cell_fn,
    _optimize_key,
)
from repro.runtime.cache import (
    EvaluationCache,
    grouping_cache_key,
    patterns_cache_key,
)
from repro.runtime.pool import PatternsRef
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc


@dataclass(frozen=True)
class SensitivityPoint:
    """Effect of one generator configuration."""

    label: str
    config: GeneratorConfig
    compacted_patterns: int
    t_total: int


def _default_variants() -> tuple[tuple[str, GeneratorConfig], ...]:
    base = GeneratorConfig()
    return (
        ("paper defaults", base),
        ("no bus", replace(base, bus_probability=0.0)),
        ("bus always", replace(base, bus_probability=1.0)),
        ("few aggressors (2-3)", replace(base, max_aggressors=3)),
        ("many aggressors (4-10)",
         replace(base, min_aggressors=4, max_aggressors=10)),
        ("local only (0 external)",
         replace(base, max_external_aggressors=0)),
        ("spread (4 external)",
         replace(base, max_external_aggressors=4)),
    )


def _sensitivity_params(params: dict) -> tuple:
    soc = params["soc"]
    pattern_count = params["pattern_count"]
    w_max = params["w_max"]
    parts = params.get("parts", 4)
    seed = params.get("seed", 1)
    variants = params.get("variants")
    if pattern_count < 0 or w_max <= 0 or parts <= 0:
        raise ValueError("invalid study parameters")
    if variants is None:
        variants = _default_variants()
    else:
        variants = tuple(
            (label, config) for label, config in variants
        )
    return soc, pattern_count, w_max, parts, seed, variants


class SensitivityPlan(PlanKind):
    """The generator sweep as a declarative cell graph (module
    docstring)."""

    name = "sensitivity"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, pattern_count, w_max, parts, seed, variants = (
            _sensitivity_params(params)
        )
        cells: list[CellSpec] = []
        for index, (_label, config) in enumerate(variants):
            patterns_fp = patterns_cache_key(
                soc, seed, pattern_count, config=config
            )
            cells.append(
                CellSpec(
                    cell_id=f"grouping/{index}",
                    kind="grouping",
                    fn=_grouping_cell_fn,
                    args=(
                        soc,
                        PatternsRef(
                            count=pattern_count,
                            seed=seed,
                            config=config,
                            fingerprint=patterns_fp,
                            store_dir=None,
                        ),
                        parts,
                        seed,
                    ),
                    cache_key=grouping_cache_key(
                        soc, seed, pattern_count, parts, config=config
                    ),
                    shard_key=patterns_fp,
                )
            )
            cells.append(
                CellSpec(
                    cell_id=f"optimize/{index}",
                    kind="optimize",
                    fn=_optimize_cell_fn,
                    args=(
                        soc,
                        w_max,
                        CellRef(
                            f"grouping/{index}", project="grouping.groups"
                        ),
                        "auto",
                    ),
                    key_fn=_optimize_key(soc, w_max),
                    key_deps=(f"grouping/{index}",),
                )
            )
        return tuple(cells)

    def assemble(
        self, params: dict, results: dict
    ) -> tuple[SensitivityPoint, ...]:
        _soc, _count, _w_max, _parts, _seed, variants = _sensitivity_params(
            params
        )
        return tuple(
            SensitivityPoint(
                label=label,
                config=config,
                compacted_patterns=(
                    results[f"grouping/{index}"].total_compacted_patterns
                ),
                t_total=results[f"optimize/{index}"].t_total,
            )
            for index, (label, config) in enumerate(variants)
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        """Re-verify every variant's optimized schedule."""
        from repro.resilience.verify import verify_optimization
        from repro.runtime.instrumentation import incr

        soc, _count, _w_max, _parts, _seed, variants = _sensitivity_params(
            params
        )
        violations = []
        for index, (label, _config) in enumerate(variants):
            found = verify_optimization(
                soc,
                results[f"optimize/{index}"],
                results[f"grouping/{index}"].groups,
            )
            incr("verify.schedules_checked")
            if found:
                incr("verify.schedules_failed")
                violations.extend(f"{label}: {v}" for v in found)
        return violations


register_plan_kind(SensitivityPlan)


def sensitivity_plan(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    parts: int = 4,
    seed: int = 1,
    variants: tuple[tuple[str, GeneratorConfig], ...] | None = None,
) -> ExperimentPlan:
    """The declarative plan for one sensitivity study."""
    return ExperimentPlan(
        "sensitivity",
        {
            "soc": soc,
            "pattern_count": pattern_count,
            "w_max": w_max,
            "parts": parts,
            "seed": seed,
            "variants": (
                None
                if variants is None
                else tuple((label, config) for label, config in variants)
            ),
        },
    )


def run_sensitivity_study(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    parts: int = 4,
    seed: int = 1,
    variants: tuple[tuple[str, GeneratorConfig], ...] | None = None,
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> tuple[SensitivityPoint, ...]:
    """Run the pipeline once per generator variant.

    Variants are independent, so ``jobs > 1`` fans their cells out over
    worker processes; ``cache``/``checkpoint`` memoize and resume at cell
    granularity (a killed run replays finished groupings and optimizer
    cells instead of recomputing them); ``verify`` independently
    re-checks every variant's schedule.

    Raises:
        ValueError: On non-positive parameters.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        sensitivity_plan(
            soc,
            pattern_count,
            w_max,
            parts=parts,
            seed=seed,
            variants=variants,
        )
    )
    return run.report


def format_sensitivity_report(
    points: tuple[SensitivityPoint, ...]
) -> str:
    """Text table; the first row is the reference configuration."""
    if not points:
        return "(no variants)"
    reference = points[0].t_total or 1
    lines = [
        f"{'variant':<26} {'compacted':>10} {'T_soc (cc)':>11} "
        f"{'vs ref':>8}"
    ]
    for point in points:
        delta = (point.t_total - reference) / reference * 100
        lines.append(
            f"{point.label:<26} {point.compacted_patterns:>10} "
            f"{point.t_total:>11} {delta:>+7.1f}%"
        )
    return "\n".join(lines)
