"""Sensitivity of the headline results to the pattern-generation knobs.

The paper fixes the generation protocol (``N_a`` in 2..6, at most two
external aggressors, 50% bus usage).  This harness perturbs one knob at a
time and measures the effect on the compacted pattern count and on the
optimized ``T_soc`` — quantifying how much of the result depends on the
protocol rather than on the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compaction.horizontal import build_si_test_groups
from repro.core.optimizer import optimize_tam
from repro.sitest.generator import GeneratorConfig, generate_random_patterns
from repro.soc.model import Soc


@dataclass(frozen=True)
class SensitivityPoint:
    """Effect of one generator configuration."""

    label: str
    config: GeneratorConfig
    compacted_patterns: int
    t_total: int


def _default_variants() -> tuple[tuple[str, GeneratorConfig], ...]:
    base = GeneratorConfig()
    return (
        ("paper defaults", base),
        ("no bus", replace(base, bus_probability=0.0)),
        ("bus always", replace(base, bus_probability=1.0)),
        ("few aggressors (2-3)", replace(base, max_aggressors=3)),
        ("many aggressors (4-10)",
         replace(base, min_aggressors=4, max_aggressors=10)),
        ("local only (0 external)",
         replace(base, max_external_aggressors=0)),
        ("spread (4 external)",
         replace(base, max_external_aggressors=4)),
    )


def run_sensitivity_study(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    parts: int = 4,
    seed: int = 1,
    variants: tuple[tuple[str, GeneratorConfig], ...] | None = None,
) -> tuple[SensitivityPoint, ...]:
    """Run the pipeline once per generator variant.

    Raises:
        ValueError: On non-positive parameters.
    """
    if pattern_count < 0 or w_max <= 0 or parts <= 0:
        raise ValueError("invalid study parameters")
    if variants is None:
        variants = _default_variants()

    points = []
    for label, config in variants:
        patterns = generate_random_patterns(
            soc, pattern_count, seed=seed, config=config
        )
        grouping = build_si_test_groups(soc, patterns, parts=parts,
                                        seed=seed)
        result = optimize_tam(soc, w_max, groups=grouping.groups)
        points.append(
            SensitivityPoint(
                label=label,
                config=config,
                compacted_patterns=grouping.total_compacted_patterns,
                t_total=result.t_total,
            )
        )
    return tuple(points)


def format_sensitivity_report(
    points: tuple[SensitivityPoint, ...]
) -> str:
    """Text table; the first row is the reference configuration."""
    if not points:
        return "(no variants)"
    reference = points[0].t_total or 1
    lines = [
        f"{'variant':<26} {'compacted':>10} {'T_soc (cc)':>11} "
        f"{'vs ref':>8}"
    ]
    for point in points:
        delta = (point.t_total - reference) / reference * 100
        lines.append(
            f"{point.label:<26} {point.compacted_patterns:>10} "
            f"{point.t_total:>11} {delta:>+7.1f}%"
        )
    return "\n".join(lines)
