"""Pin-budget / test-time Pareto analysis.

``W_max`` is a routing-area budget the system integrator must choose;
this module sweeps it, producing the `(W, T_soc)` trade-off curve, and
finds its *knee* — the budget past which extra wires stop paying — via
the maximum-distance-to-chord criterion.  The DFT area model from
:mod:`repro.wrapper.cells` can be folded in to express both axes in
comparable silicon terms.

The sweep is the declarative :class:`ParetoPlan` — one ``optimize/{w}``
cell per budget, keyed by
:func:`~repro.runtime.cache.optimize_cache_key` so curve points are
shared with the table and multisite experiments through the same
evaluation cache — executed by
:class:`~repro.experiments.runner.PlanRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import optimize_tam
from repro.experiments.plan import (
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import EvaluationCache, optimize_cache_key
from repro.soc.model import Soc


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the trade-off curve."""

    w_max: int
    t_total: int
    t_in: int
    t_si: int


@dataclass(frozen=True)
class ParetoCurve:
    """The swept trade-off curve.

    Attributes:
        soc_name: SOC the sweep belongs to.
        points: One point per swept budget, in increasing budget order.
    """

    soc_name: str
    points: tuple[ParetoPoint, ...]

    def knee(self) -> ParetoPoint:
        """The knee point: maximum normalized distance to the chord from
        the first to the last point.

        Raises:
            ValueError: On a curve with fewer than two points.
        """
        if len(self.points) < 2:
            raise ValueError("need at least two points to find a knee")
        first, last = self.points[0], self.points[-1]
        span_w = last.w_max - first.w_max or 1
        span_t = first.t_total - last.t_total or 1
        best = self.points[0]
        best_distance = float("-inf")
        for point in self.points:
            # Normalize both axes to [0, 1] and measure the vertical
            # distance below the descending chord.
            x = (point.w_max - first.w_max) / span_w
            y = (first.t_total - point.t_total) / span_t
            distance = y - x
            if distance > best_distance:
                best_distance = distance
                best = point
        return best

    def dominated_points(self) -> tuple[ParetoPoint, ...]:
        """Swept points strictly dominated by a cheaper budget (wider but
        not faster) — they exist because the optimizer is a heuristic."""
        dominated = []
        best_so_far = None
        for point in self.points:
            if best_so_far is not None and point.t_total >= best_so_far:
                dominated.append(point)
            else:
                best_so_far = point.t_total
        return tuple(dominated)


def _pareto_cell_fn(soc, w_max, groups, capture_cycles):
    """Plan cell: one budget of the trade-off curve."""
    return optimize_tam(
        soc, w_max, groups=groups, capture_cycles=capture_cycles
    )


def _pareto_params(params: dict) -> tuple:
    soc = params["soc"]
    widths = tuple(params["widths"])
    groups = tuple(params.get("groups", ()))
    capture_cycles = params.get("capture_cycles", 1)
    return soc, widths, groups, capture_cycles


class ParetoPlan(PlanKind):
    """The width sweep as a declarative cell graph."""

    name = "pareto"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, widths, groups, capture_cycles = _pareto_params(params)
        if not widths:
            raise ValueError("need at least one width")
        if list(widths) != sorted(set(widths)):
            raise ValueError("widths must be strictly increasing")
        return tuple(
            CellSpec(
                cell_id=f"optimize/{w_max}",
                kind="optimize",
                fn=_pareto_cell_fn,
                args=(soc, w_max, groups, capture_cycles),
                cache_key=optimize_cache_key(
                    soc, w_max, groups, capture_cycles
                ),
            )
            for w_max in widths
        )

    def assemble(self, params: dict, results: dict) -> ParetoCurve:
        soc, widths, _groups, _cycles = _pareto_params(params)
        points = []
        for w_max in widths:
            result = results[f"optimize/{w_max}"]
            points.append(
                ParetoPoint(
                    w_max=w_max,
                    t_total=result.t_total,
                    t_in=result.evaluation.t_in,
                    t_si=result.evaluation.t_si,
                )
            )
        return ParetoCurve(soc_name=soc.name, points=tuple(points))

    def verify(self, params: dict, results: dict) -> list[str]:
        """Re-verify every swept schedule — cache hits included."""
        from repro.resilience.verify import verify_optimization
        from repro.runtime.instrumentation import incr

        soc, widths, groups, _cycles = _pareto_params(params)
        violations = []
        for w_max in widths:
            found = verify_optimization(
                soc, results[f"optimize/{w_max}"], groups
            )
            incr("verify.schedules_checked")
            if found:
                incr("verify.schedules_failed")
                violations.extend(f"W_max={w_max}: {v}" for v in found)
        return violations


register_plan_kind(ParetoPlan)


def pareto_plan(
    soc: Soc,
    widths: tuple[int, ...],
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> ExperimentPlan:
    """The declarative plan for one width sweep."""
    return ExperimentPlan(
        "pareto",
        {
            "soc": soc,
            "widths": tuple(widths),
            "groups": tuple(groups),
            "capture_cycles": capture_cycles,
        },
    )


def sweep_widths(
    soc: Soc,
    widths: tuple[int, ...],
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> ParetoCurve:
    """Optimize the SOC at each budget and collect the trade-off curve.

    Budgets are independent, so ``jobs > 1`` fans them out over worker
    processes; the curve is identical to a serial sweep.  ``sweep_backend``
    picks the fan-out machinery (see
    :data:`repro.runtime.executor.SWEEP_BACKENDS`); the curve is
    backend-independent.  ``cache`` and ``checkpoint`` memoize and resume
    individual curve points; ``verify`` independently re-checks every
    swept schedule.

    Raises:
        ValueError: If ``widths`` is empty or not strictly increasing.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        pareto_plan(soc, widths, groups=groups, capture_cycles=capture_cycles)
    )
    return run.report


def format_curve(curve: ParetoCurve) -> str:
    """Text rendering of the curve with the knee marked."""
    knee = curve.knee() if len(curve.points) >= 2 else None
    lines = [f"{'Wmax':>5} {'T_total':>10} {'T_in':>10} {'T_si':>9}"]
    for point in curve.points:
        marker = "  <- knee" if knee is not None and point == knee else ""
        lines.append(
            f"{point.w_max:>5} {point.t_total:>10} {point.t_in:>10} "
            f"{point.t_si:>9}{marker}"
        )
    return "\n".join(lines)
