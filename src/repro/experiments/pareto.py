"""Pin-budget / test-time Pareto analysis.

``W_max`` is a routing-area budget the system integrator must choose;
this module sweeps it, producing the `(W, T_soc)` trade-off curve, and
finds its *knee* — the budget past which extra wires stop paying — via
the maximum-distance-to-chord criterion.  The DFT area model from
:mod:`repro.wrapper.cells` can be folded in to express both axes in
comparable silicon terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import optimize_tam
from repro.runtime.executor import run_cells
from repro.runtime.instrumentation import (
    absorb_snapshot,
    call_with_instrumentation,
)
from repro.soc.model import Soc


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the trade-off curve."""

    w_max: int
    t_total: int
    t_in: int
    t_si: int


@dataclass(frozen=True)
class ParetoCurve:
    """The swept trade-off curve.

    Attributes:
        soc_name: SOC the sweep belongs to.
        points: One point per swept budget, in increasing budget order.
    """

    soc_name: str
    points: tuple[ParetoPoint, ...]

    def knee(self) -> ParetoPoint:
        """The knee point: maximum normalized distance to the chord from
        the first to the last point.

        Raises:
            ValueError: On a curve with fewer than two points.
        """
        if len(self.points) < 2:
            raise ValueError("need at least two points to find a knee")
        first, last = self.points[0], self.points[-1]
        span_w = last.w_max - first.w_max or 1
        span_t = first.t_total - last.t_total or 1
        best = self.points[0]
        best_distance = float("-inf")
        for point in self.points:
            # Normalize both axes to [0, 1] and measure the vertical
            # distance below the descending chord.
            x = (point.w_max - first.w_max) / span_w
            y = (first.t_total - point.t_total) / span_t
            distance = y - x
            if distance > best_distance:
                best_distance = distance
                best = point
        return best

    def dominated_points(self) -> tuple[ParetoPoint, ...]:
        """Swept points strictly dominated by a cheaper budget (wider but
        not faster) — they exist because the optimizer is a heuristic."""
        dominated = []
        best_so_far = None
        for point in self.points:
            if best_so_far is not None and point.t_total >= best_so_far:
                dominated.append(point)
            else:
                best_so_far = point.t_total
        return tuple(dominated)


def _pareto_cell(spec):
    """Sweep cell: one budget of the trade-off curve."""
    soc, w_max, groups, capture_cycles = spec
    return call_with_instrumentation(
        optimize_tam, soc, w_max, groups=groups, capture_cycles=capture_cycles
    )


def sweep_widths(
    soc: Soc,
    widths: tuple[int, ...],
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
    jobs: int = 1,
    sweep_backend: str = "auto",
) -> ParetoCurve:
    """Optimize the SOC at each budget and collect the trade-off curve.

    Budgets are independent, so ``jobs > 1`` fans them out over worker
    processes; the curve is identical to a serial sweep.  ``sweep_backend``
    picks the fan-out machinery (see
    :data:`repro.runtime.executor.SWEEP_BACKENDS`); the curve is
    backend-independent.

    Raises:
        ValueError: If ``widths`` is empty or not strictly increasing.
    """
    if not widths:
        raise ValueError("need at least one width")
    if list(widths) != sorted(set(widths)):
        raise ValueError("widths must be strictly increasing")
    cells = run_cells(
        _pareto_cell,
        [(soc, w_max, groups, capture_cycles) for w_max in widths],
        jobs=jobs,
        backend=sweep_backend,
    )
    points = []
    for w_max, (result, snapshot) in zip(widths, cells):
        absorb_snapshot(snapshot)
        points.append(
            ParetoPoint(
                w_max=w_max,
                t_total=result.t_total,
                t_in=result.evaluation.t_in,
                t_si=result.evaluation.t_si,
            )
        )
    return ParetoCurve(soc_name=soc.name, points=tuple(points))


def format_curve(curve: ParetoCurve) -> str:
    """Text rendering of the curve with the knee marked."""
    knee = curve.knee() if len(curve.points) >= 2 else None
    lines = [f"{'Wmax':>5} {'T_total':>10} {'T_in':>10} {'T_si':>9}"]
    for point in curve.points:
        marker = "  <- knee" if knee is not None and point == knee else ""
        lines.append(
            f"{point.w_max:>5} {point.t_total:>10} {point.t_in:>10} "
            f"{point.t_si:>9}{marker}"
        )
    return "\n".join(lines)
