"""Single-shot ``optimize`` and ``evaluate`` experiments as plans.

The CLI's ``repro optimize`` and ``repro evaluate`` commands predate the
declarative plan layer and run their optimizer calls inline.  These two
kinds express the same computations as ordinary
:class:`~repro.experiments.plan.ExperimentPlan`\\ s so they can travel
over the wire to the :mod:`repro.service` job server, dedup by content
fingerprint, and share the evaluation cache with every sweep:

* ``optimize`` — one grouping cell (when ``pattern_count > 0``) feeding
  one ``TAM_Optimization`` cell, keyed by
  :func:`~repro.runtime.cache.optimize_cache_key` exactly like the
  table/pareto sweeps, so a service-side optimize job warms the same
  cache entries a later ``repro table`` run hits.
* ``evaluate`` — price a fixed architecture (the JSON form produced by
  ``repro optimize --save-arch``) against an SI grouping.  The cell
  value is the codec dict of the evaluation (plain JSON), stored under
  the default plan-scoped cell key.

Both reports carry the SOC so their renderers can draw the schedule
Gantt without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import evaluate_architecture
from repro.core.scheduling import Evaluation
from repro.experiments.plan import (
    CellRef,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.table_runner import (
    _grouping_cell_fn,
    _optimize_cell_fn,
)
from repro.runtime.cache import (
    grouping_cache_key,
    optimize_cache_key,
    patterns_cache_key,
)
from repro.runtime.codec import (
    architecture_from_dict,
    architecture_to_dict,
    evaluation_from_dict,
    evaluation_to_dict,
)
from repro.runtime.pool import PatternsRef, resolve_patterns
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc
from repro.tam.gantt import render_schedule
from repro.tam.testrail import TestRailArchitecture


@dataclass(frozen=True)
class OptimizeReport:
    """Report of a single ``optimize`` plan run."""

    soc: Soc
    result: object  # OptimizationResult
    groups: tuple


@dataclass(frozen=True)
class EvaluateReport:
    """Report of a single ``evaluate`` plan run."""

    soc: Soc
    architecture: TestRailArchitecture
    evaluation: Evaluation
    groups: tuple


def _evaluate_cell_fn(soc, architecture, groups, backend) -> dict:
    """Plan cell: price a fixed architecture (codec-dict in, codec-dict
    out — the value must be plain JSON for the default cell key)."""
    if isinstance(groups, PatternsRef):  # pragma: no cover - defensive
        groups = resolve_patterns(soc, groups)
    evaluation = evaluate_architecture(
        soc, architecture_from_dict(architecture), tuple(groups),
        backend=backend,
    )
    return evaluation_to_dict(evaluation)


def _single_params(params: dict) -> tuple:
    soc = params["soc"]
    pattern_count = params.get("pattern_count", 0)
    parts = params.get("parts", 4)
    seed = params.get("seed", 1)
    config = params.get("generator_config") or GeneratorConfig()
    backend = params.get("optimizer_backend", "auto")
    return soc, pattern_count, parts, seed, config, backend


def _grouping_cells(soc, pattern_count, parts, seed, config):
    """The shared grouping producer both single kinds prepend when the
    submission asks for SI patterns (``pattern_count > 0``)."""
    patterns_fp = patterns_cache_key(soc, seed, pattern_count, config=config)
    patterns_ref = PatternsRef(
        count=pattern_count,
        seed=seed,
        config=config,
        fingerprint=patterns_fp,
        store_dir=None,
    )
    return (
        CellSpec(
            cell_id="grouping",
            kind="grouping",
            fn=_grouping_cell_fn,
            args=(soc, patterns_ref, parts, seed),
            cache_key=grouping_cache_key(
                soc, seed, pattern_count, parts, config=config
            ),
            shard_key=patterns_fp,
        ),
    )


def _optimize_key(soc, w_max):
    def key(values):
        (grouping,) = values
        return optimize_cache_key(soc, w_max, grouping.groups)

    return key


class OptimizePlan(PlanKind):
    """One ``TAM_Optimization`` run as a submittable plan."""

    name = "optimize"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, pattern_count, parts, seed, config, backend = _single_params(
            params
        )
        w_max = params["w_max"]
        if pattern_count <= 0:
            return (
                CellSpec(
                    cell_id="optimize",
                    kind="optimize",
                    fn=_optimize_cell_fn,
                    args=(soc, w_max, (), backend),
                    cache_key=optimize_cache_key(soc, w_max, ()),
                ),
            )
        return _grouping_cells(soc, pattern_count, parts, seed, config) + (
            CellSpec(
                cell_id="optimize",
                kind="optimize",
                fn=_optimize_cell_fn,
                args=(
                    soc,
                    w_max,
                    CellRef("grouping", project="grouping.groups"),
                    backend,
                ),
                key_fn=_optimize_key(soc, w_max),
                key_deps=("grouping",),
            ),
        )

    def assemble(self, params: dict, results: dict) -> OptimizeReport:
        soc, pattern_count, *_ = _single_params(params)
        groups = (
            results["grouping"].groups if pattern_count > 0 else ()
        )
        return OptimizeReport(
            soc=soc, result=results["optimize"], groups=tuple(groups)
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        from repro.resilience.verify import verify_optimization
        from repro.runtime.instrumentation import incr

        soc, pattern_count, *_ = _single_params(params)
        groups = (
            results["grouping"].groups if pattern_count > 0 else ()
        )
        violations = verify_optimization(
            soc, results["optimize"], tuple(groups)
        )
        incr("verify.schedules_checked")
        if violations:
            incr("verify.schedules_failed")
        return list(violations)


class EvaluatePlan(PlanKind):
    """Pricing of a fixed architecture as a submittable plan."""

    name = "evaluate"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, pattern_count, parts, seed, config, backend = _single_params(
            params
        )
        architecture = dict(params["architecture"])
        if pattern_count <= 0:
            return (
                CellSpec(
                    cell_id="evaluate",
                    kind="evaluate",
                    fn=_evaluate_cell_fn,
                    args=(soc, architecture, (), backend),
                ),
            )
        return _grouping_cells(soc, pattern_count, parts, seed, config) + (
            CellSpec(
                cell_id="evaluate",
                kind="evaluate",
                fn=_evaluate_cell_fn,
                args=(
                    soc,
                    architecture,
                    CellRef("grouping", project="grouping.groups"),
                    backend,
                ),
            ),
        )

    def assemble(self, params: dict, results: dict) -> EvaluateReport:
        soc, pattern_count, *_ = _single_params(params)
        groups = (
            results["grouping"].groups if pattern_count > 0 else ()
        )
        return EvaluateReport(
            soc=soc,
            architecture=architecture_from_dict(params["architecture"]),
            evaluation=evaluation_from_dict(results["evaluate"]),
            groups=tuple(groups),
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        from repro.resilience.verify import verify_schedule
        from repro.runtime.instrumentation import incr

        report = self.assemble(params, results)
        violations = verify_schedule(
            report.soc, report.architecture, report.evaluation, report.groups
        )
        incr("verify.schedules_checked")
        if violations:
            incr("verify.schedules_failed")
        return list(violations)


register_plan_kind(OptimizePlan)
register_plan_kind(EvaluatePlan)


def optimize_plan(
    soc: Soc,
    w_max: int,
    pattern_count: int = 0,
    parts: int = 4,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    optimizer_backend: str = "auto",
) -> ExperimentPlan:
    """The declarative plan for one architecture optimization."""
    return ExperimentPlan(
        "optimize",
        {
            "soc": soc,
            "w_max": w_max,
            "pattern_count": pattern_count,
            "parts": parts,
            "seed": seed,
            "generator_config": generator_config,
            "optimizer_backend": optimizer_backend,
        },
    )


def evaluate_plan(
    soc: Soc,
    architecture: TestRailArchitecture | dict,
    pattern_count: int = 0,
    parts: int = 4,
    seed: int = 1,
    generator_config: GeneratorConfig = GeneratorConfig(),
    optimizer_backend: str = "auto",
) -> ExperimentPlan:
    """The declarative plan for pricing one saved architecture."""
    if isinstance(architecture, TestRailArchitecture):
        architecture = architecture_to_dict(architecture)
    return ExperimentPlan(
        "evaluate",
        {
            "soc": soc,
            "architecture": architecture,
            "pattern_count": pattern_count,
            "parts": parts,
            "seed": seed,
            "generator_config": generator_config,
            "optimizer_backend": optimizer_backend,
        },
    )


def format_optimize_report(report: OptimizeReport) -> str:
    """Text rendering identical to the ``repro optimize`` command."""
    evaluation = report.result.evaluation
    lines = [
        f"T_total = {evaluation.t_total} cc "
        f"(T_in = {evaluation.t_in}, T_si = {evaluation.t_si})"
    ]
    for index, rail in enumerate(report.result.architecture.rails):
        cores = ", ".join(str(core_id) for core_id in rail.cores)
        lines.append(f"  TAM{index}: width {rail.width:>2}, cores [{cores}]")
    lines.append("")
    lines.append(
        render_schedule(report.soc, report.result.architecture, evaluation)
    )
    return "\n".join(lines)


def format_evaluate_report(report: EvaluateReport) -> str:
    """Text rendering identical to the ``repro evaluate`` command."""
    evaluation = report.evaluation
    lines = [
        f"T_total = {evaluation.t_total} cc "
        f"(T_in = {evaluation.t_in}, T_si = {evaluation.t_si})",
        render_schedule(report.soc, report.architecture, evaluation),
    ]
    return "\n".join(lines)
