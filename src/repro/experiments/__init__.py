"""Experiment harness reproducing the paper's tables."""

from repro.experiments.compare import (
    Comparison,
    Contender,
    compare_optimizers,
    format_comparison,
)
from repro.experiments.compaction_study import (
    CompactionVolume,
    format_volume_report,
    measure_compaction,
)
from repro.experiments.multisite import (
    MultisiteStudy,
    SitePoint,
    format_multisite_report,
    run_multisite_study,
)
from repro.experiments.pareto import (
    ParetoCurve,
    ParetoPoint,
    format_curve,
    sweep_widths,
)
from repro.experiments.reporting import render_table, result_to_dict, save_result
from repro.experiments.sensitivity import (
    SensitivityPoint,
    format_sensitivity_report,
    run_sensitivity_study,
)
from repro.experiments.stability import (
    StabilityReport,
    StabilityRow,
    run_stability_study,
)
from repro.experiments.scaling import (
    ScalingPoint,
    format_scaling_report,
    run_scaling_study,
)
from repro.experiments.table_runner import (
    DEFAULT_GROUP_COUNTS,
    DEFAULT_WIDTHS,
    TableResult,
    TableRow,
    run_table_experiment,
)

__all__ = [
    "DEFAULT_GROUP_COUNTS",
    "DEFAULT_WIDTHS",
    "CompactionVolume",
    "Comparison",
    "Contender",
    "compare_optimizers",
    "format_comparison",
    "MultisiteStudy",
    "SitePoint",
    "format_multisite_report",
    "run_multisite_study",
    "ParetoCurve",
    "format_volume_report",
    "measure_compaction",
    "ParetoPoint",
    "ScalingPoint",
    "SensitivityPoint",
    "StabilityReport",
    "format_sensitivity_report",
    "run_sensitivity_study",
    "StabilityRow",
    "run_stability_study",
    "TableResult",
    "format_curve",
    "format_scaling_report",
    "run_scaling_study",
    "sweep_widths",
    "TableRow",
    "render_table",
    "result_to_dict",
    "run_table_experiment",
    "save_result",
]
