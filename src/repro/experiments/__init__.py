"""Experiment harness reproducing the paper's tables.

Every experiment is a declarative :class:`ExperimentPlan` (see
:mod:`repro.experiments.plan`) executed by :class:`PlanRunner`; the
``run_*`` functions below are thin wrappers that build the plan and run
it with the uniform ``jobs/cache/checkpoint/sweep_backend/verify``
knobs.
"""

from repro.experiments.compare import (
    Comparison,
    Contender,
    compare_optimizers,
    compare_plan,
    format_comparison,
)
from repro.experiments.compaction_study import (
    CompactionVolume,
    format_volume_report,
    measure_compaction,
    run_volume_study,
    volume_plan,
)
from repro.experiments.multisite import (
    MultisiteStudy,
    SitePoint,
    format_multisite_report,
    multisite_plan,
    run_multisite_study,
)
from repro.experiments.pareto import (
    ParetoCurve,
    ParetoPoint,
    format_curve,
    pareto_plan,
    sweep_widths,
)
from repro.experiments.plan import (
    UNCACHED,
    CellRef,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    plan_from_dict,
    plan_kind,
    plan_to_dict,
    register_plan_kind,
    register_projection,
    registered_plans,
    validate_cells,
)
from repro.experiments.reporting import (
    experiment_report,
    plan_block,
    render_table,
    result_to_dict,
    save_result,
)
from repro.experiments.runner import PlanRun, PlanRunner
from repro.experiments.sensitivity import (
    SensitivityPoint,
    format_sensitivity_report,
    run_sensitivity_study,
    sensitivity_plan,
)
from repro.experiments.stability import (
    StabilityReport,
    StabilityRow,
    run_stability_study,
    stability_plan,
)
from repro.experiments.scaling import (
    ScalingPoint,
    format_scaling_report,
    run_scaling_study,
    scaling_plan,
)
from repro.experiments.table_runner import (
    DEFAULT_GROUP_COUNTS,
    DEFAULT_WIDTHS,
    TableResult,
    TableRow,
    print_table_progress,
    run_table_experiment,
    table_plan,
)

__all__ = [
    "DEFAULT_GROUP_COUNTS",
    "DEFAULT_WIDTHS",
    "UNCACHED",
    "CellRef",
    "CellSpec",
    "CompactionVolume",
    "Comparison",
    "Contender",
    "ExperimentPlan",
    "MultisiteStudy",
    "ParetoCurve",
    "ParetoPoint",
    "PlanKind",
    "PlanRun",
    "PlanRunner",
    "ScalingPoint",
    "SensitivityPoint",
    "SitePoint",
    "StabilityReport",
    "StabilityRow",
    "TableResult",
    "TableRow",
    "compare_optimizers",
    "compare_plan",
    "experiment_report",
    "format_comparison",
    "format_curve",
    "format_multisite_report",
    "format_scaling_report",
    "format_sensitivity_report",
    "format_volume_report",
    "measure_compaction",
    "multisite_plan",
    "pareto_plan",
    "plan_block",
    "plan_from_dict",
    "plan_kind",
    "plan_to_dict",
    "print_table_progress",
    "register_plan_kind",
    "register_projection",
    "registered_plans",
    "render_table",
    "result_to_dict",
    "run_multisite_study",
    "run_scaling_study",
    "run_sensitivity_study",
    "run_stability_study",
    "run_table_experiment",
    "run_volume_study",
    "save_result",
    "scaling_plan",
    "sensitivity_plan",
    "stability_plan",
    "sweep_widths",
    "table_plan",
    "validate_cells",
    "volume_plan",
]
