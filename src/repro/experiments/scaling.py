"""Scaling study: optimizer quality and runtime versus SOC size.

Sweeps synthesized SOCs of growing core counts through the full pipeline
(pattern generation → compaction → Algorithm 2) and records wall-clock
runtime, achieved time and the lower-bound gap.  Answers the adoption
question the shipped benchmarks cannot: how does the tool behave on SOCs
bigger (or differently mixed) than the ITC'02 set?

The sweep is the declarative :class:`ScalingPlan` — one ``scale/{n}``
cell per core count running the whole pipeline (the SOC is synthesized
inside the cell, so plan parameters stay tiny).  Cells carry the default
plan-scoped cache key; note that the recorded stage runtimes are part of
the cell value, so a cache or checkpoint hit replays the originally
measured seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.plan import (
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import EvaluationCache


@dataclass(frozen=True)
class ScalingPoint:
    """One SOC size in the sweep."""

    core_count: int
    w_max: int
    t_total: int
    bound_gap: float
    optimize_seconds: float
    compaction_seconds: float


def _scaling_cell_fn(core_count, w_max, pattern_count, parts, seed) -> dict:
    """Plan cell: the full pipeline at one synthesized SOC size."""
    from repro.compaction.horizontal import build_si_test_groups
    from repro.core.bounds import bound_report
    from repro.core.optimizer import optimize_tam
    from repro.sitest.generator import generate_random_patterns
    from repro.soc.synth import DEFAULT_MIX, synthesize_soc

    soc = synthesize_soc(
        f"scale{core_count}", core_count, mix=DEFAULT_MIX, seed=seed
    )
    patterns = generate_random_patterns(soc, pattern_count, seed=seed)

    started = time.perf_counter()
    grouping = build_si_test_groups(
        soc, patterns, parts=min(parts, core_count), seed=seed
    )
    compaction_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result = optimize_tam(soc, w_max, groups=grouping.groups)
    optimize_seconds = time.perf_counter() - started

    report = bound_report(soc, w_max, grouping.groups)
    return {
        "core_count": core_count,
        "w_max": w_max,
        "t_total": result.t_total,
        "bound_gap": report.gap(result.t_total),
        "optimize_seconds": optimize_seconds,
        "compaction_seconds": compaction_seconds,
    }


def _scaling_params(params: dict) -> tuple:
    core_counts = tuple(params["core_counts"])
    w_max = params.get("w_max", 32)
    pattern_count = params.get("pattern_count", 2_000)
    parts = params.get("parts", 4)
    seed = params.get("seed", 0)
    if not core_counts:
        raise ValueError("need at least one core count")
    if pattern_count < 0 or w_max <= 0 or parts <= 0:
        raise ValueError("invalid sweep parameters")
    return core_counts, w_max, pattern_count, parts, seed


class ScalingPlan(PlanKind):
    """The scaling sweep as a declarative cell graph."""

    name = "scaling"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        core_counts, w_max, pattern_count, parts, seed = _scaling_params(
            params
        )
        return tuple(
            CellSpec(
                cell_id=f"scale/{core_count}",
                kind="scaling",
                fn=_scaling_cell_fn,
                args=(core_count, w_max, pattern_count, parts, seed),
            )
            for core_count in core_counts
        )

    def assemble(
        self, params: dict, results: dict
    ) -> tuple[ScalingPoint, ...]:
        core_counts, *_rest = _scaling_params(params)
        return tuple(
            ScalingPoint(**results[f"scale/{core_count}"])
            for core_count in core_counts
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        """The lower-bound gap must stay sane at every size: a negative
        gap means the achieved time beat the bound."""
        core_counts, *_rest = _scaling_params(params)
        return [
            f"{core_count} cores: bound gap "
            f"{results[f'scale/{core_count}']['bound_gap']:.4f} is negative"
            for core_count in core_counts
            if results[f"scale/{core_count}"]["bound_gap"] < 0
        ]


register_plan_kind(ScalingPlan)


def scaling_plan(
    core_counts: tuple[int, ...],
    w_max: int = 32,
    pattern_count: int = 2_000,
    parts: int = 4,
    seed: int = 0,
) -> ExperimentPlan:
    """The declarative plan for one scaling sweep."""
    return ExperimentPlan(
        "scaling",
        {
            "core_counts": tuple(core_counts),
            "w_max": w_max,
            "pattern_count": pattern_count,
            "parts": parts,
            "seed": seed,
        },
    )


def run_scaling_study(
    core_counts: tuple[int, ...],
    w_max: int = 32,
    pattern_count: int = 2_000,
    parts: int = 4,
    seed: int = 0,
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> tuple[ScalingPoint, ...]:
    """Run the pipeline at each SOC size and collect the scaling points.

    Sizes are independent, so ``jobs > 1`` fans them out over worker
    processes (per-stage seconds are measured inside each cell either
    way).  ``cache``/``checkpoint`` memoize and resume whole sizes —
    replayed points carry their originally measured runtimes.

    Raises:
        ValueError: On an empty size list or non-positive parameters.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        scaling_plan(
            core_counts,
            w_max=w_max,
            pattern_count=pattern_count,
            parts=parts,
            seed=seed,
        )
    )
    return run.report


def format_scaling_report(points: tuple[ScalingPoint, ...]) -> str:
    """Text rendering of a scaling sweep."""
    lines = [
        f"{'cores':>6} {'Wmax':>5} {'T_total':>10} {'bound gap':>10} "
        f"{'compact s':>10} {'optimize s':>11}"
    ]
    for point in points:
        lines.append(
            f"{point.core_count:>6} {point.w_max:>5} {point.t_total:>10} "
            f"{point.bound_gap:>9.1%} {point.compaction_seconds:>10.2f} "
            f"{point.optimize_seconds:>11.2f}"
        )
    return "\n".join(lines)
