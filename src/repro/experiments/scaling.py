"""Scaling study: optimizer quality and runtime versus SOC size.

Sweeps synthesized SOCs of growing core counts through the full pipeline
(pattern generation → compaction → Algorithm 2) and records wall-clock
runtime, achieved time and the lower-bound gap.  Answers the adoption
question the shipped benchmarks cannot: how does the tool behave on SOCs
bigger (or differently mixed) than the ITC'02 set?
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.compaction.horizontal import build_si_test_groups
from repro.core.bounds import bound_report
from repro.core.optimizer import optimize_tam
from repro.sitest.generator import generate_random_patterns
from repro.soc.synth import DEFAULT_MIX, synthesize_soc


@dataclass(frozen=True)
class ScalingPoint:
    """One SOC size in the sweep."""

    core_count: int
    w_max: int
    t_total: int
    bound_gap: float
    optimize_seconds: float
    compaction_seconds: float


def run_scaling_study(
    core_counts: tuple[int, ...],
    w_max: int = 32,
    pattern_count: int = 2_000,
    parts: int = 4,
    seed: int = 0,
) -> tuple[ScalingPoint, ...]:
    """Run the pipeline at each SOC size and collect the scaling points.

    Raises:
        ValueError: On an empty size list or non-positive parameters.
    """
    if not core_counts:
        raise ValueError("need at least one core count")
    if pattern_count < 0 or w_max <= 0 or parts <= 0:
        raise ValueError("invalid sweep parameters")

    points = []
    for core_count in core_counts:
        soc = synthesize_soc(
            f"scale{core_count}", core_count, mix=DEFAULT_MIX, seed=seed
        )
        patterns = generate_random_patterns(soc, pattern_count, seed=seed)

        started = time.perf_counter()
        grouping = build_si_test_groups(
            soc, patterns, parts=min(parts, core_count), seed=seed
        )
        compaction_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = optimize_tam(soc, w_max, groups=grouping.groups)
        optimize_seconds = time.perf_counter() - started

        report = bound_report(soc, w_max, grouping.groups)
        points.append(
            ScalingPoint(
                core_count=core_count,
                w_max=w_max,
                t_total=result.t_total,
                bound_gap=report.gap(result.t_total),
                optimize_seconds=optimize_seconds,
                compaction_seconds=compaction_seconds,
            )
        )
    return tuple(points)


def format_scaling_report(points: tuple[ScalingPoint, ...]) -> str:
    """Text rendering of a scaling sweep."""
    lines = [
        f"{'cores':>6} {'Wmax':>5} {'T_total':>10} {'bound gap':>10} "
        f"{'compact s':>10} {'optimize s':>11}"
    ]
    for point in points:
        lines.append(
            f"{point.core_count:>6} {point.w_max:>5} {point.t_total:>10} "
            f"{point.bound_gap:>9.1%} {point.compaction_seconds:>10.2f} "
            f"{point.optimize_seconds:>11.2f}"
        )
    return "\n".join(lines)
