"""Head-to-head optimizer comparison on one instance.

Runs every optimizer the library implements on the same (SOC, ``W_max``,
SI groups) instance and tabulates total times, runtimes, and the gap to
the lower bound — the one-stop answer to "which optimizer should I use?".

Contenders: TR-Architect (InTest-only, then pay for SI), Algorithm 2,
Algorithm 2 with exact SI scheduling, simulated annealing (cold and warm
started), the Test Bus architecture, and — when the instance is small
enough — the exact enumeration optimizer.

The shoot-out is the declarative :class:`ComparePlan`: one cell per
contender plus a ``bound`` cell, so ``jobs > 1`` races the optimizers
concurrently.  The warm-started SA cell consumes Algorithm 2's
architecture through a :class:`~repro.experiments.plan.CellRef`
projection.  Contender runtimes are measured inside each cell; a cache
or checkpoint hit replays the recorded runtime along with the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.annealing import AnnealingConfig, anneal_tam
from repro.core.bounds import bound_report
from repro.core.exact import MAX_EXACT_CORES, exact_optimize
from repro.core.optimizer import optimize_tam
from repro.core.scheduling import TamEvaluator
from repro.experiments.plan import (
    CellRef,
    CellSpec,
    ExperimentPlan,
    PlanKind,
    register_plan_kind,
    register_projection,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import EvaluationCache
from repro.soc.model import Soc
from repro.tam.testbus import optimize_testbus
from repro.tam.tr_architect import si_oblivious_total


@dataclass(frozen=True)
class Contender:
    """One optimizer's showing on the instance."""

    name: str
    t_total: int
    seconds: float


@dataclass(frozen=True)
class Comparison:
    """All contenders plus the lower bound."""

    soc_name: str
    w_max: int
    bound: int
    contenders: tuple[Contender, ...]

    def best(self) -> Contender:
        if not self.contenders:
            raise ValueError("no contenders")
        return min(self.contenders, key=lambda c: c.t_total)


# ---------------------------------------------------------------------------
# Cell functions (module-level: they ship to worker processes).  Each
# returns a plain-JSON contender record; runtimes are in-cell wall clock.
# ---------------------------------------------------------------------------


def _timed(name: str, runner) -> dict:
    started = time.perf_counter()
    total = runner()
    return {
        "name": name,
        "t_total": total,
        "seconds": time.perf_counter() - started,
    }


def _bound_cell_fn(soc, w_max, groups) -> int:
    return bound_report(soc, w_max, groups).t_total_bound


def _tr_cell_fn(soc, w_max, groups) -> dict:
    return _timed(
        "TR-Architect + post-hoc SI",
        lambda: si_oblivious_total(soc, w_max, groups).t_total,
    )


def _alg2_cell_fn(soc, w_max, groups) -> dict:
    from repro.runtime.codec import architecture_to_dict

    started = time.perf_counter()
    result = optimize_tam(soc, w_max, groups)
    return {
        "name": "Algorithm 2",
        "t_total": result.t_total,
        "seconds": time.perf_counter() - started,
        # Shipped so the warm-started SA cell can take over exactly here.
        "architecture": architecture_to_dict(result.architecture),
    }


def _exact_si_cell_fn(soc, w_max, groups) -> dict:
    return _timed(
        "Algorithm 2 + exact SI schedule",
        lambda: optimize_tam(
            soc, w_max, groups,
            evaluator=TamEvaluator(soc, groups, exact_schedule=True),
        ).t_total,
    )


def _sa_cell_fn(soc, w_max, groups, steps) -> dict:
    return _timed(
        "simulated annealing",
        lambda: anneal_tam(
            soc, w_max, groups,
            config=AnnealingConfig(steps=steps, seed=1),
        ).t_total,
    )


def _sa_warm_cell_fn(soc, w_max, groups, steps, architecture) -> dict:
    from repro.runtime.codec import architecture_from_dict

    return _timed(
        "SA warm-started from Alg. 2",
        lambda: anneal_tam(
            soc, w_max, groups,
            config=AnnealingConfig(steps=steps, seed=1),
            initial=architecture_from_dict(architecture),
        ).t_total,
    )


def _testbus_cell_fn(soc, w_max, groups) -> dict:
    return _timed(
        "Test Bus architecture",
        lambda: optimize_testbus(soc, w_max, groups).t_total,
    )


def _exact_cell_fn(soc, w_max, groups) -> dict:
    return _timed(
        "exact enumeration",
        lambda: exact_optimize(soc, w_max, groups).result.t_total,
    )


def _architecture_of(value: dict) -> dict:
    return value["architecture"]


register_projection("contender.architecture", _architecture_of)


def _compare_params(params: dict) -> tuple:
    soc = params["soc"]
    w_max = params["w_max"]
    groups = tuple(params.get("groups", ()))
    annealing_steps = params.get("annealing_steps", 4_000)
    include_exact = params.get("include_exact")
    if include_exact is None:
        include_exact = len(soc) <= MAX_EXACT_CORES and w_max <= 12
    return soc, w_max, groups, annealing_steps, include_exact


def _contender_cells(params: dict) -> tuple[tuple[str, ...], ...]:
    """The contender slate for ``params``: (cell_id, fn, extra args)."""
    _soc, _w_max, groups, steps, include_exact = _compare_params(params)
    slate: list[tuple] = [
        ("contender/tr", _tr_cell_fn, ()),
        ("contender/alg2", _alg2_cell_fn, ()),
    ]
    if len(groups) <= 7:
        slate.append(("contender/exact_si", _exact_si_cell_fn, ()))
    slate.append(("contender/sa", _sa_cell_fn, (steps,)))
    slate.append(
        (
            "contender/sa_warm",
            _sa_warm_cell_fn,
            (
                steps,
                CellRef("contender/alg2", project="contender.architecture"),
            ),
        )
    )
    slate.append(("contender/testbus", _testbus_cell_fn, ()))
    if include_exact:
        slate.append(("contender/exact", _exact_cell_fn, ()))
    return tuple(slate)


class ComparePlan(PlanKind):
    """The optimizer shoot-out as a declarative cell graph."""

    name = "compare"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        soc, w_max, groups, _steps, _exact = _compare_params(params)
        cells = [
            CellSpec(
                cell_id="bound",
                kind="bound",
                fn=_bound_cell_fn,
                args=(soc, w_max, groups),
            )
        ]
        for cell_id, fn, extra in _contender_cells(params):
            cells.append(
                CellSpec(
                    cell_id=cell_id,
                    kind="contender",
                    fn=fn,
                    args=(soc, w_max, groups, *extra),
                )
            )
        return tuple(cells)

    def assemble(self, params: dict, results: dict) -> Comparison:
        soc, w_max, _groups, _steps, _exact = _compare_params(params)
        contenders = tuple(
            Contender(
                name=results[cell_id]["name"],
                t_total=results[cell_id]["t_total"],
                seconds=results[cell_id]["seconds"],
            )
            for cell_id, _fn, _extra in _contender_cells(params)
        )
        return Comparison(
            soc_name=soc.name,
            w_max=w_max,
            bound=results["bound"],
            contenders=contenders,
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        """No contender may beat the lower bound — an achieved time below
        it means a broken schedule (or a broken bound)."""
        bound = results["bound"]
        return [
            f"{record['name']}: T_soc={record['t_total']} beats the "
            f"lower bound {bound}"
            for cell_id, _fn, _extra in _contender_cells(params)
            for record in (results[cell_id],)
            if record["t_total"] < bound
        ]


register_plan_kind(ComparePlan)


def compare_plan(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    annealing_steps: int = 4_000,
    include_exact: bool | None = None,
) -> ExperimentPlan:
    """The declarative plan for one optimizer shoot-out."""
    return ExperimentPlan(
        "compare",
        {
            "soc": soc,
            "w_max": w_max,
            "groups": tuple(groups),
            "annealing_steps": annealing_steps,
            "include_exact": include_exact,
        },
    )


def compare_optimizers(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    annealing_steps: int = 4_000,
    include_exact: bool | None = None,
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> Comparison:
    """Run every applicable optimizer on the instance.

    Args:
        soc: The SOC.
        w_max: Pin budget.
        groups: SI test groups.
        annealing_steps: Budget for the SA contenders.
        include_exact: Force the enumeration optimizer on/off; by default
            it runs only when the SOC is small enough.
        jobs: Worker processes racing the contenders (1 = serial;
            achieved times are identical either way).
        sweep_backend: Cell fan-out backend (see
            :data:`repro.runtime.executor.SWEEP_BACKENDS`).
        cache: Optional evaluation cache; a warm hit replays a
            contender's result including its recorded runtime.
        checkpoint: Optional
            :class:`~repro.resilience.checkpoint.SweepCheckpoint`.
        verify: Independently check every contender against the lower
            bound and raise on a violation.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        compare_plan(
            soc,
            w_max,
            groups=groups,
            annealing_steps=annealing_steps,
            include_exact=include_exact,
        )
    )
    return run.report


def format_comparison(comparison: Comparison) -> str:
    """Text table sorted by achieved time."""
    best = comparison.best()
    lines = [
        f"{comparison.soc_name} at W_max={comparison.w_max} "
        f"(lower bound {comparison.bound} cc)",
        f"{'optimizer':<32} {'T_soc (cc)':>11} {'gap':>7} {'runtime':>9}",
    ]
    ordered = sorted(comparison.contenders, key=lambda c: c.t_total)
    for contender in ordered:
        gap = (contender.t_total - comparison.bound) / max(
            comparison.bound, 1
        )
        marker = "  <- best" if contender == best else ""
        lines.append(
            f"{contender.name:<32} {contender.t_total:>11} {gap:>6.1%} "
            f"{contender.seconds:>8.2f}s{marker}"
        )
    return "\n".join(lines)
