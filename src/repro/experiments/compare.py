"""Head-to-head optimizer comparison on one instance.

Runs every optimizer the library implements on the same (SOC, ``W_max``,
SI groups) instance and tabulates total times, runtimes, and the gap to
the lower bound — the one-stop answer to "which optimizer should I use?".

Contenders: TR-Architect (InTest-only, then pay for SI), Algorithm 2,
Algorithm 2 with exact SI scheduling, simulated annealing (cold and warm
started), the Test Bus architecture, and — when the instance is small
enough — the exact enumeration optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.annealing import AnnealingConfig, anneal_tam
from repro.core.bounds import bound_report
from repro.core.exact import MAX_EXACT_CORES, exact_optimize
from repro.core.optimizer import optimize_tam
from repro.core.scheduling import TamEvaluator
from repro.soc.model import Soc
from repro.tam.testbus import optimize_testbus
from repro.tam.tr_architect import si_oblivious_total


@dataclass(frozen=True)
class Contender:
    """One optimizer's showing on the instance."""

    name: str
    t_total: int
    seconds: float


@dataclass(frozen=True)
class Comparison:
    """All contenders plus the lower bound."""

    soc_name: str
    w_max: int
    bound: int
    contenders: tuple[Contender, ...]

    def best(self) -> Contender:
        if not self.contenders:
            raise ValueError("no contenders")
        return min(self.contenders, key=lambda c: c.t_total)


def compare_optimizers(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    annealing_steps: int = 4_000,
    include_exact: bool | None = None,
) -> Comparison:
    """Run every applicable optimizer on the instance.

    Args:
        soc: The SOC.
        w_max: Pin budget.
        groups: SI test groups.
        annealing_steps: Budget for the SA contenders.
        include_exact: Force the enumeration optimizer on/off; by default
            it runs only when the SOC is small enough.
    """
    if include_exact is None:
        include_exact = len(soc) <= MAX_EXACT_CORES and w_max <= 12

    contenders = []

    def timed(name, runner):
        started = time.perf_counter()
        total = runner()
        contenders.append(
            Contender(name=name, t_total=total,
                      seconds=time.perf_counter() - started)
        )

    timed(
        "TR-Architect + post-hoc SI",
        lambda: si_oblivious_total(soc, w_max, groups).t_total,
    )
    started = time.perf_counter()
    algorithm2 = optimize_tam(soc, w_max, groups)
    contenders.append(
        Contender(
            name="Algorithm 2",
            t_total=algorithm2.t_total,
            seconds=time.perf_counter() - started,
        )
    )
    if len(groups) <= 7:
        timed(
            "Algorithm 2 + exact SI schedule",
            lambda: optimize_tam(
                soc, w_max, groups,
                evaluator=TamEvaluator(soc, groups, exact_schedule=True),
            ).t_total,
        )
    timed(
        "simulated annealing",
        lambda: anneal_tam(
            soc, w_max, groups,
            config=AnnealingConfig(steps=annealing_steps, seed=1),
        ).t_total,
    )
    timed(
        "SA warm-started from Alg. 2",
        lambda: anneal_tam(
            soc, w_max, groups,
            config=AnnealingConfig(steps=annealing_steps, seed=1),
            initial=algorithm2.architecture,
        ).t_total,
    )
    timed(
        "Test Bus architecture",
        lambda: optimize_testbus(soc, w_max, groups).t_total,
    )
    if include_exact:
        timed(
            "exact enumeration",
            lambda: exact_optimize(soc, w_max, groups).result.t_total,
        )

    return Comparison(
        soc_name=soc.name,
        w_max=w_max,
        bound=bound_report(soc, w_max, groups).t_total_bound,
        contenders=tuple(contenders),
    )


def format_comparison(comparison: Comparison) -> str:
    """Text table sorted by achieved time."""
    best = comparison.best()
    lines = [
        f"{comparison.soc_name} at W_max={comparison.w_max} "
        f"(lower bound {comparison.bound} cc)",
        f"{'optimizer':<32} {'T_soc (cc)':>11} {'gap':>7} {'runtime':>9}",
    ]
    ordered = sorted(comparison.contenders, key=lambda c: c.t_total)
    for contender in ordered:
        gap = (contender.t_total - comparison.bound) / max(
            comparison.bound, 1
        )
        marker = "  <- best" if contender == best else ""
        lines.append(
            f"{contender.name:<32} {contender.t_total:>11} {gap:>6.1%} "
            f"{contender.seconds:>8.2f}s{marker}"
        )
    return "\n".join(lines)
