"""Seed-sensitivity analysis of the table experiments.

The paper reports single-seed results; this harness reruns a table row at
several pattern-set seeds and reports the spread of the headline deltas,
so a reader can tell signal from pattern-generation noise.

The study is the declarative :class:`StabilityPlan` — the union of one
:class:`~repro.experiments.table_runner.TablePlan` cell graph per seed,
composed with :func:`~repro.experiments.plan.namespaced` under
``seed/{s}/`` prefixes.  Every per-seed cell keeps its content-hash
cache key, so a stability run shares grouping and optimizer results with
plain table runs through the same evaluation cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.plan import (
    CellSpec,
    ExperimentPlan,
    PlanKind,
    namespaced,
    plan_kind,
    register_plan_kind,
    subset,
)
from repro.experiments.runner import PlanRunner
from repro.runtime.cache import EvaluationCache
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc


@dataclass(frozen=True)
class StabilityRow:
    """Spread of one metric over the seed sweep."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((value - mean) ** 2 for value in self.values)
            / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


@dataclass(frozen=True)
class StabilityReport:
    """Seed-sweep outcome for one (SOC, N_r, W_max) cell."""

    soc_name: str
    pattern_count: int
    w_max: int
    seeds: tuple[int, ...]
    delta_baseline: StabilityRow
    delta_grouping: StabilityRow
    t_min: StabilityRow

    def format(self) -> str:
        lines = [
            f"{self.soc_name}, N_r={self.pattern_count}, "
            f"W_max={self.w_max}, seeds={list(self.seeds)}"
        ]
        for row in (self.t_min, self.delta_baseline, self.delta_grouping):
            lines.append(
                f"  {row.metric:<12} mean={row.mean:>12.2f} "
                f"std={row.std:>10.2f} spread={row.spread:>10.2f}"
            )
        return "\n".join(lines)


def _stability_params(params: dict) -> tuple:
    soc = params["soc"]
    pattern_count = params["pattern_count"]
    w_max = params["w_max"]
    seeds = tuple(params.get("seeds", (1, 2, 3)))
    group_counts = tuple(params.get("group_counts", (1, 4)))
    config = params.get("generator_config") or GeneratorConfig()
    if not seeds:
        raise ValueError("need at least one seed")
    return soc, pattern_count, w_max, seeds, group_counts, config


def _table_params_for_seed(params: dict, seed: int) -> dict:
    soc, pattern_count, w_max, _seeds, group_counts, config = (
        _stability_params(params)
    )
    return {
        "soc": soc,
        "pattern_count": pattern_count,
        "widths": (w_max,),
        "group_counts": group_counts,
        "seed": seed,
        "generator_config": config,
    }


class StabilityPlan(PlanKind):
    """The seed sweep as a union of namespaced table plans."""

    name = "stability"

    def expand(self, params: dict) -> tuple[CellSpec, ...]:
        table = plan_kind("table")
        _soc, _count, _w_max, seeds, *_rest = _stability_params(params)
        cells: list[CellSpec] = []
        for seed in seeds:
            cells.extend(
                namespaced(
                    f"seed/{seed}",
                    table.expand(_table_params_for_seed(params, seed)),
                )
            )
        return tuple(cells)

    def assemble(self, params: dict, results: dict) -> StabilityReport:
        table = plan_kind("table")
        soc, pattern_count, w_max, seeds, *_rest = _stability_params(params)
        delta_baseline = []
        delta_grouping = []
        t_min = []
        for seed in seeds:
            table_result = table.assemble(
                _table_params_for_seed(params, seed),
                subset(f"seed/{seed}", results),
            )
            row = table_result.rows[0]
            delta_baseline.append(row.delta_baseline_pct)
            delta_grouping.append(row.delta_grouping_pct)
            t_min.append(float(row.t_min))
        return StabilityReport(
            soc_name=soc.name,
            pattern_count=pattern_count,
            w_max=w_max,
            seeds=tuple(seeds),
            delta_baseline=StabilityRow(
                "dT_[8] (%)", tuple(delta_baseline)
            ),
            delta_grouping=StabilityRow("dT_g (%)", tuple(delta_grouping)),
            t_min=StabilityRow("T_min (cc)", tuple(t_min)),
        )

    def verify(self, params: dict, results: dict) -> list[str]:
        """Delegate to the table kind's schedule verification per seed."""
        table = plan_kind("table")
        _soc, _count, _w_max, seeds, *_rest = _stability_params(params)
        violations = []
        for seed in seeds:
            violations.extend(
                f"seed={seed}: {v}"
                for v in table.verify(
                    _table_params_for_seed(params, seed),
                    subset(f"seed/{seed}", results),
                )
            )
        return violations


register_plan_kind(StabilityPlan)


def stability_plan(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    seeds: tuple[int, ...] = (1, 2, 3),
    group_counts: tuple[int, ...] = (1, 4),
    generator_config: GeneratorConfig = GeneratorConfig(),
) -> ExperimentPlan:
    """The declarative plan for one seed-stability study."""
    return ExperimentPlan(
        "stability",
        {
            "soc": soc,
            "pattern_count": pattern_count,
            "w_max": w_max,
            "seeds": tuple(seeds),
            "group_counts": tuple(group_counts),
            "generator_config": generator_config,
        },
    )


def run_stability_study(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    seeds: tuple[int, ...] = (1, 2, 3),
    group_counts: tuple[int, ...] = (1, 4),
    generator_config: GeneratorConfig = GeneratorConfig(),
    jobs: int = 1,
    sweep_backend: str = "auto",
    cache: EvaluationCache | None = None,
    checkpoint=None,
    verify: bool = False,
) -> StabilityReport:
    """Rerun one table cell across ``seeds`` and collect the spreads.

    Seeds expand into independent table sub-graphs, so ``jobs > 1`` fans
    all seeds' cells out together; ``cache``/``checkpoint`` memoize and
    resume at cell granularity, and the cache is shared with plain table
    runs over the same inputs.

    Raises:
        ValueError: If no seeds are given.
    """
    runner = PlanRunner(
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        sweep_backend=sweep_backend,
        verify=verify,
    )
    run = runner.run(
        stability_plan(
            soc,
            pattern_count,
            w_max,
            seeds=seeds,
            group_counts=group_counts,
            generator_config=generator_config,
        )
    )
    return run.report
