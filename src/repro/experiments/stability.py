"""Seed-sensitivity analysis of the table experiments.

The paper reports single-seed results; this harness reruns a table row at
several pattern-set seeds and reports the spread of the headline deltas,
so a reader can tell signal from pattern-generation noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.table_runner import run_table_experiment
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc


@dataclass(frozen=True)
class StabilityRow:
    """Spread of one metric over the seed sweep."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((value - mean) ** 2 for value in self.values)
            / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


@dataclass(frozen=True)
class StabilityReport:
    """Seed-sweep outcome for one (SOC, N_r, W_max) cell."""

    soc_name: str
    pattern_count: int
    w_max: int
    seeds: tuple[int, ...]
    delta_baseline: StabilityRow
    delta_grouping: StabilityRow
    t_min: StabilityRow

    def format(self) -> str:
        lines = [
            f"{self.soc_name}, N_r={self.pattern_count}, "
            f"W_max={self.w_max}, seeds={list(self.seeds)}"
        ]
        for row in (self.t_min, self.delta_baseline, self.delta_grouping):
            lines.append(
                f"  {row.metric:<12} mean={row.mean:>12.2f} "
                f"std={row.std:>10.2f} spread={row.spread:>10.2f}"
            )
        return "\n".join(lines)


def run_stability_study(
    soc: Soc,
    pattern_count: int,
    w_max: int,
    seeds: tuple[int, ...] = (1, 2, 3),
    group_counts: tuple[int, ...] = (1, 4),
    generator_config: GeneratorConfig = GeneratorConfig(),
) -> StabilityReport:
    """Rerun one table cell across ``seeds`` and collect the spreads.

    Raises:
        ValueError: If no seeds are given.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    delta_baseline = []
    delta_grouping = []
    t_min = []
    for seed in seeds:
        result = run_table_experiment(
            soc,
            pattern_count,
            widths=(w_max,),
            group_counts=group_counts,
            seed=seed,
            generator_config=generator_config,
        )
        row = result.rows[0]
        delta_baseline.append(row.delta_baseline_pct)
        delta_grouping.append(row.delta_grouping_pct)
        t_min.append(float(row.t_min))
    return StabilityReport(
        soc_name=soc.name,
        pattern_count=pattern_count,
        w_max=w_max,
        seeds=tuple(seeds),
        delta_baseline=StabilityRow("dT_[8] (%)", tuple(delta_baseline)),
        delta_grouping=StabilityRow("dT_g (%)", tuple(delta_grouping)),
        t_min=StabilityRow("T_min (cc)", tuple(t_min)),
    )
