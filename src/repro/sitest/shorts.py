"""Classical interconnect shorts/opens testing (boundary-scan style).

The paper's premise (Section 1) is that testing core-external
interconnects for *shorts and opens* "requires little time" — a handful of
boundary-scan patterns — which is why prior TAM work could ignore ExTest,
and why SI tests (thousands of vector pairs) change the picture.  This
module implements that classical baseline so the claim can be measured:

* the **counting sequence** [Kautz 1974]: net `i` drives the binary code
  of `i` over ``ceil(log2(N))`` patterns, distinguishing every net pair
  — but all-0/all-1 codes alias with stuck nets;
* the **modified counting sequence** [Wagner 1987]: codes `1..N` (skipping
  all-0s/all-1s) followed by their complements — ``2·(ceil(log2(N+2)))``
  patterns, detecting and diagnosing shorts (wired-AND/OR), stuck-at-0 and
  stuck-at-1 and opens;
* **true/complement aliasing analysis**: which net pairs a given code
  assignment confounds.

Times are priced with the same wrapper model as SI tests, so the shorts
baseline slots straight into the cost comparison benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sitest.topology import InterconnectTopology
from repro.soc.model import Soc


def counting_sequence_length(net_count: int) -> int:
    """Patterns of the plain counting sequence: ``ceil(log2(N))``."""
    if net_count < 0:
        raise ValueError("net count must be non-negative")
    if net_count <= 1:
        return 0 if net_count == 0 else 1
    return math.ceil(math.log2(net_count))


def modified_counting_sequence_length(net_count: int) -> int:
    """Patterns of the modified (true/complement) counting sequence."""
    if net_count < 0:
        raise ValueError("net count must be non-negative")
    if net_count == 0:
        return 0
    # Codes 1 .. N over w bits, excluding all-0s and all-1s: need
    # 2^w - 2 >= N; then each pattern is applied true and complemented.
    bits = 1
    while 2**bits - 2 < net_count:
        bits += 1
    return 2 * bits


def counting_codes(net_count: int, modified: bool = True) -> list[list[int]]:
    """Per-net parallel test vectors, one inner list per pattern.

    ``result[p][n]`` is the bit net ``n`` drives in pattern ``p``.  With
    ``modified=True`` the all-0s/all-1s codes are skipped and complement
    patterns appended.
    """
    if net_count < 0:
        raise ValueError("net count must be non-negative")
    if net_count == 0:
        return []
    if modified:
        bits = modified_counting_sequence_length(net_count) // 2
        codes = [net + 1 for net in range(net_count)]  # skip all-0s
    else:
        bits = counting_sequence_length(net_count)
        codes = list(range(net_count))
    true_patterns = [
        [(code >> bit) & 1 for code in codes] for bit in range(bits)
    ]
    if not modified:
        return true_patterns
    complement_patterns = [
        [1 - value for value in pattern] for pattern in true_patterns
    ]
    return true_patterns + complement_patterns


def aliased_pairs(codes: list[int]) -> list[tuple[int, int]]:
    """Net pairs whose codes coincide (a short between them is silent)."""
    seen: dict[int, int] = {}
    pairs = []
    for net, code in enumerate(codes):
        if code in seen:
            pairs.append((seen[code], net))
        else:
            seen[code] = net
    return pairs


@dataclass(frozen=True)
class ShortsTestPlan:
    """Sized shorts/opens test for an SOC's interconnects.

    Attributes:
        net_count: Interconnects under test.
        patterns: Boundary-scan patterns applied (modified counting seq.).
        shift_depth: Cycles to load one pattern through the deepest
            boundary chain at the given TAM width.
    """

    net_count: int
    patterns: int
    shift_depth: int

    @property
    def total_cycles(self) -> int:
        """Serial application cost: shift + one capture per pattern."""
        return self.patterns * (self.shift_depth + 1)


def plan_shorts_test(
    soc: Soc,
    topology: InterconnectTopology,
    width: int,
) -> ShortsTestPlan:
    """Price the modified counting sequence on this SOC's interconnects.

    All cores' wrapper output cells shift concurrently over ``width``
    wires (single ExTest session, every boundary involved), mirroring how
    the SI timing model treats a group involving all cores.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    total_woc = sum(core.woc_count for core in soc)
    depth = -(-total_woc // width) if total_woc else 0
    return ShortsTestPlan(
        net_count=topology.net_count,
        patterns=modified_counting_sequence_length(topology.net_count),
        shift_depth=depth,
    )
