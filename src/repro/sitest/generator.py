"""Random SI test pattern generation following the paper's Section 5 protocol.

The ITC'02 benchmarks carry no functional interconnect information, so the
paper generates random SI test patterns:

* each pattern has **one victim** terminal and ``N_a`` (``2 <= N_a <= 6``)
  random aggressor terminals,
* **at most two** aggressors lie outside the victim core's boundary,
* a 32-bit functional bus is shared by all cores; a pattern uses the bus
  with probability 0.5, in which case ``1 .. N_a`` random postfix bits are
  occupied (claimed from the victim core's boundary).

The construction is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.soc.model import Soc
from repro.sitest.patterns import SIPattern, SYMBOLS, TRANSITIONS


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random SI pattern generator (paper defaults).

    Attributes:
        min_aggressors: Lower bound on ``N_a``.
        max_aggressors: Upper bound on ``N_a``.
        max_external_aggressors: Cap on aggressors outside the victim core.
        bus_width: Width of the shared functional bus.
        bus_probability: Probability that a pattern utilizes the bus.
    """

    min_aggressors: int = 2
    max_aggressors: int = 6
    max_external_aggressors: int = 2
    bus_width: int = 32
    bus_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_aggressors <= self.max_aggressors:
            raise ValueError("need 0 < min_aggressors <= max_aggressors")
        if self.max_external_aggressors < 0:
            raise ValueError("max_external_aggressors must be non-negative")
        if self.bus_width < 0:
            raise ValueError("bus_width must be non-negative")
        if not 0.0 <= self.bus_probability <= 1.0:
            raise ValueError("bus_probability must lie in [0, 1]")


def generate_random_patterns(
    soc: Soc,
    count: int,
    seed: int = 0,
    config: GeneratorConfig = GeneratorConfig(),
) -> list[SIPattern]:
    """Generate ``count`` random SI test patterns for ``soc``.

    Cores without output cells can be neither victims nor aggressor hosts.

    Raises:
        ValueError: If the SOC has no core with output cells or ``count``
            is negative.
    """
    if count < 0:
        raise ValueError("pattern count must be non-negative")
    rng = random.Random(seed)

    hosts = [core for core in soc if core.woc_count > 0]
    if not hosts:
        raise ValueError(f"SOC {soc.name} has no cores with output cells")

    patterns = []
    for _ in range(count):
        patterns.append(_random_pattern(rng, hosts, config))
    return patterns


def generate_topology_patterns(
    topology,
    soc: Soc,
    count: int,
    seed: int = 0,
    config: GeneratorConfig = GeneratorConfig(),
) -> list[SIPattern]:
    """Sample SI patterns from an actual interconnect topology.

    A middle ground between the exhaustive deterministic fault-model sets
    and the paper's fully random protocol: victims are real nets and
    aggressors are drawn from the victim's *coupled neighborhood*, so the
    sampled set reflects the layout.  The bus postfix follows the same
    probability model as the random generator.

    Args:
        topology: An :class:`~repro.sitest.topology.InterconnectTopology`.
        soc: The SOC (for bus driver attribution sanity only).
        count: Number of patterns to sample.
        seed: RNG seed.
        config: Bus and aggressor-count knobs (``max_external_aggressors``
            is ignored — locality comes from the topology itself).

    Raises:
        ValueError: If the topology has no nets or ``count`` is negative.
    """
    if count < 0:
        raise ValueError("pattern count must be non-negative")
    if not topology.nets:
        raise ValueError("topology has no nets to sample victims from")
    del soc  # reserved for future validation hooks
    rng = random.Random(seed)

    patterns = []
    for _ in range(count):
        victim_net = rng.choice(topology.nets)
        cares = {victim_net.driver: rng.choice(SYMBOLS)}
        neighbors = list(topology.neighborhoods.get(victim_net.net_id, ()))
        if neighbors:
            wanted = rng.randint(config.min_aggressors,
                                 config.max_aggressors)
            chosen = rng.sample(neighbors, min(wanted, len(neighbors)))
            for aggressor_id in chosen:
                driver = topology.nets[aggressor_id].driver
                if driver not in cares:
                    cares[driver] = rng.choice(TRANSITIONS)
        bus_claims = {}
        if (
            topology.bus is not None
            and config.bus_width
            and rng.random() < config.bus_probability
        ):
            width = min(config.bus_width, topology.bus.width)
            occupied = rng.randint(1, min(config.max_aggressors, width))
            for line in rng.sample(range(width), occupied):
                bus_claims[line] = victim_net.driver[0]
        patterns.append(
            SIPattern(cares=cares, bus_claims=bus_claims,
                      victim=victim_net.driver)
        )
    return patterns


def _random_pattern(
    rng: random.Random,
    hosts: list,
    config: GeneratorConfig,
) -> SIPattern:
    victim_core = rng.choice(hosts)
    victim_index = rng.randrange(victim_core.woc_count)
    victim = (victim_core.core_id, victim_index)
    cares = {victim: rng.choice(SYMBOLS)}

    total_aggressors = rng.randint(config.min_aggressors, config.max_aggressors)
    external_limit = min(config.max_external_aggressors, total_aggressors)
    external_count = rng.randint(0, external_limit) if len(hosts) > 1 else 0
    internal_count = total_aggressors - external_count

    # Aggressors inside the victim core boundary (other output terminals).
    internal_candidates = [
        index for index in range(victim_core.woc_count) if index != victim_index
    ]
    for index in rng.sample(
        internal_candidates, min(internal_count, len(internal_candidates))
    ):
        cares[(victim_core.core_id, index)] = rng.choice(TRANSITIONS)

    # Aggressors outside the victim core boundary.
    other_hosts = [core for core in hosts if core.core_id != victim_core.core_id]
    for _ in range(external_count):
        host = rng.choice(other_hosts)
        terminal = (host.core_id, rng.randrange(host.woc_count))
        if terminal not in cares:
            cares[terminal] = rng.choice(TRANSITIONS)

    bus_claims = {}
    if config.bus_width and rng.random() < config.bus_probability:
        occupied = rng.randint(1, min(total_aggressors, config.bus_width))
        for line in rng.sample(range(config.bus_width), occupied):
            bus_claims[line] = victim_core.core_id

    return SIPattern(cares=cares, bus_claims=bus_claims, victim=victim)
