"""JSON persistence of interconnect topologies.

Lets users bring real netlist-derived topologies (nets, bus, coupling
neighborhoods) into the flow, mirroring the pattern-set I/O in
:mod:`repro.sitest.io`.

Format::

    {
      "format": "repro-topology",
      "version": 1,
      "nets": [{"id": 0, "driver": [core, terminal],
                "receivers": [core, ...]}],
      "bus": {"width": 32, "cores": [1, 2, ...]},   // optional
      "neighborhoods": {"0": [1, 2], ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sitest.topology import InterconnectTopology, Net, SharedBus

_FORMAT = "repro-topology"
_VERSION = 1


def topology_to_dict(topology: InterconnectTopology) -> dict:
    """JSON-ready representation of a topology."""
    data: dict = {
        "format": _FORMAT,
        "version": _VERSION,
        "nets": [
            {
                "id": net.net_id,
                "driver": list(net.driver),
                "receivers": list(net.receivers),
            }
            for net in topology.nets
        ],
        "neighborhoods": {
            str(net_id): list(neighbors)
            for net_id, neighbors in sorted(topology.neighborhoods.items())
        },
    }
    if topology.bus is not None:
        data["bus"] = {
            "width": topology.bus.width,
            "cores": list(topology.bus.connected_cores),
        }
    return data


def topology_from_dict(data: dict) -> InterconnectTopology:
    """Rebuild a topology from :func:`topology_to_dict` output.

    Raises:
        ValueError: On an unrecognized payload.
    """
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a topology payload (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    nets = [
        Net(
            net_id=int(entry["id"]),
            driver=(int(entry["driver"][0]), int(entry["driver"][1])),
            receivers=tuple(int(r) for r in entry.get("receivers", [])),
        )
        for entry in data.get("nets", [])
    ]
    bus = None
    if "bus" in data:
        bus = SharedBus(
            width=int(data["bus"]["width"]),
            connected_cores=tuple(int(c) for c in data["bus"]["cores"]),
        )
    neighborhoods = {
        int(net_id): tuple(int(n) for n in neighbors)
        for net_id, neighbors in data.get("neighborhoods", {}).items()
    }
    return InterconnectTopology(nets=nets, bus=bus,
                                neighborhoods=neighborhoods)


def save_topology(topology: InterconnectTopology, path: str | Path) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topology)) + "\n")


def load_topology(path: str | Path) -> InterconnectTopology:
    """Read a topology from a JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))
