"""JSON persistence of interconnect topologies.

Lets users bring real netlist-derived topologies (nets, bus, coupling
neighborhoods) into the flow, mirroring the pattern-set I/O in
:mod:`repro.sitest.io`.

Format::

    {
      "format": "repro-topology",
      "version": 1,
      "nets": [{"id": 0, "driver": [core, terminal],
                "receivers": [core, ...]}],
      "bus": {"width": 32, "cores": [1, 2, ...]},   // optional
      "neighborhoods": {"0": [1, 2], ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.resilience.validation import (
    ValidationError,
    validate_topology_shape,
)
from repro.sitest.topology import InterconnectTopology, Net, SharedBus

_FORMAT = "repro-topology"
_VERSION = 1


def topology_to_dict(topology: InterconnectTopology) -> dict:
    """JSON-ready representation of a topology."""
    data: dict = {
        "format": _FORMAT,
        "version": _VERSION,
        "nets": [
            {
                "id": net.net_id,
                "driver": list(net.driver),
                "receivers": list(net.receivers),
            }
            for net in topology.nets
        ],
        "neighborhoods": {
            str(net_id): list(neighbors)
            for net_id, neighbors in sorted(topology.neighborhoods.items())
        },
    }
    if topology.bus is not None:
        data["bus"] = {
            "width": topology.bus.width,
            "cores": list(topology.bus.connected_cores),
        }
    return data


def topology_from_dict(data: dict) -> InterconnectTopology:
    """Rebuild a topology from :func:`topology_to_dict` output.

    Raises:
        ValidationError: On an unrecognized payload.
    """
    if data.get("format") != _FORMAT:
        raise ValidationError(
            f"not a topology payload (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValidationError(f"unsupported version {data.get('version')!r}")
    nets = [
        Net(
            net_id=int(entry["id"]),
            driver=(int(entry["driver"][0]), int(entry["driver"][1])),
            receivers=tuple(int(r) for r in entry.get("receivers", [])),
        )
        for entry in data.get("nets", [])
    ]
    bus = None
    if "bus" in data:
        bus = SharedBus(
            width=int(data["bus"]["width"]),
            connected_cores=tuple(int(c) for c in data["bus"]["cores"]),
        )
    neighborhoods = {
        int(net_id): tuple(int(n) for n in neighbors)
        for net_id, neighbors in data.get("neighborhoods", {}).items()
    }
    return InterconnectTopology(nets=nets, bus=bus,
                                neighborhoods=neighborhoods)


def save_topology(topology: InterconnectTopology, path: str | Path) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topology)) + "\n")


def load_topology(path: str | Path) -> InterconnectTopology:
    """Read a topology from a JSON file; diagnostics carry the path.

    Beyond decoding, the loaded topology is shape-checked
    (:func:`validate_topology_shape`): duplicate net ids, dangling
    endpoints and a non-positive bus width are rejected at load time.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"invalid JSON: {error}", path=str(path)
        ) from error
    try:
        topology = topology_from_dict(data)
    except ValidationError as error:
        raise error.with_source(str(path))
    validate_topology_shape(topology, path=str(path))
    return topology
