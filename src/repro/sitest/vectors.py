"""Cycle-accurate shift-vector emission for SI test groups.

Turns a compacted SI test group into the actual per-cycle TAM wire values
a tester would stream — the last translation step before an ATE program.
Besides its practical use, this is the strongest validation of the timing
model: the emitted stream for a rail is, by construction, exactly
``depth_r(s)`` rows per pattern, so the evaluator's cycle counts are
checked against real data rather than against themselves
(``tests/sitest/test_vectors.py``).

Conventions (documented simplifications):

* WOCs are transition-generator cells: the shifted bit is the *target*
  value of the vector pair; the initial value is the cell's current state
  (launch-off-shift).  Symbol → target bit: ``0``→0, ``1``→1, ``R``→1,
  ``F``→0; don't-cares shift 0.
* A rail's chain concatenates its cores in id order; within a core, WOC
  ``i`` sits on sub-chain ``i % width`` at depth ``i // width`` (balanced
  round-robin), matching ``ceil(woc / width)`` per-core depth.
* Rows are emitted shift-first: row 0 enters the chain first, so it ends
  up deepest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.sitest.patterns import FALL, RISE, SIPattern, STEADY_ONE
from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture

_TARGET_BIT = {STEADY_ONE: 1, RISE: 1, FALL: 0}


@dataclass(frozen=True)
class RailVectors:
    """Shift data of one rail for one SI test group.

    Attributes:
        rail_index: Index of the rail in the architecture.
        width: Wires of the rail.
        depth: Shift rows per pattern (the rail's per-pattern depth).
        rows: ``rows[p][c]`` is the width-bit tuple shifted in cycle ``c``
            of pattern ``p``.
    """

    rail_index: int
    width: int
    depth: int
    rows: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def shift_cycles(self) -> int:
        """Total shift cycles over all patterns (excludes launch/capture)."""
        return sum(len(pattern_rows) for pattern_rows in self.rows)


@dataclass(frozen=True)
class GroupVectors:
    """Complete shift program of one SI test group."""

    group_id: int
    rails: tuple[RailVectors, ...]

    def rail(self, rail_index: int) -> RailVectors:
        for rail_vectors in self.rails:
            if rail_vectors.rail_index == rail_index:
                return rail_vectors
        raise KeyError(f"rail {rail_index} not involved in this group")


def _cell_map(
    soc: Soc, cores: tuple[int, ...], width: int, group_cores: frozenset[int]
) -> tuple[dict[tuple[int, int], tuple[int, int]], int]:
    """Map each involved (core, woc index) to (wire, row) on the rail.

    Rows count from the chain input: a core later in the chain occupies
    deeper rows.  Returns the map and the total depth.
    """
    cell_of: dict[tuple[int, int], tuple[int, int]] = {}
    offset = 0
    for core_id in cores:
        if core_id not in group_cores:
            continue  # bypassed core: contributes no cells
        woc = soc.core_by_id(core_id).woc_count
        if woc == 0:
            continue
        depth = -(-woc // width)
        for index in range(woc):
            wire = index % width
            row = offset + index // width
            cell_of[(core_id, index)] = (wire, row)
        offset += depth
    return cell_of, offset


def expand_group(
    soc: Soc,
    architecture: TestRailArchitecture,
    group: SITestGroup,
    patterns: list[SIPattern],
) -> GroupVectors:
    """Emit the shift rows of ``patterns`` (the group's compacted set) for
    every rail the group involves.

    Raises:
        ValueError: If a pattern cares about a terminal outside the
            group's cores.
    """
    rails = []
    for rail_index, rail in enumerate(architecture.rails):
        involved = frozenset(rail.cores) & group.cores
        if not involved:
            continue
        cell_of, depth = _cell_map(soc, rail.cores, rail.width, group.cores)
        pattern_rows = []
        for pattern in patterns:
            rows = [[0] * rail.width for _ in range(depth)]
            for (core_id, terminal), symbol in pattern.cares.items():
                if core_id not in group.cores:
                    raise ValueError(
                        f"pattern cares about core {core_id} outside the "
                        "group"
                    )
                position = cell_of.get((core_id, terminal))
                if position is None:
                    continue  # cell on another rail
                wire, row = position
                rows[row][wire] = _TARGET_BIT.get(symbol, 0)
            # Shift-first emission: the deepest row must enter first.
            pattern_rows.append(
                tuple(tuple(row) for row in reversed(rows))
            )
        rails.append(
            RailVectors(
                rail_index=rail_index,
                width=rail.width,
                depth=depth,
                rows=tuple(pattern_rows),
            )
        )
    return GroupVectors(group_id=group.group_id, rails=tuple(rails))


def format_vectors(vectors: GroupVectors, max_patterns: int = 4) -> str:
    """Human-readable dump of the first few patterns per rail."""
    lines = [f"SI group {vectors.group_id} shift program"]
    for rail_vectors in vectors.rails:
        lines.append(
            f"  rail {rail_vectors.rail_index}: width "
            f"{rail_vectors.width}, {rail_vectors.depth} rows/pattern, "
            f"{rail_vectors.shift_cycles} shift cycles total"
        )
        for index, rows in enumerate(rail_vectors.rows[:max_patterns]):
            bits = " ".join("".join(str(b) for b in row) for row in rows)
            lines.append(f"    p{index}: {bits}")
        if len(rail_vectors.rows) > max_patterns:
            lines.append(
                f"    ... {len(rail_vectors.rows) - max_patterns} more"
            )
    return "\n".join(lines)
