"""Behavioral SI fault simulator: MA fault coverage of a pattern set.

Under the maximal aggressor model each net carries six faults — positive /
negative glitch, delayed rise / fall, sped-up rise / fall (see
:data:`repro.sitest.faults.MA_FAULT_TYPES`).  A test pattern *detects* such
a fault when it drives the victim terminal with the fault's victim state
while **all** coupled aggressors of the net simultaneously carry the
fault's aggressor transition — the worst-case excitation the model calls
for — and the receiving wrapper's ILS cell observes the victim (always
true in this wrapper-based methodology).

The simulator grades arbitrary pattern sets (deterministic MA sets, random
sets, merged/compacted sets) against a topology, enabling two experiments
the library uses:

* compaction safety — merging compatible patterns can only *add* care
  bits, so a compacted set must cover at least the faults of the original
  set (property-tested in ``tests/sitest/test_simulator.py``);
* coverage curves — how fast random pattern sets accumulate MA coverage
  compared to the deterministic ``6N`` set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sitest.faults import MA_FAULT_TYPES
from repro.sitest.patterns import SIPattern
from repro.sitest.topology import InterconnectTopology


@dataclass(frozen=True)
class MAFault:
    """One maximal-aggressor fault instance.

    Attributes:
        net_id: The victim net.
        fault_type: Index into :data:`MA_FAULT_TYPES`.
    """

    net_id: int
    fault_type: int

    def describe(self) -> str:
        victim_symbol, aggressor_symbol = MA_FAULT_TYPES[self.fault_type]
        return (
            f"net {self.net_id}: victim {victim_symbol!r} with aggressors "
            f"{aggressor_symbol!r}"
        )


@dataclass(frozen=True)
class CoverageReport:
    """Outcome of grading a pattern set.

    Attributes:
        total_faults: Fault universe size (6 per net with aggressors).
        detected: The faults at least one pattern detects.
    """

    total_faults: int
    detected: frozenset[MAFault]

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return len(self.detected) / self.total_faults


def fault_universe(topology: InterconnectTopology) -> tuple[MAFault, ...]:
    """All MA faults of a topology.

    Nets without coupled aggressors cannot exhibit MA faults and are
    excluded from the universe.
    """
    faults = []
    for net in topology.nets:
        if not topology.neighborhoods.get(net.net_id):
            continue
        for fault_type in range(len(MA_FAULT_TYPES)):
            faults.append(MAFault(net_id=net.net_id, fault_type=fault_type))
    return tuple(faults)


def detects(
    topology: InterconnectTopology, pattern: SIPattern, fault: MAFault
) -> bool:
    """True when ``pattern`` excites ``fault`` per the MA model."""
    victim_symbol, aggressor_symbol = MA_FAULT_TYPES[fault.fault_type]
    net = topology.nets[fault.net_id]
    if pattern.cares.get(net.driver) != victim_symbol:
        return False
    for aggressor_id in topology.neighborhoods.get(fault.net_id, ()):
        driver = topology.nets[aggressor_id].driver
        if pattern.cares.get(driver) != aggressor_symbol:
            return False
    return True


def simulate(
    topology: InterconnectTopology, patterns: list[SIPattern]
) -> CoverageReport:
    """Grade ``patterns`` against the full MA fault universe.

    The hot path is indexed by victim terminal: only patterns that drive a
    net's victim with the right state are checked against its aggressors.
    """
    universe = fault_universe(topology)

    # Index patterns by (victim driver terminal, symbol carried there).
    by_assignment: dict[tuple, list[SIPattern]] = {}
    for pattern in patterns:
        for terminal, symbol in pattern.cares.items():
            by_assignment.setdefault((terminal, symbol), []).append(pattern)

    detected = set()
    for fault in universe:
        victim_symbol, _ = MA_FAULT_TYPES[fault.fault_type]
        driver = topology.nets[fault.net_id].driver
        for pattern in by_assignment.get((driver, victim_symbol), ()):
            if detects(topology, pattern, fault):
                detected.add(fault)
                break
    return CoverageReport(
        total_faults=len(universe), detected=frozenset(detected)
    )


def coverage_curve(
    topology: InterconnectTopology,
    patterns: list[SIPattern],
    checkpoints: tuple[int, ...],
) -> tuple[tuple[int, float], ...]:
    """MA coverage after each prefix length in ``checkpoints``.

    Useful for comparing how fast different pattern sources (deterministic
    MA, random, compacted) accumulate coverage.
    """
    points = []
    for checkpoint in checkpoints:
        if checkpoint < 0:
            raise ValueError("checkpoints must be non-negative")
        report = simulate(topology, patterns[:checkpoint])
        points.append((checkpoint, report.coverage))
    return tuple(points)
