"""Physical crosstalk estimation: from wire geometry to aggressor sets.

The reduced MT model prunes aggressors with an *empirical* locality factor
``k``.  This module provides the physical grounding: given a simple
parallel-wire placement of the interconnects (length, pitch, layer), it
estimates coupling capacitances and victim noise with the standard
back-of-envelope models used for early SI screening —

* coupling capacitance of two parallel wires ≈ ``eps * t / s * L_overlap``
  (plate approximation: thickness ``t``, spacing ``s``, shared run
  ``L_overlap``),
* ground capacitance ≈ ``eps * w / h * L`` plus fringing,
* charge-sharing glitch estimate ``V_peak ≈ Vdd * Cc / (Cc + Cg)``
  (fast-aggressor limit), and
* Devgan's upper bound for the resistive case
  ``V_peak ≈ Vdd * Rv * Cc / tr`` clipped to the charge-sharing value,

then derives each net's aggressor neighborhood as the nets whose estimated
glitch contribution exceeds a noise-margin threshold.  The result plugs
into the same :class:`~repro.sitest.topology.InterconnectTopology` the
fault models consume, replacing the index-locality heuristic with a
physically derived one.

Units: microns for geometry, femtofarads for capacitance, volts for
voltages, ohms for resistance, picoseconds for times.  The absolute
numbers are screening-grade; what matters downstream is the *relative*
coupling, which the plate model captures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sitest.topology import InterconnectTopology, Net, SharedBus

#: Permittivity of SiO2 in fF/um (eps_0 * eps_r with eps_r ~ 3.9).
EPS_OXIDE_FF_PER_UM = 0.0345


@dataclass(frozen=True)
class WireGeometry:
    """Technology geometry of a routing layer.

    Attributes:
        width: Wire width (um).
        thickness: Metal thickness (um).
        spacing: Minimum spacing between adjacent wires (um).
        height: Dielectric height to the ground plane (um).
    """

    width: float = 0.2
    thickness: float = 0.35
    spacing: float = 0.2
    height: float = 0.3

    def __post_init__(self) -> None:
        for label in ("width", "thickness", "spacing", "height"):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be positive")


@dataclass(frozen=True)
class PlacedWire:
    """One interconnect as a horizontal run on a routing track.

    Attributes:
        net_id: The net this wire implements.
        track: Integer track index (adjacent tracks couple).
        start: Run start coordinate (um).
        length: Run length (um).
    """

    net_id: int
    track: int
    start: float
    length: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("wire length must be positive")

    @property
    def end(self) -> float:
        return self.start + self.length

    def overlap_with(self, other: "PlacedWire") -> float:
        """Shared parallel run length with another wire (um)."""
        return max(
            0.0, min(self.end, other.end) - max(self.start, other.start)
        )


def coupling_capacitance_ff(
    first: PlacedWire,
    second: PlacedWire,
    geometry: WireGeometry,
) -> float:
    """Plate-model coupling capacitance between two wires (fF).

    Wires on the same track cannot couple (they would short); wires more
    than one track apart are screened by the intervening track and
    contribute only a second-order term we model as inverse-distance
    decay.
    """
    separation = abs(first.track - second.track)
    if separation == 0:
        return 0.0
    overlap = first.overlap_with(second)
    if overlap == 0.0:
        return 0.0
    pitch_gap = separation * geometry.spacing + (separation - 1) * (
        geometry.width
    )
    plate = EPS_OXIDE_FF_PER_UM * geometry.thickness / pitch_gap * overlap
    return plate


def ground_capacitance_ff(wire: PlacedWire, geometry: WireGeometry) -> float:
    """Area + fringe capacitance of a wire to the ground plane (fF)."""
    area = EPS_OXIDE_FF_PER_UM * geometry.width / geometry.height
    # Standard fringing correction: ~ eps * 2π / ln(1 + 2h/t).
    fringe = (
        EPS_OXIDE_FF_PER_UM
        * 2.0
        * math.pi
        / math.log(1.0 + 2.0 * geometry.height / geometry.thickness)
    )
    return (area + fringe) * wire.length


def glitch_peak_v(
    coupling_ff: float,
    ground_ff: float,
    vdd: float = 1.0,
    driver_resistance_ohm: float = 1_000.0,
    rise_time_ps: float = 50.0,
) -> float:
    """Victim glitch peak estimate (V) for one aggressor transition.

    The charge-sharing limit ``Vdd * Cc / (Cc + Cg)`` caps Devgan's
    RC-ramp bound ``Vdd * R * Cc / tr``; we take the minimum of the two,
    which is the customary screening estimate.
    """
    if coupling_ff < 0 or ground_ff < 0:
        raise ValueError("capacitances must be non-negative")
    if coupling_ff == 0:
        return 0.0
    charge_sharing = vdd * coupling_ff / (coupling_ff + ground_ff)
    # fF * ohm = 1e-15 * s = 1e-3 ps -> convert to ps.
    devgan = vdd * driver_resistance_ohm * coupling_ff * 1e-3 / rise_time_ps
    return min(charge_sharing, devgan)


@dataclass(frozen=True)
class CrosstalkAnalysis:
    """Per-victim aggressor contributions.

    Attributes:
        contributions: ``contributions[victim][aggressor]`` is the
            estimated glitch peak (V) a single transition on ``aggressor``
            induces on ``victim``.
    """

    contributions: dict[int, dict[int, float]]

    def worst_case_noise(self, victim: int) -> float:
        """All aggressors switching together (the MA assumption)."""
        return sum(self.contributions.get(victim, {}).values())

    def aggressors_above(
        self, victim: int, threshold: float
    ) -> tuple[int, ...]:
        """Aggressors whose individual contribution exceeds ``threshold``."""
        return tuple(
            sorted(
                aggressor
                for aggressor, noise in self.contributions.get(
                    victim, {}
                ).items()
                if noise > threshold
            )
        )


def analyze_crosstalk(
    wires: list[PlacedWire],
    geometry: WireGeometry = WireGeometry(),
    vdd: float = 1.0,
    max_track_separation: int = 2,
) -> CrosstalkAnalysis:
    """Estimate all pairwise glitch contributions for a placement.

    Only wire pairs within ``max_track_separation`` tracks are evaluated
    (farther pairs are screened); complexity is near-linear for realistic
    channel placements after bucketing wires by track.
    """
    by_track: dict[int, list[PlacedWire]] = {}
    for wire in wires:
        by_track.setdefault(wire.track, []).append(wire)

    contributions: dict[int, dict[int, float]] = {
        wire.net_id: {} for wire in wires
    }
    for wire in wires:
        ground = ground_capacitance_ff(wire, geometry)
        for separation in range(1, max_track_separation + 1):
            for track in (wire.track - separation, wire.track + separation):
                for other in by_track.get(track, ()):
                    coupling = coupling_capacitance_ff(wire, other, geometry)
                    if coupling == 0.0:
                        continue
                    noise = glitch_peak_v(coupling, ground, vdd=vdd)
                    if noise > 0.0:
                        contributions[wire.net_id][other.net_id] = noise
    return CrosstalkAnalysis(contributions=contributions)


def topology_from_placement(
    nets: list[Net],
    wires: list[PlacedWire],
    noise_threshold: float = 0.05,
    geometry: WireGeometry = WireGeometry(),
    vdd: float = 1.0,
    bus: SharedBus | None = None,
) -> InterconnectTopology:
    """Build a topology whose aggressor neighborhoods come from physics.

    A net's aggressors are the nets whose estimated individual glitch
    contribution exceeds ``noise_threshold`` volts — the physically
    grounded replacement for the reduced-MT locality factor.

    Raises:
        ValueError: If the wires do not cover exactly the given nets.
    """
    wire_ids = sorted(wire.net_id for wire in wires)
    net_ids = sorted(net.net_id for net in nets)
    if wire_ids != net_ids:
        raise ValueError("placement must cover exactly the given nets")

    analysis = analyze_crosstalk(wires, geometry, vdd=vdd)
    neighborhoods = {
        net.net_id: analysis.aggressors_above(net.net_id, noise_threshold)
        for net in nets
    }
    return InterconnectTopology(
        nets=list(nets), bus=bus, neighborhoods=neighborhoods
    )


def channel_placement(
    net_count: int,
    tracks: int,
    wire_length: float = 100.0,
    seed: int = 0,
) -> list[PlacedWire]:
    """A simple deterministic channel placement for experiments: nets are
    dealt round-robin onto tracks with staggered starts."""
    import random

    if net_count < 0 or tracks <= 0:
        raise ValueError("need non-negative nets and positive tracks")
    rng = random.Random(seed)
    wires = []
    for net_id in range(net_count):
        wires.append(
            PlacedWire(
                net_id=net_id,
                track=net_id % tracks,
                start=rng.uniform(0.0, wire_length / 2),
                length=rng.uniform(wire_length / 2, wire_length),
            )
        )
    return wires
