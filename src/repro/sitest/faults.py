"""Signal-integrity fault models: maximal aggressor (MA) and multiple
transition (MT / reduced MT).

* **MA model** [Cuviello et al., ICCAD 1999]: all aggressors of a victim make
  the same simultaneous transition; six fault types per victim (positive /
  negative glitch on a quiescent victim, delayed / sped-up rise and fall), so
  ``6 N`` vector pairs cover ``N`` victim interconnects.

* **MT model** [Tehranipour et al., TCAD 2004]: all transitions on the
  victim combined with every transition combination on the aggressors —
  exponential in the aggressor count.  The *reduced* MT model restricts the
  aggressors to the ``k`` coupled neighbors on either side (locality factor),
  giving roughly ``N * 2^(2k+2)`` vector pairs.

Both models emit :class:`~repro.sitest.patterns.SIPattern` vector pairs over
an :class:`~repro.sitest.topology.InterconnectTopology`.  Pattern streams
are generated lazily so the (huge) MT sets never need to be materialized to
be counted or truncated.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.sitest.patterns import (
    FALL,
    RISE,
    SIPattern,
    STEADY_ONE,
    STEADY_ZERO,
    TRANSITIONS,
)
from repro.sitest.topology import InterconnectTopology

#: The six MA fault types as (victim symbol, aggressor symbol) pairs:
#: positive/negative glitch, delayed rise/fall, speedup rise/fall.
MA_FAULT_TYPES: tuple[tuple[str, str], ...] = (
    (STEADY_ZERO, RISE),  # positive glitch on quiescent-low victim
    (STEADY_ONE, FALL),  # negative glitch on quiescent-high victim
    (RISE, FALL),  # delayed rising transition
    (FALL, RISE),  # delayed falling transition
    (RISE, RISE),  # sped-up rising transition
    (FALL, FALL),  # sped-up falling transition
)

#: Victim states exercised by the MT model: steady values and transitions.
MT_VICTIM_SYMBOLS: tuple[str, ...] = (STEADY_ZERO, STEADY_ONE, RISE, FALL)


def ma_pattern_count(victim_count: int) -> int:
    """Number of MA vector pairs for ``victim_count`` interconnects (``6N``)."""
    if victim_count < 0:
        raise ValueError("victim count must be non-negative")
    return 6 * victim_count


def reduced_mt_pattern_count(victim_count: int, locality: int) -> int:
    """Approximate reduced-MT vector pair count, ``N * 2^(2k+2)``."""
    if victim_count < 0:
        raise ValueError("victim count must be non-negative")
    if locality < 0:
        raise ValueError("locality factor must be non-negative")
    return victim_count * 2 ** (2 * locality + 2)


def generate_ma_patterns(topology: InterconnectTopology) -> Iterator[SIPattern]:
    """Yield the MA test set for every net of ``topology``.

    Each victim net yields six patterns; in each, all of the victim's
    coupled neighbors carry the same aggressor transition.
    """
    for victim in topology.nets:
        aggressors = topology.aggressors_of(victim.net_id)
        for victim_symbol, aggressor_symbol in MA_FAULT_TYPES:
            cares = {victim.driver: victim_symbol}
            for aggressor in aggressors:
                cares[aggressor.driver] = aggressor_symbol
            yield SIPattern(cares=cares, victim=victim.driver)


def generate_reduced_mt_patterns(
    topology: InterconnectTopology,
    locality: int,
) -> Iterator[SIPattern]:
    """Yield the reduced-MT test set for every net of ``topology``.

    For each victim, the aggressor set is clipped to the ``locality``
    coupled neighbors on either side (at most ``2 * locality`` nets), and
    every combination of rise/fall transitions on those aggressors is
    paired with each of the four victim states.
    """
    if locality < 0:
        raise ValueError("locality factor must be non-negative")
    for victim in topology.nets:
        neighbor_ids = sorted(topology.neighborhoods.get(victim.net_id, ()))
        below = [n for n in neighbor_ids if n < victim.net_id][-locality:]
        above = [n for n in neighbor_ids if n > victim.net_id][:locality]
        aggressor_ids = below + above
        aggressor_drivers = [topology.nets[n].driver for n in aggressor_ids]
        for victim_symbol in MT_VICTIM_SYMBOLS:
            for combo in product(TRANSITIONS, repeat=len(aggressor_drivers)):
                cares = {victim.driver: victim_symbol}
                for driver, symbol in zip(aggressor_drivers, combo):
                    cares[driver] = symbol
                yield SIPattern(cares=cares, victim=victim.driver)
