"""Test economics: defect level versus SI fault coverage.

The Williams–Brown model relates shipped defect level to process yield
and fault coverage::

    DL = 1 - Y^(1 - FC)

This module applies it to SI testing: grade a pattern set's MA coverage
with the simulator, convert to defect level (in DPPM), and expose the
trade-off "how many SI test cycles buy how many DPPM" — the quantitative
argument for spending TAM bandwidth on interconnect SI tests at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sitest.patterns import SIPattern
from repro.sitest.simulator import simulate
from repro.sitest.topology import InterconnectTopology


def williams_brown_defect_level(process_yield: float, coverage: float) -> float:
    """Shipped defect level ``1 - Y^(1-FC)`` (fraction of shipped parts).

    Raises:
        ValueError: If yield is not in (0, 1] or coverage not in [0, 1].
    """
    if not 0.0 < process_yield <= 1.0:
        raise ValueError("process yield must lie in (0, 1]")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must lie in [0, 1]")
    return 1.0 - process_yield ** (1.0 - coverage)


def defect_level_dppm(process_yield: float, coverage: float) -> float:
    """Williams–Brown defect level in defective parts per million."""
    return williams_brown_defect_level(process_yield, coverage) * 1e6


@dataclass(frozen=True)
class CoverageEconomicsPoint:
    """One prefix of the pattern set."""

    patterns_applied: int
    coverage: float
    dppm: float


def coverage_economics(
    topology: InterconnectTopology,
    patterns: list[SIPattern],
    process_yield: float,
    checkpoints: tuple[int, ...],
) -> tuple[CoverageEconomicsPoint, ...]:
    """Defect level after each pattern-count checkpoint.

    Monotone by construction: more patterns -> more coverage -> fewer
    shipped SI escapes.
    """
    points = []
    for checkpoint in checkpoints:
        if checkpoint < 0:
            raise ValueError("checkpoints must be non-negative")
        report = simulate(topology, patterns[:checkpoint])
        points.append(
            CoverageEconomicsPoint(
                patterns_applied=checkpoint,
                coverage=report.coverage,
                dppm=defect_level_dppm(process_yield, report.coverage),
            )
        )
    return tuple(points)


def format_economics_report(
    points: tuple[CoverageEconomicsPoint, ...]
) -> str:
    """Text table of the coverage/DPPM trade-off."""
    lines = [f"{'patterns':>9} {'MA coverage':>12} {'SI DPPM':>10}"]
    for point in points:
        lines.append(
            f"{point.patterns_applied:>9} {point.coverage:>11.1%} "
            f"{point.dppm:>10.0f}"
        )
    return "\n".join(lines)
