"""Core-external interconnect topology model.

The ITC'02 benchmarks carry no functional netlist, but the fault models
(:mod:`repro.sitest.faults`) and the Fig. 1 style examples need one.  A
topology is a set of point-to-point *nets* (each driven by one core output
terminal and received by one or more cores) plus an optional shared bus, and
a *coupling neighborhood* describing which nets run close enough to act as
aggressors on each other.

For synthetic experiments a topology can be generated with
:func:`random_topology`, which wires core outputs to other cores and derives
the coupling neighborhoods from a linear placement of the nets (nets with
nearby indices couple), matching the locality assumption behind the reduced
MT fault model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.soc.model import Soc
from repro.sitest.patterns import Terminal


@dataclass(frozen=True)
class Net:
    """A core-external interconnect.

    Attributes:
        net_id: Index of the net within the topology.
        driver: The core output terminal driving the net.
        receivers: Ids of the cores receiving the net.
    """

    net_id: int
    driver: Terminal
    receivers: tuple[int, ...]


@dataclass(frozen=True)
class SharedBus:
    """A functional bus shared between several cores.

    Attributes:
        width: Number of bus lines.
        connected_cores: Ids of the cores attached to the bus.
    """

    width: int
    connected_cores: tuple[int, ...]


@dataclass
class InterconnectTopology:
    """Interconnects of an SOC: nets, optional shared bus, and coupling.

    Attributes:
        nets: All point-to-point nets.
        bus: The shared functional bus, if any.
        neighborhoods: ``neighborhoods[net_id]`` lists the net ids that can
            act as aggressors on that net (its coupled neighbors).
    """

    nets: list[Net] = field(default_factory=list)
    bus: SharedBus | None = None
    neighborhoods: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def net_count(self) -> int:
        return len(self.nets)

    def net_by_id(self, net_id: int) -> Net:
        return self.nets[net_id]

    def aggressors_of(self, net_id: int) -> tuple[Net, ...]:
        """Nets coupled to ``net_id`` (its potential aggressors)."""
        return tuple(self.nets[n] for n in self.neighborhoods.get(net_id, ()))

    def validate(self, soc: Soc) -> None:
        """Check the topology against an SOC; raise ``ValueError`` on errors."""
        core_ids = set(soc.core_ids)
        outputs = {core.core_id: core.woc_count for core in soc}
        for net in self.nets:
            driver_core, driver_index = net.driver
            if driver_core not in core_ids:
                raise ValueError(f"net {net.net_id}: unknown driver core {driver_core}")
            if not 0 <= driver_index < outputs[driver_core]:
                raise ValueError(
                    f"net {net.net_id}: driver index {driver_index} out of range "
                    f"for core {driver_core} ({outputs[driver_core]} output cells)"
                )
            for receiver in net.receivers:
                if receiver not in core_ids:
                    raise ValueError(
                        f"net {net.net_id}: unknown receiver core {receiver}"
                    )
        if self.bus is not None:
            for core_id in self.bus.connected_cores:
                if core_id not in core_ids:
                    raise ValueError(f"bus: unknown connected core {core_id}")
        for net_id, neighbors in self.neighborhoods.items():
            if not 0 <= net_id < len(self.nets):
                raise ValueError(f"neighborhood for unknown net {net_id}")
            for neighbor in neighbors:
                if not 0 <= neighbor < len(self.nets):
                    raise ValueError(
                        f"net {net_id}: unknown coupled neighbor {neighbor}"
                    )
                if neighbor == net_id:
                    raise ValueError(f"net {net_id} listed as its own aggressor")


def random_topology(
    soc: Soc,
    fanouts_per_core: int = 2,
    locality: int = 3,
    bus_width: int = 32,
    seed: int = 0,
) -> InterconnectTopology:
    """Generate a random interconnect topology for ``soc``.

    Every core output terminal that is "used" drives one net to
    ``fanouts_per_core`` randomly chosen other cores (mirroring the paper's
    Section 2 sizing example where each core sends data to two others).
    Nets are placed on a line in creation order and each net couples to the
    ``locality`` nets on either side, the neighborhood structure assumed by
    the reduced MT fault model.

    Args:
        soc: The SOC to wire up.
        fanouts_per_core: Receivers per net.
        locality: Coupling reach ``k``; net ``i`` couples to nets
            ``i-k .. i+k`` (excluding itself).
        bus_width: Width of the shared bus (0 disables the bus).
        seed: RNG seed; the construction is fully deterministic.
    """
    rng = random.Random(seed)
    core_ids = list(soc.core_ids)
    if len(core_ids) < 2:
        raise ValueError("need at least two cores to build interconnects")

    nets: list[Net] = []
    for core in soc:
        others = [core_id for core_id in core_ids if core_id != core.core_id]
        for output_index in range(core.woc_count):
            receivers = tuple(
                sorted(rng.sample(others, min(fanouts_per_core, len(others))))
            )
            nets.append(
                Net(
                    net_id=len(nets),
                    driver=(core.core_id, output_index),
                    receivers=receivers,
                )
            )

    neighborhoods = {}
    for net in nets:
        low = max(0, net.net_id - locality)
        high = min(len(nets) - 1, net.net_id + locality)
        neighborhoods[net.net_id] = tuple(
            n for n in range(low, high + 1) if n != net.net_id
        )

    bus = None
    if bus_width > 0:
        bus = SharedBus(width=bus_width, connected_cores=tuple(core_ids))
    return InterconnectTopology(nets=nets, bus=bus, neighborhoods=neighborhoods)
