"""Signal-integrity test pattern algebra.

An SI test pattern (paper, Table 1) assigns to a few core output terminals a
symbol out of:

* ``x`` — don't care (never stored; absence of an assignment means ``x``),
* ``0`` / ``1`` — terminal held steady at 0/1 over two consecutive cycles,
* ``R`` — positive transition (the paper's ``↑``),
* ``F`` — negative transition (the paper's ``↓``).

Each pattern additionally carries a *bus postfix*: the set of shared-bus
lines it utilizes.  Because a bus line is a test resource shared by several
cores, a line claim records *which core boundary* drives the line; two
patterns claiming the same line from different boundaries must not be merged
(paper, Section 3).

Patterns are sparse: only care bits are stored.  Two patterns are
*compatible* when their symbol-wise intersection is non-empty, i.e. they
never assign different non-``x`` symbols to the same terminal and never
claim the same bus line from different cores.  Compatibility is a pairwise
property, so any pairwise-compatible set has a non-empty intersection — the
clique-cover formulation of Section 3 is therefore sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Symbols for care bits.  "x" is represented by absence.
STEADY_ZERO = "0"
STEADY_ONE = "1"
RISE = "R"
FALL = "F"

SYMBOLS = (STEADY_ZERO, STEADY_ONE, RISE, FALL)
TRANSITIONS = (RISE, FALL)

_GLYPHS = {STEADY_ZERO: "0", STEADY_ONE: "1", RISE: "↑", FALL: "↓"}

Terminal = tuple[int, int]
"""A core output terminal: ``(core_id, output_index)``."""


@dataclass(frozen=True)
class SIPattern:
    """One (possibly merged) SI test vector pair.

    Attributes:
        cares: Mapping from terminal to its symbol; terminals not present
            are don't-cares.
        bus_claims: Mapping from utilized bus line index to the id of the
            core whose boundary drives the line for this pattern.
        victim: The victim terminal, or ``None`` for merged patterns that
            cover several victims.
    """

    cares: dict[Terminal, str] = field(default_factory=dict)
    bus_claims: dict[int, int] = field(default_factory=dict)
    victim: Terminal | None = None

    def __post_init__(self) -> None:
        for terminal, symbol in self.cares.items():
            if symbol not in SYMBOLS:
                raise ValueError(f"invalid symbol {symbol!r} at {terminal}")

    @property
    def care_cores(self) -> frozenset[int]:
        """Ids of the cores whose terminals this pattern cares about."""
        return frozenset(core_id for core_id, _ in self.cares)

    def is_compatible(self, other: "SIPattern") -> bool:
        """True when the intersection of the two patterns is non-empty."""
        small, large = (
            (self, other) if len(self.cares) <= len(other.cares) else (other, self)
        )
        large_cares = large.cares
        for terminal, symbol in small.cares.items():
            existing = large_cares.get(terminal)
            if existing is not None and existing != symbol:
                return False
        small_bus, large_bus = (
            (self, other)
            if len(self.bus_claims) <= len(other.bus_claims)
            else (other, self)
        )
        large_claims = large_bus.bus_claims
        for line, driver in small_bus.bus_claims.items():
            existing = large_claims.get(line)
            if existing is not None and existing != driver:
                return False
        return True

    def merged_with(self, other: "SIPattern") -> "SIPattern":
        """Return the intersection (merge) of two compatible patterns.

        Raises:
            ValueError: If the patterns are incompatible.
        """
        if not self.is_compatible(other):
            raise ValueError("cannot merge incompatible SI patterns")
        cares = dict(self.cares)
        cares.update(other.cares)
        bus_claims = dict(self.bus_claims)
        bus_claims.update(other.bus_claims)
        return SIPattern(cares=cares, bus_claims=bus_claims, victim=None)


def format_pattern_table(
    patterns: list[SIPattern],
    core_outputs: dict[int, int],
    bus_width: int = 0,
) -> str:
    """Render patterns in the style of the paper's Table 1.

    Args:
        patterns: The patterns to render (rows).
        core_outputs: Mapping ``core_id -> number of output terminals``;
            defines the columns, in sorted core-id order.
        bus_width: Number of shared-bus lines to render as the postfix.

    Returns:
        A fixed-width text table using ``↑``/``↓`` glyphs for transitions.
    """
    core_ids = sorted(core_outputs)
    header_cells = [f"core{core_id} WOC" for core_id in core_ids]
    if bus_width:
        header_cells.append("Bus")

    rows: list[list[str]] = []
    for pattern in patterns:
        cells = []
        for core_id in core_ids:
            symbols = [
                _GLYPHS.get(pattern.cares.get((core_id, index)), "x")
                for index in range(core_outputs[core_id])
            ]
            cells.append(" ".join(symbols))
        if bus_width:
            bus_bits = [
                "1" if line in pattern.bus_claims else "x"
                for line in range(bus_width)
            ]
            cells.append(" ".join(bus_bits))
        rows.append(cells)

    widths = [
        max(len(header_cells[column]), *(len(row[column]) for row in rows))
        if rows
        else len(header_cells[column])
        for column in range(len(header_cells))
    ]
    lines = [
        " | ".join(cell.ljust(width) for cell, width in zip(header_cells, widths))
    ]
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
