"""Dictionary-based diagnosis of SI faults from ILS syndromes.

When the integrity-loss sensors flag failures on the tester, the failing
*pattern set* is the syndrome; diagnosis asks which MA fault(s) explain
it.  The classical approach is a fault dictionary: simulate every fault
against the applied patterns, record which patterns would fail for each
fault, and match observed syndromes against the dictionary.

The dictionary also quantifies the *diagnostic resolution* of a pattern
set: faults with identical columns are indistinguishable, so compaction
(or truncation) can cost resolution even when detection coverage is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sitest.patterns import SIPattern
from repro.sitest.simulator import MAFault, detects, fault_universe
from repro.sitest.topology import InterconnectTopology


@dataclass(frozen=True)
class FaultDictionary:
    """Pass/fail dictionary of a pattern set over the MA fault universe.

    Attributes:
        faults: The fault universe, in a fixed order.
        signatures: For each fault, the frozenset of pattern indices that
            detect it (its expected failing-pattern signature).
    """

    faults: tuple[MAFault, ...]
    signatures: tuple[frozenset[int], ...]

    @property
    def detectable_faults(self) -> tuple[MAFault, ...]:
        """Faults at least one pattern detects."""
        return tuple(
            fault
            for fault, signature in zip(self.faults, self.signatures)
            if signature
        )

    def equivalence_classes(self) -> tuple[tuple[MAFault, ...], ...]:
        """Groups of detectable faults with identical signatures —
        indistinguishable by this pattern set."""
        by_signature: dict[frozenset[int], list[MAFault]] = {}
        for fault, signature in zip(self.faults, self.signatures):
            if signature:
                by_signature.setdefault(signature, []).append(fault)
        return tuple(
            tuple(group) for group in by_signature.values()
        )

    @property
    def diagnostic_resolution(self) -> float:
        """Classes per detectable fault (1.0 = every fault distinguishable)."""
        detectable = len(self.detectable_faults)
        if detectable == 0:
            return 1.0
        return len(self.equivalence_classes()) / detectable

    def diagnose(self, failing_patterns: frozenset[int]) -> tuple[MAFault, ...]:
        """Single-fault diagnosis: faults whose signature equals the
        observed failing-pattern set."""
        return tuple(
            fault
            for fault, signature in zip(self.faults, self.signatures)
            if signature and signature == failing_patterns
        )

    def diagnose_subset(
        self, failing_patterns: frozenset[int]
    ) -> tuple[MAFault, ...]:
        """Multiple-fault-tolerant match: faults whose signature is a
        non-empty subset of the observed failures (each such fault could
        be one of several present)."""
        return tuple(
            fault
            for fault, signature in zip(self.faults, self.signatures)
            if signature and signature <= failing_patterns
        )


def build_dictionary(
    topology: InterconnectTopology,
    patterns: list[SIPattern],
) -> FaultDictionary:
    """Simulate every MA fault against ``patterns``.

    Complexity is |faults| x |patterns| with the cheap per-pair check of
    :func:`repro.sitest.simulator.detects`; fine for the pattern-set sizes
    diagnosis is run on (post-compaction sets).
    """
    faults = fault_universe(topology)
    signatures = []
    for fault in faults:
        failing = frozenset(
            index
            for index, pattern in enumerate(patterns)
            if detects(topology, pattern, fault)
        )
        signatures.append(failing)
    return FaultDictionary(faults=faults, signatures=tuple(signatures))


def syndrome_of(
    topology: InterconnectTopology,
    patterns: list[SIPattern],
    present_faults: tuple[MAFault, ...],
) -> frozenset[int]:
    """The failing-pattern set a set of present faults would produce
    (union of their signatures) — used to generate test syndromes."""
    failing: set[int] = set()
    for index, pattern in enumerate(patterns):
        for fault in present_faults:
            if detects(topology, pattern, fault):
                failing.add(index)
                break
    return frozenset(failing)
