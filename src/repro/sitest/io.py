"""JSON persistence and validation of SI pattern sets.

The paper generates random patterns because the benchmarks carry no
netlists, but a real user has ATPG- or topology-derived SI tests.  This
module lets such pattern sets enter and leave the library as plain JSON,
and validates them against an SOC before they reach compaction (symbol
sanity, terminal ranges, bus-claim consistency).

Format::

    {
      "format": "repro-si-patterns",
      "version": 1,
      "bus_width": 32,
      "patterns": [
        {"cares": [[core, terminal, "R"], ...],
         "bus": {"<line>": driver_core},
         "victim": [core, terminal]}          // optional
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.resilience.validation import ValidationError
from repro.sitest.patterns import SIPattern, SYMBOLS
from repro.soc.model import Soc

_FORMAT = "repro-si-patterns"
_VERSION = 1


def patterns_to_dict(
    patterns: list[SIPattern], bus_width: int = 32
) -> dict:
    """JSON-ready representation of a pattern set."""
    serialized = []
    for pattern in patterns:
        entry: dict = {
            "cares": [
                [core_id, terminal, symbol]
                for (core_id, terminal), symbol in sorted(
                    pattern.cares.items()
                )
            ]
        }
        if pattern.bus_claims:
            entry["bus"] = {
                str(line): driver
                for line, driver in sorted(pattern.bus_claims.items())
            }
        if pattern.victim is not None:
            entry["victim"] = list(pattern.victim)
        serialized.append(entry)
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "bus_width": bus_width,
        "patterns": serialized,
    }


def patterns_from_dict(data: dict) -> list[SIPattern]:
    """Rebuild a pattern set from :func:`patterns_to_dict` output.

    Raises:
        ValidationError: On an unrecognized payload or malformed entries.
    """
    if data.get("format") != _FORMAT:
        raise ValidationError(
            f"not an SI pattern payload (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValidationError(f"unsupported version {data.get('version')!r}")
    patterns = []
    for index, entry in enumerate(data.get("patterns", [])):
        cares = {}
        for item in entry.get("cares", []):
            if len(item) != 3:
                raise ValidationError(f"pattern {index}: malformed care {item}")
            core_id, terminal, symbol = item
            cares[(int(core_id), int(terminal))] = symbol
        bus_claims = {
            int(line): int(driver)
            for line, driver in entry.get("bus", {}).items()
        }
        victim = entry.get("victim")
        patterns.append(
            SIPattern(
                cares=cares,
                bus_claims=bus_claims,
                victim=tuple(victim) if victim is not None else None,
            )
        )
    return patterns


def save_patterns(
    patterns: list[SIPattern], path: str | Path, bus_width: int = 32
) -> None:
    """Write a pattern set to a JSON file."""
    Path(path).write_text(
        json.dumps(patterns_to_dict(patterns, bus_width)) + "\n"
    )


def load_patterns(path: str | Path) -> list[SIPattern]:
    """Read a pattern set from a JSON file; diagnostics carry the path."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"invalid JSON: {error}", path=str(path)
        ) from error
    try:
        return patterns_from_dict(data)
    except ValidationError as error:
        raise error.with_source(str(path))


def validate_patterns(
    soc: Soc,
    patterns: list[SIPattern],
    bus_width: int = 32,
) -> None:
    """Check a pattern set against an SOC; raise
    :class:`ValidationError` on the first violation.

    Validated: symbols, core ids, terminal indices within each core's
    wrapper-output-cell range, bus lines within the bus width, bus driver
    cores existing, and the victim (when recorded) being a care bit.
    """
    woc_of = {core.core_id: core.woc_count for core in soc}
    for index, pattern in enumerate(patterns):
        for (core_id, terminal), symbol in pattern.cares.items():
            if symbol not in SYMBOLS:
                raise ValidationError(
                    f"pattern {index}: invalid symbol {symbol!r}"
                )
            if core_id not in woc_of:
                raise ValidationError(
                    f"pattern {index}: unknown core {core_id}"
                )
            if not 0 <= terminal < woc_of[core_id]:
                raise ValidationError(
                    f"pattern {index}: terminal {terminal} out of range "
                    f"for core {core_id} ({woc_of[core_id]} output cells)"
                )
        for line, driver in pattern.bus_claims.items():
            if not 0 <= line < bus_width:
                raise ValidationError(
                    f"pattern {index}: bus line {line} outside the "
                    f"{bus_width}-bit bus"
                )
            if driver not in woc_of:
                raise ValidationError(
                    f"pattern {index}: bus driver core {driver} unknown"
                )
        if pattern.victim is not None and pattern.victim not in pattern.cares:
            raise ValidationError(
                f"pattern {index}: victim {pattern.victim} carries no "
                "care bit"
            )
