"""repro — SOC test architecture optimization for signal-integrity faults.

A from-scratch reproduction of Xu, Zhang and Chakrabarty, "SOC Test
Architecture Optimization for Signal Integrity Faults on Core-External
Interconnects", DAC 2007.

Typical use::

    from repro import (
        load_benchmark, generate_random_patterns, build_si_test_groups,
        optimize_tam,
    )

    soc = load_benchmark("p93791")
    patterns = generate_random_patterns(soc, 10_000, seed=1)
    grouping = build_si_test_groups(soc, patterns, parts=4)
    result = optimize_tam(soc, w_max=32, groups=grouping.groups)
    print(result.t_total)
"""

from repro.compaction import (
    CompactionResult,
    GroupingResult,
    SITestGroup,
    build_si_test_groups,
    color_compact,
    greedy_compact,
)
from repro.core import (
    AnnealingConfig,
    exact_optimize,
    BoundReport,
    Evaluation,
    OptimizationResult,
    PowerAwareEvaluator,
    PowerModel,
    TamEvaluator,
    anneal_tam,
    bound_report,
    evaluate_architecture,
    optimize_tam,
    schedule_si_tests,
)
from repro.sitest import (
    GeneratorConfig,
    SIPattern,
    generate_ma_patterns,
    generate_random_patterns,
    generate_reduced_mt_patterns,
    random_topology,
)
from repro.sitest import fault_universe, simulate
from repro.soc import (
    Core,
    CoreTest,
    Soc,
    available_benchmarks,
    load_benchmark,
    synthesize_soc,
)
from repro.tam import (
    TestRail,
    load_architecture,
    save_architecture,
    TestRailArchitecture,
    optimize_testbus,
    render_schedule,
    render_schedule_svg,
    si_oblivious_total,
    tr_architect,
    write_schedule_svg,
)
from repro.wrapper import (
    CellLibrary,
    core_test_time,
    design_wrapper,
    soc_wrapper_overhead,
)

__version__ = "1.0.0"

__all__ = [
    "AnnealingConfig",
    "BoundReport",
    "CellLibrary",
    "CompactionResult",
    "PowerAwareEvaluator",
    "PowerModel",
    "anneal_tam",
    "bound_report",
    "fault_universe",
    "optimize_testbus",
    "render_schedule_svg",
    "simulate",
    "soc_wrapper_overhead",
    "synthesize_soc",
    "write_schedule_svg",
    "Core",
    "CoreTest",
    "Evaluation",
    "GeneratorConfig",
    "GroupingResult",
    "OptimizationResult",
    "SIPattern",
    "SITestGroup",
    "Soc",
    "TamEvaluator",
    "TestRail",
    "TestRailArchitecture",
    "available_benchmarks",
    "build_si_test_groups",
    "color_compact",
    "core_test_time",
    "design_wrapper",
    "evaluate_architecture",
    "exact_optimize",
    "load_architecture",
    "save_architecture",
    "generate_ma_patterns",
    "generate_random_patterns",
    "generate_reduced_mt_patterns",
    "greedy_compact",
    "load_benchmark",
    "optimize_tam",
    "random_topology",
    "render_schedule",
    "schedule_si_tests",
    "si_oblivious_total",
    "tr_architect",
    "__version__",
]
