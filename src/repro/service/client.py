"""A small stdlib HTTP client for the optimization service.

:class:`ServiceClient` wraps :mod:`http.client` — the same zero-
dependency constraint as the server — and speaks the wire protocol of
:mod:`repro.service.server`: submit plans, poll jobs, wait for results,
iterate the chunked event stream.  Errors come back as
:class:`ServiceError` carrying the HTTP status and the server's
structured error body.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlparse

from repro.experiments.plan import ExperimentPlan, plan_to_dict

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response.

    Attributes:
        status: HTTP status code.
        body: Decoded JSON body (``{}`` when undecodable).
        retry_after: Parsed ``Retry-After`` seconds, when present.
    """

    def __init__(
        self, status: int, body: dict, retry_after: float | None = None
    ) -> None:
        self.status = status
        self.body = body
        self.retry_after = retry_after
        error = body.get("error", {}) if isinstance(body, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one running service instance.

    Args:
        url: Base URL, e.g. ``http://127.0.0.1:8787``.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"expected an http:// URL, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict, dict]:
        connection = self._connection()
        try:
            payload = (
                None
                if body is None
                else json.dumps(body).encode("utf-8")
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {}
            return response.status, decoded, dict(response.getheaders())
        finally:
            connection.close()

    def _checked(
        self, method: str, path: str, body: dict | None = None,
        accept: tuple[int, ...] = (200,),
    ) -> tuple[int, dict]:
        status, decoded, headers = self._request(method, path, body=body)
        if status not in accept:
            retry_after = headers.get("Retry-After")
            raise ServiceError(
                status,
                decoded,
                retry_after=(
                    float(retry_after) if retry_after is not None else None
                ),
            )
        return status, decoded

    # -- API --------------------------------------------------------------

    def health(self) -> dict:
        return self._checked("GET", "/healthz")[1]

    def stats(self) -> dict:
        return self._checked("GET", "/stats")[1]

    def submit(
        self,
        plan: ExperimentPlan | dict,
        priority: int = 0,
        fresh: bool = False,
        tag: str | None = None,
    ) -> dict:
        """Submit a plan (or a prebuilt ``plan_to_dict`` payload).

        Returns the submission response: ``{"job": ..., "created": ...,
        "fingerprint": ...}``.

        Raises:
            ServiceError: 400 on a malformed plan, 429 with
                ``retry_after`` set when the queue is full.
        """
        payload = (
            plan_to_dict(plan)
            if isinstance(plan, ExperimentPlan)
            else plan
        )
        body: dict = {"plan": payload}
        if priority:
            body["priority"] = priority
        if fresh:
            body["fresh"] = True
        if tag is not None:
            body["tag"] = tag
        return self._checked(
            "POST", "/jobs", body=body, accept=(200, 201)
        )[1]

    def jobs(self) -> list[dict]:
        return self._checked("GET", "/jobs")[1]["jobs"]

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")[1]["job"]

    def result(self, job_id: str) -> dict | None:
        """The terminal result body, or ``None`` while pending."""
        status, decoded = self._checked(
            "GET", f"/jobs/{job_id}/result", accept=(200, 202)
        )
        if status == 202:
            return None
        return decoded

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> dict:
        """Block until the job is terminal; returns the result response.

        Rides the chunked event stream — the server pushes lifecycle
        events and closes the stream at the terminal state, so a
        finished job is observed immediately instead of on the next
        poll tick.  Falls back to ``result`` polling if the stream
        breaks mid-flight.

        Raises:
            TimeoutError: The job did not finish in ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        try:
            for _ in self.events(job_id):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"job {job_id} still pending after {timeout:g}s"
                    )
        except (OSError, ValueError):
            pass  # broken stream; the polling loop below settles it
        while True:
            result = self.result(job_id)
            if result is not None:
                return result
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout:g}s"
                )
            time.sleep(poll)

    def events(self, job_id: str):
        """Iterate the chunked event stream as decoded JSON lines;
        the final line carries the result."""
        connection = self._connection()
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    decoded = json.loads(raw) if raw else {}
                except ValueError:
                    decoded = {}
                raise ServiceError(response.status, decoded)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()
