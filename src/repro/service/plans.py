"""Build submittable plans from CLI-style knobs (``repro submit``).

One entry point, :func:`build_plan`, maps a plan kind plus the familiar
experiment flags (``--patterns``, ``--wmax``, ``--widths``, ...) onto
the kind's plan builder, applying exactly the defaults the standalone
CLI commands use — so ``repro submit table t5`` produces the same plan
fingerprint as a local ``repro table t5`` run.  SI groups for the kinds
that take prebuilt groups (pareto/compare/multisite) are computed
client-side from ``patterns``/``parts``/``seed``, mirroring the CLI's
``_si_groups_for`` path, which keeps submission fingerprints identical
to local runs.
"""

from __future__ import annotations

from repro.experiments.plan import ExperimentPlan
from repro.resilience.validation import ValidationError
from repro.soc.model import Soc

__all__ = ["SUBMITTABLE_KINDS", "build_plan"]

#: Every kind ``repro submit`` accepts, with its per-kind defaults
#: (matching the standalone CLI command of the same name).
SUBMITTABLE_KINDS = (
    "table", "pareto", "volume", "compare", "multisite", "scaling",
    "sensitivity", "stability", "optimize", "evaluate",
)

_DEFAULTS: dict[str, dict] = {
    "table": {"patterns": 10_000, "parts": [1, 2, 4, 8], "seed": 1},
    "pareto": {
        "patterns": 0, "parts": 4, "seed": 1,
        "widths": [8, 16, 24, 32, 40, 48, 56, 64],
    },
    "volume": {"patterns": 5_000, "parts": [1, 2, 4, 8], "seed": 1},
    "compare": {"patterns": 0, "parts": 4, "seed": 1, "sa_steps": 4_000},
    "multisite": {"patterns": 0, "parts": 4, "seed": 1, "channels": 64},
    "scaling": {
        "patterns": 2_000, "parts": 4, "seed": 0,
        "cores": [8, 16, 24, 32], "wmax": 32,
    },
    "sensitivity": {"patterns": 2_000, "parts": 4, "seed": 1, "wmax": 32},
    "stability": {"patterns": 2_000, "seeds": [1, 2, 3], "wmax": 24},
    "optimize": {"patterns": 0, "parts": 4, "seed": 1},
    "evaluate": {"patterns": 0, "parts": 4, "seed": 1},
}


def _option(options: dict, defaults: dict, name: str):
    value = options.get(name)
    if value is None:
        value = defaults.get(name)
    return value


def _require(kind: str, name: str, value):
    if value is None:
        raise ValidationError(
            f"plan kind {kind!r} requires --{name.replace('_', '-')}",
            field=name,
        )
    return value


def _si_groups(soc: Soc, patterns: int, parts: int, seed: int):
    """Client-side SI grouping, byte-compatible with the CLI path."""
    if not patterns:
        return ()
    from repro.compaction.horizontal import build_si_test_groups
    from repro.sitest.generator import generate_random_patterns

    pattern_set = generate_random_patterns(soc, patterns, seed=seed)
    return build_si_test_groups(
        soc, pattern_set, parts=parts, seed=seed
    ).groups


def build_plan(kind: str, soc: Soc | None = None, **options) -> ExperimentPlan:
    """Build the plan for ``kind`` from CLI-style options.

    Args:
        kind: One of :data:`SUBMITTABLE_KINDS`.
        soc: The target SOC (every kind except ``scaling``).
        **options: ``patterns``, ``wmax``, ``widths``, ``parts``,
            ``seed``, ``seeds``, ``cores``, ``channels``, ``sa_steps``,
            ``arch`` (architecture JSON path), ``optimizer_backend``,
            ``compaction_backend`` — unset ones take the kind's CLI
            defaults.

    Raises:
        ValidationError: Unknown kind, missing SOC, or a missing
            required knob (``wmax``/``arch``).
    """
    if kind not in SUBMITTABLE_KINDS:
        raise ValidationError(
            f"unknown plan kind {kind!r}; submit accepts: "
            f"{', '.join(SUBMITTABLE_KINDS)}",
            field="kind",
        )
    defaults = _DEFAULTS[kind]
    if soc is None and kind != "scaling":
        raise ValidationError(
            f"plan kind {kind!r} requires a SOC", field="soc"
        )
    patterns = _option(options, defaults, "patterns")
    parts = _option(options, defaults, "parts")
    seed = _option(options, defaults, "seed")
    wmax = _option(options, defaults, "wmax")
    optimizer_backend = options.get("optimizer_backend") or "auto"

    if kind == "table":
        from repro.experiments.table_runner import (
            DEFAULT_WIDTHS,
            table_plan,
        )

        widths = _option(options, defaults, "widths") or list(
            DEFAULT_WIDTHS
        )
        return table_plan(
            soc,
            patterns,
            widths=tuple(widths),
            group_counts=tuple(parts),
            seed=seed,
            optimizer_backend=optimizer_backend,
        )
    if kind == "pareto":
        from repro.experiments.pareto import pareto_plan

        widths = _option(options, defaults, "widths")
        return pareto_plan(
            soc,
            tuple(widths),
            groups=_si_groups(soc, patterns, parts, seed),
        )
    if kind == "volume":
        from repro.experiments.compaction_study import volume_plan

        return volume_plan(
            soc,
            patterns,
            group_counts=tuple(parts),
            seed=seed,
            backend=options.get("compaction_backend") or "auto",
        )
    if kind == "compare":
        from repro.experiments.compare import compare_plan

        return compare_plan(
            soc,
            _require(kind, "wmax", wmax),
            groups=_si_groups(soc, patterns, parts, seed),
            annealing_steps=_option(options, defaults, "sa_steps"),
        )
    if kind == "multisite":
        from repro.experiments.multisite import multisite_plan

        return multisite_plan(
            soc,
            _option(options, defaults, "channels"),
            groups=_si_groups(soc, patterns, parts, seed),
        )
    if kind == "scaling":
        from repro.experiments.scaling import scaling_plan

        return scaling_plan(
            tuple(_option(options, defaults, "cores")),
            w_max=wmax,
            pattern_count=patterns,
            parts=parts,
            seed=seed,
        )
    if kind == "sensitivity":
        from repro.experiments.sensitivity import sensitivity_plan

        return sensitivity_plan(soc, patterns, wmax, parts=parts, seed=seed)
    if kind == "stability":
        from repro.experiments.stability import stability_plan

        return stability_plan(
            soc,
            patterns,
            wmax,
            seeds=tuple(_option(options, defaults, "seeds")),
        )
    if kind == "optimize":
        from repro.experiments.single import optimize_plan

        return optimize_plan(
            soc,
            _require(kind, "wmax", wmax),
            pattern_count=patterns,
            parts=parts,
            seed=seed,
            optimizer_backend=optimizer_backend,
        )
    # kind == "evaluate"
    from repro.experiments.single import evaluate_plan
    from repro.tam.serialize import load_architecture

    arch = _require(kind, "arch", options.get("arch"))
    return evaluate_plan(
        soc,
        load_architecture(arch),
        pattern_count=patterns,
        parts=parts,
        seed=seed,
        optimizer_backend=optimizer_backend,
    )
