"""Durable job records and the dedup-by-fingerprint job registry.

Every submitted job is journaled as one JSON file under
``<state_dir>/jobs/<job_id>.json`` (atomic tmp+fsync+rename via
:func:`~repro.resilience.checkpoint.atomic_write_text`), holding the
normalized plan payload, the lifecycle record, and — once terminal — the
rendered result.  A restarted server reloads the journal, re-enqueues
every ``queued``/``running`` job, and lets the per-fingerprint
:class:`~repro.resilience.checkpoint.SweepCheckpoint` replay the cells
the killed run had already completed, so the job finishes bit-identically.

Dedup semantics (:meth:`JobManager.submit`): jobs are content-addressed
by the plan fingerprint.  A submission whose fingerprint matches a live
(``queued``/``running``) or successfully finished (``ok``) job joins
that job — one execution, every submitter reads the same payload —
with the join counted in ``submissions``.  ``failed`` and ``partial``
jobs do *not* capture new submissions (a retry is wanted), and
``fresh: true`` bypasses dedup entirely.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.checkpoint import atomic_write_text
from repro.service.queue import JobQueue
from repro.service.wire import JOB_STATES, TERMINAL_STATES, Submission

__all__ = ["Job", "JobManager", "JobStore", "JOURNAL_FORMAT"]

JOURNAL_FORMAT = "repro-service-job"
JOURNAL_VERSION = 1


@dataclass
class Job:
    """One submitted job and its lifecycle record."""

    job_id: str
    payload: dict
    fingerprint: str
    kind: str
    priority: int = 0
    tag: str | None = None
    state: str = "queued"
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    submissions: int = 1
    run_seq: int | None = None
    error: dict | None = None
    result: dict | None = None
    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, event: str, **details) -> dict:
        entry = {
            "seq": len(self.events),
            "event": event,
            "time": time.time(),
            **details,
        }
        self.events.append(entry)
        return entry

    def view(self) -> dict:
        """The JSON job view (``GET /jobs/<id>``) — everything except
        the payload and the result body."""
        return {
            "id": self.job_id,
            "state": self.state,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "tag": self.tag,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "submissions": self.submissions,
            "run_seq": self.run_seq,
            "error": self.error,
            "events": list(self.events),
        }


class JobStore:
    """The on-disk job journal: one atomic JSON file per job."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def save(self, job: Job) -> None:
        record = {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_VERSION,
            "job": {
                **job.view(),
                "payload": job.payload,
                "result": job.result,
            },
        }
        atomic_write_text(
            self.path(job.job_id),
            json.dumps(record, sort_keys=True) + "\n",
        )

    def load_all(self) -> list[Job]:
        """Every parseable journal entry, oldest first.  Unreadable or
        foreign files are skipped — a half-written journal must never
        stop the server from coming back up."""
        if not self.directory.is_dir():
            return []
        jobs = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                record = json.loads(path.read_text())
                if record.get("format") != JOURNAL_FORMAT:
                    continue
                data = record["job"]
                if data.get("state") not in JOB_STATES:
                    continue
                jobs.append(
                    Job(
                        job_id=data["id"],
                        payload=data["payload"],
                        fingerprint=data["fingerprint"],
                        kind=data["kind"],
                        priority=data.get("priority", 0),
                        tag=data.get("tag"),
                        state=data["state"],
                        created=data.get("created", 0.0),
                        started=data.get("started"),
                        finished=data.get("finished"),
                        submissions=data.get("submissions", 1),
                        run_seq=data.get("run_seq"),
                        error=data.get("error"),
                        result=data.get("result"),
                        events=list(data.get("events", ())),
                    )
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
        jobs.sort(key=lambda job: (job.created, job.job_id))
        return jobs


class JobManager:
    """Thread-safe registry: submissions in, dedup, state transitions.

    One lock guards the registry and every job mutation; one condition
    wakes pollers/streamers on any job change.  All execution-side
    mutation happens on the server's single executor thread — the
    manager only sequences it against HTTP reader threads.
    """

    def __init__(self, store: JobStore, queue: JobQueue) -> None:
        self.store = store
        self.queue = queue
        self._lock = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._run_counter = 0

    # -- read side --------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(),
                key=lambda job: (job.created, job.job_id),
            )

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._lock.wait(timeout=remaining)

    def wait_for_event(
        self, job_id: str, seen: int, timeout: float | None = None
    ) -> Job | None:
        """Block until the job has more than ``seen`` events or turned
        terminal (event streaming's pump)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal or len(job.events) > seen:
                    return job
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._lock.wait(timeout=remaining)

    # -- write side -------------------------------------------------------

    def submit(self, submission: Submission) -> tuple[Job, bool]:
        """Register a submission; returns ``(job, created)``.

        Raises:
            repro.service.queue.QueueFullError: Backpressure — nothing
                was registered.
        """
        with self._lock:
            if not submission.fresh:
                existing_id = self._by_fingerprint.get(
                    submission.fingerprint
                )
                existing = (
                    self._jobs.get(existing_id) if existing_id else None
                )
                if existing is not None and existing.state in (
                    "queued", "running", "ok",
                ):
                    existing.submissions += 1
                    existing.add_event(
                        "joined", submissions=existing.submissions
                    )
                    self.store.save(existing)
                    self._lock.notify_all()
                    return existing, False
            job = Job(
                job_id="j" + uuid.uuid4().hex[:12],
                payload=submission.payload,
                fingerprint=submission.fingerprint,
                kind=submission.plan.name,
                priority=submission.priority,
                tag=submission.tag,
                created=time.time(),
            )
            # Reserve queue capacity first: on QueueFullError nothing
            # must be registered or journaled.
            self.queue.push(job.job_id, priority=job.priority)
            job.add_event("queued", priority=job.priority)
            self._jobs[job.job_id] = job
            self._by_fingerprint[submission.fingerprint] = job.job_id
            self.store.save(job)
            self._lock.notify_all()
            return job, True

    def restore(self, jobs: list[Job]) -> int:
        """Adopt journaled jobs on startup; re-enqueue the unfinished.

        Returns the number of re-enqueued jobs.
        """
        requeued = 0
        with self._lock:
            for job in jobs:
                self._jobs[job.job_id] = job
                current = self._by_fingerprint.get(job.fingerprint)
                if current is None or job.created >= self._jobs[
                    current
                ].created:
                    self._by_fingerprint[job.fingerprint] = job.job_id
                if job.state in ("queued", "running"):
                    job.state = "queued"
                    job.started = None
                    job.run_seq = None
                    job.add_event("requeued")
                    self.store.save(job)
                    self.queue.push(job.job_id, priority=job.priority)
                    requeued += 1
            self._lock.notify_all()
        return requeued

    def mark_running(self, job: Job) -> None:
        with self._lock:
            self._run_counter += 1
            job.state = "running"
            job.started = time.time()
            job.run_seq = self._run_counter
            job.add_event("running", run_seq=job.run_seq)
            self.store.save(job)
            self._lock.notify_all()

    def add_event(self, job: Job, event: str, **details) -> None:
        """Record a mid-run event (not journaled — events between state
        transitions are advisory progress, the next transition persists
        them)."""
        with self._lock:
            job.add_event(event, **details)
            self._lock.notify_all()

    def finish(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: dict | None = None,
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            job.state = state
            job.finished = time.time()
            job.result = result
            job.error = error
            job.add_event("finished", state=state)
            self.store.save(job)
            self._lock.notify_all()

    def stats(self) -> dict:
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "jobs": len(self._jobs),
                "by_state": by_state,
                "queued": len(self.queue),
                "executed_runs": self._run_counter,
            }
