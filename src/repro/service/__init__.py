"""The optimization service: a long-running HTTP job server.

``repro serve`` turns the one-shot experiment CLI into a service: plans
travel over HTTP as their :func:`~repro.experiments.plan.plan_to_dict`
payloads, dedup by content fingerprint, queue with priorities under
bounded backpressure, and execute on one warm runtime — a shared
persistent :class:`~repro.runtime.cache.EvaluationCache`, one shared
:class:`~repro.runtime.pool.WorkerPool`, and per-fingerprint
:class:`~repro.resilience.checkpoint.SweepCheckpoint` durability so a
restarted server resumes in-flight jobs bit-identically.

Layering:

* :mod:`repro.service.wire` — submission parsing / structured errors;
* :mod:`repro.service.queue` — the bounded priority queue;
* :mod:`repro.service.jobs` — durable job records, dedup registry;
* :mod:`repro.service.server` — the HTTP server + executor thread;
* :mod:`repro.service.client` — the stdlib client (``repro submit``);
* :mod:`repro.service.plans` — CLI-knob -> plan builders.

See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager, JobStore
from repro.service.plans import SUBMITTABLE_KINDS, build_plan
from repro.service.queue import JobQueue, QueueFullError
from repro.service.server import OptimizationService, ServiceConfig
from repro.service.wire import (
    JOB_STATES,
    TERMINAL_STATES,
    Submission,
    error_body,
    parse_submission,
)

__all__ = [
    "JOB_STATES",
    "SUBMITTABLE_KINDS",
    "TERMINAL_STATES",
    "Job",
    "JobManager",
    "JobQueue",
    "JobStore",
    "OptimizationService",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Submission",
    "build_plan",
    "error_body",
    "parse_submission",
]
