"""The optimization service: a long-running HTTP job server.

:class:`OptimizationService` fronts the existing plan/runtime machinery
with a stdlib-only :class:`~http.server.ThreadingHTTPServer`:

* HTTP threads only parse, validate, enqueue, and read — every plan
  executes on **one dedicated executor thread**, because the
  instrumentation and policy contexts
  (:func:`~repro.runtime.instrumentation.use_instrumentation`,
  :func:`~repro.runtime.supervision.use_policy`) are process-global;
* all jobs share one persistent on-disk
  :class:`~repro.runtime.cache.EvaluationCache` and one warm
  :class:`~repro.runtime.pool.WorkerPool` (engines compiled once at
  first use, reused across jobs via ``PlanRunner(pool=...)``);
* every job runs under a per-fingerprint
  :class:`~repro.resilience.checkpoint.SweepCheckpoint`, so a server
  killed mid-sweep resumes the job bit-identically after restart (the
  job journal re-enqueues it, the checkpoint replays finished cells);
* a bounded priority queue applies backpressure: a full queue answers
  ``429`` with ``Retry-After`` instead of accepting unbounded work.

Endpoints (all JSON)::

    POST /jobs              submit (201 created / 200 joined / 400 / 429)
    GET  /jobs              every job view
    GET  /jobs/<id>         one job view (404 unknown)
    GET  /jobs/<id>/result  200 terminal result / 202 still pending
    GET  /jobs/<id>/events  chunked JSON-lines stream: lifecycle events,
                            live plan counters, final result
    GET  /healthz           liveness
    GET  /stats             queue/job/cache statistics

See ``docs/service.md`` for the full API reference.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlparse

from repro.experiments.plan import plan_from_dict
from repro.experiments.render import render_report
from repro.experiments.reporting import plan_block
from repro.experiments.runner import PlanRunner
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.validation import ValidationError
from repro.runtime.cache import EvaluationCache
from repro.runtime.instrumentation import (
    Instrumentation,
    use_instrumentation,
)
from repro.runtime.pool import (
    PoolUnavailable,
    WorkerPool,
    default_warmup,
)
from repro.runtime.status import STATUS_OK, run_status
from repro.runtime.supervision import RunPolicy
from repro.service.jobs import Job, JobManager, JobStore
from repro.service.queue import JobQueue, QueueFullError
from repro.service.wire import (
    MAX_BODY_BYTES,
    error_body,
    parse_submission,
)

__all__ = ["OptimizationService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Everything a service instance is configured with.

    Attributes:
        host: Bind address.
        port: Bind port; ``0`` binds an ephemeral port (read it back
            from :attr:`OptimizationService.port` — the test suites'
            collision-free protocol).
        state_dir: Root of the service's durable state: ``jobs/`` (the
            journal), ``checkpoints/`` (per-fingerprint resume files),
            and — unless ``cache_dir`` overrides it — ``cache/``.
        jobs: Worker processes per plan run (1 = serial in-thread).
        sweep_backend: Fan-out backend for plan cells.
        cache_dir: Evaluation cache store shared by every job.
        queue_limit: Bounded queue capacity (0 = unbounded).
        retry_after: The ``Retry-After`` hint on a 429.
        policy: ``RunPolicy.parse`` spec applied to every job, or
            ``None`` for the default policy.
        verify: Independently re-verify every job's results.
        poll_interval: Event-stream heartbeat period in seconds.
    """

    host: str = "127.0.0.1"
    port: int = 0
    state_dir: str | Path = Path("results") / "service"
    jobs: int = 1
    sweep_backend: str = "auto"
    cache_dir: str | Path | None = None
    queue_limit: int = 256
    retry_after: float = 1.0
    policy: str | None = None
    verify: bool = False
    poll_interval: float = 0.2


class OptimizationService:
    """The job server.  ``start()`` it, talk HTTP, ``stop()`` it."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        state_dir = Path(self.config.state_dir)
        cache_dir = (
            Path(self.config.cache_dir)
            if self.config.cache_dir is not None
            else state_dir / "cache"
        )
        self.cache = EvaluationCache(store_dir=cache_dir)
        self.checkpoint_dir = state_dir / "checkpoints"
        self.queue = JobQueue(
            limit=self.config.queue_limit,
            retry_after=self.config.retry_after,
        )
        self.manager = JobManager(
            JobStore(state_dir / "jobs"), self.queue
        )
        self.policy = (
            RunPolicy.parse(self.config.policy)
            if self.config.policy
            else RunPolicy()
        )
        self._pool: WorkerPool | None = None
        self._pool_failed = False
        self._stop = threading.Event()
        #: Test seam: clearing the gate parks the executor *before* it
        #: pops, so queued jobs accumulate and drain strictly by
        #: priority on resume.
        self._gate = threading.Event()
        self._gate.set()
        self._parked = threading.Event()
        self._live_lock = threading.Lock()
        self._live: tuple[str, Instrumentation] | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._threads: list[threading.Thread] = []

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Restore the journal, bind the port, start serving."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        self.manager.restore(self.manager.store.load_all())
        service = self

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._httpd = _Server(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.service = self  # type: ignore[attr-defined]
        executor = threading.Thread(
            target=service._executor_loop,
            name="service-executor",
            daemon=True,
        )
        listener = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-http",
            daemon=True,
        )
        self._threads = [executor, listener]
        executor.start()
        listener.start()

    def stop(self) -> None:
        """Drain nothing, stop everything: the queue wakes the executor,
        the pool and the HTTP listener shut down."""
        self._stop.set()
        self._gate.set()
        self.queue.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads = []
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def pause_executor(self, timeout: float = 10.0) -> None:
        """Park the executor *before* its next pop and wait until it is
        actually parked — after this returns, submitted jobs accumulate
        in the queue untouched (the priority-drain test seam)."""
        self._gate.clear()
        self._parked.wait(timeout=timeout)

    def resume_executor(self) -> None:
        self._gate.set()

    # -- execution --------------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            if not self._gate.is_set():
                self._parked.set()
                self._gate.wait(timeout=0.2)
                continue
            self._parked.clear()
            job_id = self.queue.pop(timeout=0.2)
            if job_id is None:
                continue
            job = self.manager.get(job_id)
            if job is None or job.state != "queued":
                continue
            self._execute(job)

    def _shared_pool(self) -> WorkerPool | None:
        """The one warm worker pool every job shares (created on first
        parallel job, engines pre-compiled by ``default_warmup``)."""
        if self.config.jobs <= 1 or self._pool_failed:
            return None
        if self._pool is None:
            try:
                self._pool = WorkerPool(
                    self.config.jobs, warmup=default_warmup
                )
            except PoolUnavailable:
                self._pool_failed = True
                return None
        return self._pool

    def _execute(self, job: Job) -> None:
        self.manager.mark_running(job)
        instrumentation = Instrumentation()
        with self._live_lock:
            self._live = (job.job_id, instrumentation)
        try:
            with use_instrumentation(instrumentation):
                plan = plan_from_dict(job.payload)
                checkpoint = SweepCheckpoint(
                    self.checkpoint_dir / f"{job.fingerprint}.json"
                )
                if checkpoint.resumed_from_disk:
                    self.manager.add_event(
                        job, "resumed", cells=len(checkpoint)
                    )
                runner = PlanRunner(
                    jobs=self.config.jobs,
                    cache=self.cache,
                    checkpoint=checkpoint,
                    sweep_backend=self.config.sweep_backend,
                    verify=self.config.verify,
                    policy=self.policy,
                    pool=self._shared_pool(),
                )
                run = runner.run(plan)
        except Exception as exc:  # any failure is the job's, not ours
            message = str(exc)
            self.manager.finish(
                job,
                "failed",
                error={
                    "type": type(exc).__name__,
                    "message": (
                        message[:497] + "..."
                        if len(message) > 500
                        else message
                    ),
                },
            )
            return
        finally:
            with self._live_lock:
                self._live = None
        status = run_status(run)
        result = {
            "status": status,
            "fingerprint": run.fingerprint,
            "rendered": (
                render_report(job.kind, run.report)
                if status == STATUS_OK
                else None
            ),
            "plan": plan_block(run, instrumentation.counters),
            "wall_seconds": run.wall_seconds,
        }
        self.manager.finish(job, status, result=result)

    def live_counters(self, job_id: str) -> dict | None:
        """Plan counters of the currently executing job (streaming)."""
        with self._live_lock:
            live = self._live
        if live is None or live[0] != job_id:
            return None
        counters = dict(live[1].counters)
        return {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("plan.")
        }

    def stats(self) -> dict:
        return {
            **self.manager.stats(),
            "cache": self.cache.stats(),
            "pool_workers": (
                self.config.jobs if self._pool is not None else 0
            ),
        }


class _Handler(BaseHTTPRequestHandler):
    """Route table of the service.  One instance per request; the
    service object hangs off the (threading) server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    @property
    def service(self) -> OptimizationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # request logging is the client's business, not stderr's

    # -- plumbing ---------------------------------------------------------

    def _send_json(
        self, status: int, body: dict, headers: dict | None = None
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(
        self, status: int, exc: BaseException,
        headers: dict | None = None,
    ) -> None:
        self._send_json(status, error_body(exc), headers=headers)

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            size = int(length)
        except (TypeError, ValueError):
            raise ValidationError(
                "request requires a Content-Length header", path="$"
            ) from None
        if size < 0 or size > 2 * MAX_BODY_BYTES:
            raise ValidationError(
                f"unreasonable Content-Length {size}", path="$"
            )
        return self.rfile.read(size)

    def _drain_body(self) -> None:
        """Consume an ignored request body so the next request on this
        keep-alive connection starts at a request line, not mid-body."""
        try:
            size = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return
        if 0 < size <= 2 * MAX_BODY_BYTES:
            self.rfile.read(size)

    def _write_chunk(self, line: dict) -> None:
        data = json.dumps(line, sort_keys=True).encode("utf-8") + b"\n"
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    # -- routes -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib contract
        path = urlparse(self.path).path
        try:
            if path != "/jobs":
                self._drain_body()
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": path}}
                )
                return
            submission = parse_submission(self._read_body())
            try:
                job, created = self.service.manager.submit(submission)
            except QueueFullError as exc:
                self._send_error_json(
                    429, exc,
                    headers={
                        "Retry-After": str(
                            max(1, round(exc.retry_after))
                        )
                    },
                )
                return
            self._send_json(
                201 if created else 200,
                {
                    "job": job.view(),
                    "created": created,
                    "fingerprint": job.fingerprint,
                },
            )
        except ValidationError as exc:
            self._send_error_json(400, exc)
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # must never take the server down
            self._send_error_json(500, exc)

    def do_GET(self) -> None:  # noqa: N802 - stdlib contract
        path = urlparse(self.path).path
        self._drain_body()
        try:
            if path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/jobs":
                self._send_json(
                    200,
                    {
                        "jobs": [
                            job.view()
                            for job in self.service.manager.jobs()
                        ]
                    },
                )
            elif path.startswith("/jobs/"):
                self._job_route(path[len("/jobs/"):])
            else:
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": path}}
                )
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # must never take the server down
            self._send_error_json(500, exc)

    def _job_route(self, tail: str) -> None:
        job_id, _, verb = tail.partition("/")
        job = self.service.manager.get(job_id)
        if job is None:
            self._send_json(
                404,
                {
                    "error": {
                        "type": "UnknownJob",
                        "message": f"no job {job_id!r}",
                    }
                },
            )
        elif verb == "":
            self._send_json(200, {"job": job.view()})
        elif verb == "result":
            if job.terminal:
                self._send_json(
                    200, {"job": job.view(), "result": job.result}
                )
            else:
                self._send_json(202, {"job": job.view()})
        elif verb == "events":
            self._stream_events(job)
        else:
            self._send_json(
                404,
                {
                    "error": {
                        "type": "NotFound",
                        "message": f"/jobs/<id>/{verb}",
                    }
                },
            )

    def _stream_events(self, job: Job) -> None:
        """Chunked JSON-lines: every lifecycle event as it happens,
        heartbeats with live plan counters while running, and the full
        result as the final line."""
        service = self.service
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        seen = 0
        while True:
            current = service.manager.wait_for_event(
                job.job_id, seen, timeout=service.config.poll_interval
            )
            if current is None:
                break
            events = list(current.events)
            for event in events[seen:]:
                self._write_chunk(
                    {
                        "job": current.job_id,
                        "state": current.state,
                        "event": event,
                    }
                )
            new = len(events) > seen
            seen = len(events)
            if current.terminal:
                self._write_chunk(
                    {
                        "job": current.job_id,
                        "state": current.state,
                        "result": current.result,
                        "error": current.error,
                    }
                )
                break
            if not new and current.state == "running":
                counters = service.live_counters(current.job_id)
                if counters is not None:
                    self._write_chunk(
                        {
                            "job": current.job_id,
                            "state": current.state,
                            "counters": counters,
                        }
                    )
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()
