"""Bounded priority queue feeding the service executor.

A tiny heap-backed queue with the three properties the job server
needs and nothing else:

* **priority order** — larger ``priority`` drains first, ties drain in
  submission (FIFO) order via a monotonic sequence number;
* **bounded backpressure** — ``push`` on a full queue raises
  :class:`QueueFullError` immediately (the HTTP layer turns it into
  ``429`` + ``Retry-After``) instead of blocking an HTTP thread;
* **blocking pop with shutdown** — the single executor thread parks in
  :meth:`pop` under a condition variable; :meth:`close` wakes it with
  ``None``.
"""

from __future__ import annotations

import heapq
import itertools
import threading

__all__ = ["JobQueue", "QueueFullError"]


class QueueFullError(Exception):
    """The queue is at capacity; retry after the backlog drains.

    Attributes:
        retry_after: Suggested client wait in seconds.
    """

    def __init__(self, limit: int, retry_after: float) -> None:
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({limit} queued); retry in "
            f"{retry_after:g}s"
        )


class JobQueue:
    """Bounded max-priority queue of job ids.

    Args:
        limit: Maximum queued entries (0 or negative = unbounded).
        retry_after: The backoff hint a :class:`QueueFullError` carries.
    """

    def __init__(self, limit: int = 256, retry_after: float = 1.0) -> None:
        self.limit = limit
        self.retry_after = retry_after
        self._heap: list[tuple[int, int, str]] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, job_id: str, priority: int = 0) -> None:
        """Enqueue ``job_id``.

        Raises:
            QueueFullError: At capacity.
            RuntimeError: After :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if 0 < self.limit <= len(self._heap):
                raise QueueFullError(self.limit, self.retry_after)
            heapq.heappush(
                self._heap, (-priority, next(self._seq), job_id)
            )
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> str | None:
        """Dequeue the highest-priority job id, blocking up to
        ``timeout`` seconds; ``None`` on timeout or close."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def snapshot(self) -> list[str]:
        """Queued job ids in drain order (for ``GET /stats``)."""
        with self._cond:
            return [job_id for _, _, job_id in sorted(self._heap)]

    def close(self) -> None:
        """Reject further pushes and wake every parked :meth:`pop`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
