"""Wire protocol of the optimization service.

A *submission* is one JSON object POSTed to ``/jobs``::

    {
      "plan":     <plan_to_dict(...) payload>,   # required
      "priority": 0,        # optional int, -100..100, larger = sooner
      "fresh":    false,    # optional: bypass dedup, force re-execution
      "tag":      "nightly" # optional client label, <= 200 chars
    }

:func:`parse_submission` turns raw bytes into a validated
:class:`Submission` or raises
:class:`~repro.resilience.validation.ValidationError` whose ``path``
attribute is the JSON pointer of the offending member (``$.plan.params``
and friends) — the server maps *any* :class:`ValidationError` to a
structured ``400`` body via :func:`error_body`, so malformed input can
never take the process down.  The plan inside a submission is normalized
through :func:`~repro.experiments.plan.plan_from_dict` /
:func:`~repro.experiments.plan.plan_to_dict`, which verifies the content
fingerprint — the job's dedup identity — on the way in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.experiments.plan import (
    ExperimentPlan,
    plan_from_dict,
    plan_to_dict,
)
from repro.resilience.validation import ValidationError

__all__ = [
    "JOB_STATES",
    "MAX_BODY_BYTES",
    "PRIORITY_MAX",
    "PRIORITY_MIN",
    "TERMINAL_STATES",
    "Submission",
    "error_body",
    "parse_submission",
]

#: Job lifecycle states.  The terminal three are exactly the unified run
#: vocabulary of :mod:`repro.runtime.status`.
JOB_STATES = ("queued", "running", "ok", "partial", "failed")
TERMINAL_STATES = ("ok", "partial", "failed")

PRIORITY_MIN = -100
PRIORITY_MAX = 100

#: Submissions larger than this are rejected up front (a plan carrying a
#: benchmark SOC as ITC'02 text is tens of kilobytes; megabytes means a
#: runaway or hostile client).
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class Submission:
    """A validated job submission.

    Attributes:
        plan: The reconstructed experiment plan.
        payload: The *normalized* ``plan_to_dict`` form (what the job
            journal stores and a resumed server re-parses).
        fingerprint: The plan's content hash — the dedup identity.
        priority: Queue priority; larger drains sooner, ties FIFO.
        fresh: Bypass result dedup and force a new execution.
        tag: Optional client-supplied label echoed in job views.
    """

    plan: ExperimentPlan
    payload: dict
    fingerprint: str
    priority: int = 0
    fresh: bool = False
    tag: str | None = None


def _json_object(body, what: str) -> dict:
    """Decode ``body`` (bytes/str/dict) into a JSON object or raise."""
    if isinstance(body, dict):
        return body
    if isinstance(body, bytes):
        if len(body) > MAX_BODY_BYTES:
            raise ValidationError(
                f"{what} exceeds {MAX_BODY_BYTES} bytes", path="$"
            )
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(
                f"{what} is not valid UTF-8: {exc}", path="$"
            ) from exc
    if not isinstance(body, str):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(body).__name__}",
            path="$",
        )
    try:
        data = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"{what} is not valid JSON: {exc}", path="$"
        ) from exc
    if not isinstance(data, dict):
        raise ValidationError(
            f"{what} must be a JSON object, got "
            f"{type(data).__name__}",
            path="$",
        )
    return data


def parse_submission(body) -> Submission:
    """Validate one ``POST /jobs`` body.

    Raises:
        ValidationError: On any malformed member; ``path`` names the
            offending JSON pointer.
    """
    data = _json_object(body, what="job submission")
    allowed = {"plan", "priority", "fresh", "tag"}
    for key in data:
        if key not in allowed:
            raise ValidationError(
                f"unknown submission member {key!r}; allowed: "
                f"{', '.join(sorted(allowed))}",
                path=f"$.{key}",
            )

    plan_data = data.get("plan")
    if not isinstance(plan_data, dict):
        raise ValidationError(
            "submission must carry a 'plan' object "
            "(the plan_to_dict payload)",
            path="$.plan",
        )
    try:
        plan = plan_from_dict(plan_data)
    except ValidationError as exc:
        raise ValidationError(exc.bare_message, path="$.plan") from exc
    except Exception as exc:
        raise ValidationError(
            f"invalid plan payload: {exc}", path="$.plan"
        ) from exc
    try:
        # Expanding proves the parameters actually produce a valid cell
        # graph — a submission that cannot expand would otherwise fail
        # deep inside the executor instead of at the front door.
        plan.expand()
    except Exception as exc:
        raise ValidationError(
            f"plan does not expand: {exc}", path="$.plan.params"
        ) from exc

    priority = data.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ValidationError(
            f"priority must be an integer, got {type(priority).__name__}",
            path="$.priority",
        )
    if not PRIORITY_MIN <= priority <= PRIORITY_MAX:
        raise ValidationError(
            f"priority {priority} outside [{PRIORITY_MIN}, {PRIORITY_MAX}]",
            path="$.priority",
        )

    fresh = data.get("fresh", False)
    if not isinstance(fresh, bool):
        raise ValidationError(
            f"fresh must be a boolean, got {type(fresh).__name__}",
            path="$.fresh",
        )

    tag = data.get("tag")
    if tag is not None:
        if not isinstance(tag, str):
            raise ValidationError(
                f"tag must be a string, got {type(tag).__name__}",
                path="$.tag",
            )
        if len(tag) > 200:
            raise ValidationError(
                f"tag is {len(tag)} characters long (max 200)",
                path="$.tag",
            )

    return Submission(
        plan=plan,
        payload=plan_to_dict(plan),
        fingerprint=plan.fingerprint(),
        priority=priority,
        fresh=fresh,
        tag=tag,
    )


def error_body(exc: BaseException) -> dict:
    """The structured JSON error body for an exception."""
    error: dict = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ValidationError):
        error["detail"] = exc.bare_message
        if exc.path is not None:
            error["path"] = exc.path
        if exc.line is not None:
            error["line"] = exc.line
        if exc.field is not None:
            error["field"] = exc.field
    return {"error": error}
