"""Command-line interface: ``repro-soc`` (or ``python -m repro``).

Subcommands:

* ``list`` — shipped benchmark SOCs.
* ``describe SOC`` — core table of a benchmark.
* ``compact SOC`` — run two-dimensional SI compaction and print statistics.
* ``optimize SOC`` — optimize the test architecture and print the schedule.
* ``table SOC`` — regenerate a Table 2/3 style experiment.
* ``bounds SOC`` — lower bounds and the optimality gap of the heuristic.
* ``overhead SOC`` — DFT area cost of SI-capable wrappers.
* ``svg SOC`` — export the optimized schedule as an SVG figure.
* ``synth NAME`` — generate a synthetic ITC'02-style SOC.
* ``evaluate SOC`` — price a saved architecture against a test set.
* ``pareto SOC`` — pin-budget trade-off curve with knee detection.
* ``scaling`` — optimizer scaling study on synthesized SOCs.
* ``volume SOC`` — test-data-volume study of 2-D compaction.
* ``coverage SOC`` — MA fault coverage of a random pattern set.
* ``compare SOC`` — head-to-head optimizer comparison.
* ``multisite SOC`` — multi-site throughput study.
* ``sensitivity SOC`` — generator-knob sensitivity study.
* ``stability SOC`` — seed-stability of the table metrics.
* ``cache verify|gc`` — integrity-check / prune the on-disk cache store.
* ``serve`` — run the optimization service (async HTTP job server).
* ``submit`` — submit an experiment to a running service and wait.
* ``jobs`` — list, inspect, or stream jobs on a running service.

Exit codes are uniform across commands (``repro.runtime.status``):
0 = ok, 1 = failed, 3 = partial (``--allow-partial`` salvage), 2 =
argparse usage error, 87 = injected fault abort (test harness only).

Every experiment command (``pareto``, ``scaling``, ``table``,
``volume``, ``compare``, ``multisite``, ``sensitivity``, ``stability``)
runs through the declarative plan layer
(:mod:`repro.experiments.plan` / :class:`~repro.experiments.runner.PlanRunner`)
and uniformly accepts ``--jobs``, ``--cache``, ``--sweep-backend``,
``--resume`` and ``--verify``, plus ``--profile`` for the unified JSON
run report (``docs/experiments.md``).  ``optimize`` and ``evaluate``
also accept ``--verify`` for the independent schedule post-condition
verifier (``docs/resilience.md``).

See ``docs/cli.md`` for worked examples of every command.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.compaction.horizontal import build_si_test_groups
from repro.compaction.vertical import BACKENDS
from repro.core.optimizer import optimize_tam
from repro.experiments.reporting import save_result
from repro.experiments.table_runner import (
    DEFAULT_GROUP_COUNTS,
    DEFAULT_WIDTHS,
)
from repro.sitest.generator import generate_random_patterns
from repro.soc.benchmarks import available_benchmarks, load_benchmark
from repro.soc.itc02 import parse_file
from repro.soc.model import Soc
from repro.tam.gantt import render_schedule


def _load_soc(name: str) -> Soc:
    """Load a shipped benchmark by name, or an ITC'02 file by path."""
    if name in available_benchmarks():
        return load_benchmark(name)
    return parse_file(name)


def _make_cache(args: argparse.Namespace):
    """Build the evaluation cache requested by ``--cache``, or ``None``."""
    store_dir = getattr(args, "cache", None)
    if store_dir is None:
        return None
    from repro.runtime import EvaluationCache

    return EvaluationCache(store_dir=store_dir)


#: Where ``--resume`` without a PATH puts its checkpoint files.
DEFAULT_CHECKPOINT_DIR = "results/checkpoints"


def _make_checkpoint(args: argparse.Namespace, plan):
    """Build the ``--resume`` checkpoint for ``plan``, or ``None``.

    Without an explicit PATH the file is derived from the plan's content
    fingerprint under :data:`DEFAULT_CHECKPOINT_DIR`, so resuming the
    same experiment finds the same checkpoint and a different experiment
    never aliases it.
    """
    resume = getattr(args, "resume", None)
    if resume is None:
        return None
    from pathlib import Path

    from repro.resilience.checkpoint import SweepCheckpoint

    if resume == "auto":
        tag = plan.fingerprint().split("-", 1)[1][:16]
        resume = Path(DEFAULT_CHECKPOINT_DIR) / f"{plan.name}-{tag}.json"
    checkpoint = SweepCheckpoint(resume)
    if checkpoint.resumed_from_disk:
        print(
            f"resuming from {checkpoint.path} "
            f"({len(checkpoint)} recorded cells)"
        )
    return checkpoint


def _runtime_arguments(args: argparse.Namespace) -> dict:
    """The uniform runtime-flag tail of a run report's arguments."""
    return {
        "jobs": args.jobs,
        "cache": args.cache,
        "sweep_backend": args.sweep_backend,
        "resume": args.resume,
        "verify": getattr(args, "verify", False),
        "policy": getattr(args, "policy", None),
        "allow_partial": getattr(args, "allow_partial", False),
    }


def _make_policy(args: argparse.Namespace):
    """Build the run policy from ``--policy``/``--allow-partial``, or
    ``None`` for the (behavior-identical) default policy."""
    spec = getattr(args, "policy", None)
    allow_partial = getattr(args, "allow_partial", False)
    if spec is None and not allow_partial:
        return None
    from repro.runtime.supervision import RunPolicy

    policy = RunPolicy.parse(spec) if spec else RunPolicy()
    if allow_partial:
        policy = policy.replace(allow_partial=True)
    return policy


def _render_partial(run) -> None:
    """The partial-run banner: what was salvaged, what was quarantined."""
    print(
        f"PARTIAL RUN: {len(run.poisoned)} of {run.cells} cells "
        "quarantined; no report assembled"
    )
    for cell_id, reason in sorted(run.poisoned.items()):
        print(f"  poisoned {cell_id}: {reason}")
    salvaged = run.executed + run.cached + run.resumed
    print(
        f"{salvaged} cells completed (checkpoint/cache keep them); "
        "re-run with --resume to retry the quarantined cells"
    )


def _run_plan(args: argparse.Namespace, command: str, make_plan,
              arguments: dict, render) -> int:
    """Execute one experiment plan under the uniform runtime flags.

    ``make_plan`` is called inside the instrumentation context (so any
    parent-side preparation it does — e.g. building SI groups — is
    counted), then the plan runs through :class:`PlanRunner` with the
    command's ``--jobs/--cache/--sweep-backend/--resume/--verify``
    settings and ``render(run)`` prints the command's output.
    ``--profile`` then emits the unified run report
    (:func:`repro.experiments.reporting.experiment_report`).

    Returns the uniform exit code for the run's status
    (:mod:`repro.runtime.status`): 0 ok, 3 partial.
    """
    from repro.experiments.runner import PlanRunner
    from repro.runtime import Instrumentation, use_instrumentation
    from repro.runtime.status import exit_code, run_status

    cache = _make_cache(args)
    instrumentation = Instrumentation()
    start = time.perf_counter()
    with use_instrumentation(instrumentation):
        plan = make_plan()
        checkpoint = _make_checkpoint(args, plan)
        runner = PlanRunner(
            jobs=args.jobs,
            cache=cache,
            checkpoint=checkpoint,
            sweep_backend=args.sweep_backend,
            verify=getattr(args, "verify", False),
            policy=_make_policy(args),
        )
        run = runner.run(plan)
    if run.status == "partial":
        _render_partial(run)
    else:
        render(run)
    destination = getattr(args, "profile", None)
    if destination is not None:
        from repro.experiments.reporting import experiment_report

        report = experiment_report(
            command,
            arguments,
            run,
            wall_seconds=time.perf_counter() - start,
            instrumentation=instrumentation,
        )
        if destination == "-":
            print()
            print(report.summary())
        else:
            report.save(destination)
            print(f"run report written to {destination}")
    return exit_code(run_status(run))


def _plan_renderer(kind: str):
    """The shared per-kind report renderer
    (:func:`repro.experiments.render.render_report`) as a ``render``
    callback for :func:`_run_plan` — the same registry the service uses,
    so CLI output and service job results are byte-identical."""
    from repro.experiments.render import render_report

    return lambda run: print(render_report(kind, run.report))


def _add_verify_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify", action="store_true",
        help="independently re-verify the produced schedule (width "
        "budget, full core/group coverage, no rail overlap, recomputed "
        "T_soc) and fail on any violation",
    )


def _verify_or_fail(soc, architecture, evaluation, groups,
                    w_max=None) -> int:
    """Run the post-condition verifier; print the verdict, return an
    exit code."""
    from repro.resilience.verify import verify_schedule

    violations = verify_schedule(
        soc, architecture, evaluation, groups, w_max=w_max
    )
    if violations:
        print()
        print("schedule verification FAILED:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print()
    print("schedule verification passed")
    return 0


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compaction-backend", choices=BACKENDS, default="auto",
        help="vertical compaction implementation: the plain reference, the "
        "packed-bitset kernel, or auto-select by pattern count (results "
        "are identical either way)",
    )


def _add_sweep_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.runtime.executor import SWEEP_BACKENDS

    parser.add_argument(
        "--sweep-backend", choices=SWEEP_BACKENDS, default="auto",
        help="sweep fan-out machinery: the classic one-shot process pool, "
        "the persistent work-stealing worker pool, or auto-select "
        "(results are bit-identical either way)",
    )


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform plan-runner flags every experiment command accepts:
    ``--jobs``, ``--cache``, ``--sweep-backend``, ``--resume``,
    ``--verify`` — plus ``--profile`` for the unified run report."""
    from repro.runtime.cache import DEFAULT_STORE_DIR

    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the plan cells (1 = serial; results "
        "are bit-identical either way)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=str(DEFAULT_STORE_DIR), default=None,
        metavar="DIR",
        help="memoize plan cells on disk, shared across experiments "
        f"(default directory: {DEFAULT_STORE_DIR})",
    )
    _add_sweep_backend_flag(parser)
    parser.add_argument(
        "--resume", nargs="?", const="auto", default=None, metavar="PATH",
        help="record every completed cell to a crash-safe checkpoint and "
        "replay recorded cells on the next run; without PATH the file "
        "is derived from the plan fingerprint under "
        f"{DEFAULT_CHECKPOINT_DIR}/",
    )
    _add_verify_flag(parser)
    parser.add_argument(
        "--policy", default=None, metavar="SPEC",
        help="run supervision policy, comma-separated key=value pairs "
        "(e.g. 'retries=4,backoff=0.5,timeout=120,breaker=0.5,"
        "allow-partial'); see docs/supervision.md for the schema",
    )
    parser.add_argument(
        "--allow-partial", action="store_true",
        help="quarantine cells that exhaust their retry budget (and "
        "their dependents) instead of aborting: the run completes with "
        "an explicit partial report and the checkpoint records the "
        "poisoned cells for a later --resume retry",
    )
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the unified JSON run report (plan fingerprint, "
        "backend, cell counts, counters, timers, cache statistics); "
        "without PATH, print a summary to stdout",
    )


def _add_optimizer_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.core.optimizer import OPTIMIZER_BACKENDS

    parser.add_argument(
        "--optimizer-backend", choices=OPTIMIZER_BACKENDS, default="auto",
        help="TAM optimizer engine: the reference Algorithm 2, the "
        "incremental kernel (packed states, bounds pruning, optional C "
        "move scanner), or auto-select (results are bit-identical "
        "either way)",
    )


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_benchmarks():
        soc = load_benchmark(name)
        print(
            f"{name:<10} {len(soc):>3} cores  "
            f"{soc.total_terminals:>6} terminals  "
            f"{soc.total_scan_cells:>7} scan cells"
        )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    print(_load_soc(args.soc).describe())
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    soc = _load_soc(args.soc)
    patterns = generate_random_patterns(soc, args.patterns, seed=args.seed)
    grouping = build_si_test_groups(soc, patterns, parts=args.parts,
                                    seed=args.seed,
                                    backend=args.compaction_backend,
                                    jobs=args.jobs)
    print(
        f"{len(patterns)} patterns -> "
        f"{grouping.total_compacted_patterns} compacted in "
        f"{len(grouping.groups)} groups "
        f"({grouping.cut_patterns} originals in the residual group)"
    )
    for group, compaction in zip(grouping.groups, grouping.compactions):
        kind = "residual" if group.is_residual else f"part over {len(group.cores)} cores"
        print(
            f"  group {group.group_id}: {kind}, "
            f"{compaction.original_count} -> {group.patterns} patterns "
            f"(ratio {compaction.ratio:.1f}x)"
        )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    soc = _load_soc(args.soc)
    groups = ()
    if args.patterns:
        patterns = generate_random_patterns(soc, args.patterns, seed=args.seed)
        grouping = build_si_test_groups(soc, patterns, parts=args.parts,
                                        seed=args.seed)
        groups = grouping.groups
    result = optimize_tam(
        soc, args.wmax, groups=groups, backend=args.optimizer_backend
    )
    evaluation = result.evaluation
    print(
        f"T_total = {evaluation.t_total} cc "
        f"(T_in = {evaluation.t_in}, T_si = {evaluation.t_si})"
    )
    for index, rail in enumerate(result.architecture.rails):
        cores = ", ".join(str(core_id) for core_id in rail.cores)
        print(f"  TAM{index}: width {rail.width:>2}, cores [{cores}]")
    print()
    print(render_schedule(soc, result.architecture, evaluation))
    if args.utilization:
        from repro.tam.report import format_utilization_report

        print()
        print(format_utilization_report(soc, result.architecture, evaluation))
    if args.save_arch:
        from repro.tam.serialize import save_architecture

        save_architecture(result.architecture, args.save_arch)
        print(f"\narchitecture written to {args.save_arch}")
    if args.verify:
        return _verify_or_fail(
            soc, result.architecture, evaluation, groups, w_max=args.wmax
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.optimizer import evaluate_architecture
    from repro.tam.serialize import load_architecture

    soc = _load_soc(args.soc)
    architecture = load_architecture(args.arch)
    groups = _si_groups_for(args, soc)
    evaluation = evaluate_architecture(
        soc, architecture, groups, backend=args.optimizer_backend
    )
    print(
        f"T_total = {evaluation.t_total} cc "
        f"(T_in = {evaluation.t_in}, T_si = {evaluation.t_si})"
    )
    print(render_schedule(soc, architecture, evaluation))
    if args.verify:
        return _verify_or_fail(soc, architecture, evaluation, groups)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.experiments.pareto import pareto_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "pareto",
        lambda: pareto_plan(
            soc, tuple(args.widths), groups=_si_groups_for(args, soc)
        ),
        {
            "soc": args.soc,
            "widths": list(args.widths),
            "patterns": args.patterns,
            "parts": args.parts,
            "seed": args.seed,
            **_runtime_arguments(args),
        },
        _plan_renderer("pareto"),
    )


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments.scaling import scaling_plan

    return _run_plan(
        args,
        "scaling",
        lambda: scaling_plan(
            tuple(args.cores),
            w_max=args.wmax,
            pattern_count=args.patterns,
            parts=args.parts,
            seed=args.seed,
        ),
        {
            "cores": list(args.cores),
            "wmax": args.wmax,
            "patterns": args.patterns,
            "parts": args.parts,
            "seed": args.seed,
            **_runtime_arguments(args),
        },
        _plan_renderer("scaling"),
    )


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.core.optimizer import resolve_optimizer_backend
    from repro.experiments.table_runner import (
        print_table_progress,
        table_plan,
    )

    resolve_optimizer_backend(args.optimizer_backend)  # fail fast
    soc = _load_soc(args.soc)

    def render(run) -> None:
        from repro.experiments.render import render_report

        result = run.report
        result.elapsed_seconds = run.wall_seconds
        if args.verbose:
            print_table_progress(result)
        print(render_report("table", result))
        print(f"(elapsed: {result.elapsed_seconds:.1f}s)")
        if args.json:
            save_result(result, args.json)
            print(f"JSON written to {args.json}")

    return _run_plan(
        args,
        "table",
        lambda: table_plan(
            soc,
            args.patterns,
            widths=tuple(args.widths),
            group_counts=tuple(args.parts),
            seed=args.seed,
            optimizer_backend=args.optimizer_backend,
        ),
        {
            "soc": args.soc,
            "patterns": args.patterns,
            "widths": list(args.widths),
            "parts": list(args.parts),
            "seed": args.seed,
            "optimizer_backend": args.optimizer_backend,
            **_runtime_arguments(args),
        },
        render,
    )


def _si_groups_for(args: argparse.Namespace, soc: Soc):
    if not args.patterns:
        return ()
    patterns = generate_random_patterns(soc, args.patterns, seed=args.seed)
    return build_si_test_groups(
        soc, patterns, parts=args.parts, seed=args.seed
    ).groups


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import bound_report

    soc = _load_soc(args.soc)
    groups = _si_groups_for(args, soc)
    report = bound_report(soc, args.wmax, groups)
    result = optimize_tam(soc, args.wmax, groups=groups)
    print(f"core floor:        {report.core_floor} cc")
    print(f"bandwidth bound:   {report.bandwidth_bound} cc")
    print(f"SI floor:          {report.si_floor} cc")
    print(f"T_total bound:     {report.t_total_bound} cc")
    print(f"achieved T_total:  {result.t_total} cc")
    print(f"optimality gap:    {report.gap(result.t_total):.1%}")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.wrapper.cells import format_overhead_report

    print(format_overhead_report(_load_soc(args.soc)))
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from repro.tam.svg import write_schedule_svg

    soc = _load_soc(args.soc)
    groups = _si_groups_for(args, soc)
    result = optimize_tam(soc, args.wmax, groups=groups)
    write_schedule_svg(soc, result.architecture, result.evaluation, args.out)
    print(f"wrote {args.out} (T_total = {result.t_total} cc)")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.soc.itc02 import dump_file
    from repro.soc.synth import synthesize_soc

    soc = synthesize_soc(args.name, args.cores, seed=args.seed)
    dump_file(soc, args.out)
    print(f"wrote {args.out}")
    print(soc.describe())
    return 0


def _cmd_volume(args: argparse.Namespace) -> int:
    from repro.experiments.compaction_study import volume_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "volume",
        lambda: volume_plan(
            soc,
            args.patterns,
            group_counts=tuple(args.parts),
            seed=args.seed,
            backend=args.compaction_backend,
        ),
        {
            "soc": args.soc,
            "patterns": args.patterns,
            "parts": list(args.parts),
            "seed": args.seed,
            "compaction_backend": args.compaction_backend,
            **_runtime_arguments(args),
        },
        _plan_renderer("volume"),
    )


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.sitest.simulator import coverage_curve, simulate
    from repro.sitest.topology import random_topology

    soc = _load_soc(args.soc)
    topology = random_topology(soc, fanouts_per_core=args.fanouts,
                               locality=args.locality, seed=args.seed)
    patterns = generate_random_patterns(soc, args.patterns, seed=args.seed)
    report = simulate(topology, patterns)
    print(
        f"{len(patterns)} random patterns: {report.coverage:.1%} MA "
        f"coverage ({len(report.detected)}/{report.total_faults} faults)"
    )
    checkpoints = tuple(
        max(1, args.patterns * step // 4) for step in range(1, 5)
    )
    for count, coverage in coverage_curve(topology, patterns, checkpoints):
        print(f"  after {count:>8} patterns: {coverage:>6.1%}")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.core.whatif import format_whatif_report, what_if

    soc = _load_soc(args.soc)
    groups = _si_groups_for(args, soc)
    result = optimize_tam(soc, args.wmax, groups=groups)
    print(format_whatif_report(what_if(soc, result.architecture, groups)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.compare import compare_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "compare",
        lambda: compare_plan(
            soc,
            args.wmax,
            groups=_si_groups_for(args, soc),
            annealing_steps=args.sa_steps,
        ),
        {
            "soc": args.soc,
            "wmax": args.wmax,
            "patterns": args.patterns,
            "parts": args.parts,
            "seed": args.seed,
            "sa_steps": args.sa_steps,
            **_runtime_arguments(args),
        },
        _plan_renderer("compare"),
    )


def _cmd_multisite(args: argparse.Namespace) -> int:
    from repro.experiments.multisite import multisite_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "multisite",
        lambda: multisite_plan(
            soc, args.channels, groups=_si_groups_for(args, soc)
        ),
        {
            "soc": args.soc,
            "channels": args.channels,
            "patterns": args.patterns,
            "parts": args.parts,
            "seed": args.seed,
            **_runtime_arguments(args),
        },
        _plan_renderer("multisite"),
    )


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import sensitivity_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "sensitivity",
        lambda: sensitivity_plan(
            soc, args.patterns, args.wmax, parts=args.parts, seed=args.seed
        ),
        {
            "soc": args.soc,
            "wmax": args.wmax,
            "patterns": args.patterns,
            "parts": args.parts,
            "seed": args.seed,
            **_runtime_arguments(args),
        },
        _plan_renderer("sensitivity"),
    )


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.experiments.stability import stability_plan

    soc = _load_soc(args.soc)
    return _run_plan(
        args,
        "stability",
        lambda: stability_plan(
            soc, args.patterns, args.wmax, seeds=tuple(args.seeds)
        ),
        {
            "soc": args.soc,
            "wmax": args.wmax,
            "patterns": args.patterns,
            "seeds": list(args.seeds),
            **_runtime_arguments(args),
        },
        _plan_renderer("stability"),
    )


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from repro.runtime.cache import audit_store, verify_store

    if args.json:
        import json as json_module

        report = audit_store(args.dir)
        if args.quarantine:
            report["problems"] = verify_store(args.dir, quarantine=True)
            report["quarantined"] = len(report["problems"])
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0 if not report["problems"] else 1
    problems = verify_store(args.dir, quarantine=args.quarantine)
    if not problems:
        print(f"{args.dir}: store healthy")
        return 0
    for problem in problems:
        print(problem)
    verb = "quarantined (*.corrupt)" if args.quarantine else "found"
    print(f"{len(problems)} bad {'entry' if len(problems) == 1 else 'entries'} {verb}")
    return 1


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from repro.runtime.cache import gc_store

    removed = gc_store(args.dir, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for name in removed:
        print(f"{verb} {name}")
    tail = "would be pruned" if args.dry_run else "pruned"
    print(f"{args.dir}: {len(removed)} files {tail}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import OptimizationService, ServiceConfig

    service = OptimizationService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            state_dir=Path(args.state_dir),
            jobs=args.jobs,
            sweep_backend=args.sweep_backend,
            cache_dir=args.cache,
            queue_limit=args.queue_limit,
            policy=args.policy,
            verify=args.verify,
        )
    )
    service.start()
    # Exact line first, flushed: scripts (and the test suite) discover a
    # port-0 server by reading it from the pipe.
    print(f"serving on {service.url}", flush=True)
    stats = service.stats()
    print(
        f"state dir {args.state_dir} | jobs {args.jobs} | "
        f"queue limit {args.queue_limit} | "
        f"{stats['jobs']} journaled jobs restored",
        flush=True,
    )
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        service.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.runtime.status import STATUS_FAILED, exit_code
    from repro.service import ServiceClient, build_plan

    soc = _load_soc(args.soc) if args.soc is not None else None
    plan = build_plan(
        args.kind,
        soc,
        patterns=args.patterns,
        wmax=args.wmax,
        widths=args.widths,
        parts=args.parts,
        seed=args.seed,
        seeds=args.seeds,
        cores=args.cores,
        channels=args.channels,
        sa_steps=args.sa_steps,
        arch=args.arch,
        optimizer_backend=args.optimizer_backend,
        compaction_backend=args.compaction_backend,
    )
    client = ServiceClient(args.url, timeout=args.timeout)
    response = client.submit(
        plan, priority=args.priority, fresh=args.fresh, tag=args.tag
    )
    job = response["job"]
    verb = "submitted" if response["created"] else "joined"
    print(
        f"{verb} job {job['id']} ({response['fingerprint']})",
        file=sys.stderr,
    )
    if args.no_wait:
        print(job["id"])
        return 0
    outcome = client.wait(job["id"], timeout=args.timeout)
    job = outcome["job"]
    if job["state"] == "failed":
        error = job.get("error") or {}
        print(
            f"job {job['id']} failed: "
            f"{error.get('message', 'unknown error')}",
            file=sys.stderr,
        )
        return exit_code(STATUS_FAILED)
    result = outcome.get("result") or {}
    if result.get("rendered"):
        print(result["rendered"])
    if job["state"] == "partial":
        plan_block = result.get("plan") or {}
        cells = plan_block.get("cells") or {}
        print(
            f"job {job['id']} completed PARTIAL "
            f"({cells.get('poisoned', '?')} cells quarantined)",
            file=sys.stderr,
        )
    return exit_code(job["state"])


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.runtime.status import exit_code
    from repro.service import ServiceClient, TERMINAL_STATES

    client = ServiceClient(args.url)
    if args.job is None:
        for job in client.jobs():
            tag = f"  tag {job['tag']}" if job.get("tag") else ""
            print(
                f"{job['id']}  {job['state']:<8} {job['kind']:<12} "
                f"prio {job['priority']:>4}  x{job['submissions']}"
                f"{tag}"
            )
        return 0
    if args.watch:
        state = None
        for event in client.events(args.job):
            state = event.get("state", state)
            print(json_module.dumps(event, sort_keys=True), flush=True)
        if state in TERMINAL_STATES:
            return exit_code(state)
        return 0
    print(
        json_module.dumps(
            client.job(args.job), indent=2, sort_keys=True
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-soc",
        description="SOC test architecture optimization for SI faults "
        "(DAC 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list shipped benchmark SOCs").set_defaults(
        func=_cmd_list
    )

    describe = sub.add_parser("describe", help="print a benchmark's core table")
    describe.add_argument("soc", help="benchmark name or .soc file path")
    describe.set_defaults(func=_cmd_describe)

    compact = sub.add_parser("compact", help="run two-dimensional SI compaction")
    compact.add_argument("soc")
    compact.add_argument("--patterns", type=int, default=10_000,
                         help="initial SI pattern count N_r")
    compact.add_argument("--parts", type=int, default=4,
                         help="number of core groups")
    compact.add_argument("--seed", type=int, default=1)
    compact.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-group compactions (1 = serial)",
    )
    _add_backend_flag(compact)
    compact.set_defaults(func=_cmd_compact)

    optimize = sub.add_parser("optimize", help="optimize a test architecture")
    optimize.add_argument("soc")
    optimize.add_argument("--wmax", type=int, required=True,
                          help="SOC TAM width budget W_max")
    optimize.add_argument("--patterns", type=int, default=0,
                          help="SI pattern count (0 = InTest only)")
    optimize.add_argument("--parts", type=int, default=4)
    optimize.add_argument("--seed", type=int, default=1)
    optimize.add_argument("--utilization", action="store_true",
                          help="also print the per-rail utilization report")
    optimize.add_argument("--save-arch",
                          help="write the architecture to this JSON file")
    _add_optimizer_backend_flag(optimize)
    _add_verify_flag(optimize)
    optimize.set_defaults(func=_cmd_optimize)

    evaluate = sub.add_parser(
        "evaluate", help="price a saved architecture against a test set"
    )
    evaluate.add_argument("soc")
    evaluate.add_argument("--arch", required=True,
                          help="architecture JSON from 'optimize --save-arch'")
    evaluate.add_argument("--patterns", type=int, default=0)
    evaluate.add_argument("--parts", type=int, default=4)
    evaluate.add_argument("--seed", type=int, default=1)
    _add_optimizer_backend_flag(evaluate)
    _add_verify_flag(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    pareto = sub.add_parser(
        "pareto", help="sweep W_max and report the trade-off curve"
    )
    pareto.add_argument("soc")
    pareto.add_argument("--widths", type=int, nargs="+",
                        default=[8, 16, 24, 32, 40, 48, 56, 64])
    pareto.add_argument("--patterns", type=int, default=0)
    pareto.add_argument("--parts", type=int, default=4)
    pareto.add_argument("--seed", type=int, default=1)
    _add_experiment_flags(pareto)
    pareto.set_defaults(func=_cmd_pareto)

    scaling = sub.add_parser(
        "scaling", help="optimizer scaling study on synthetic SOCs"
    )
    scaling.add_argument("--cores", type=int, nargs="+",
                         default=[8, 16, 24, 32])
    scaling.add_argument("--wmax", type=int, default=32)
    scaling.add_argument("--patterns", type=int, default=2_000)
    scaling.add_argument("--parts", type=int, default=4)
    scaling.add_argument("--seed", type=int, default=0)
    _add_experiment_flags(scaling)
    scaling.set_defaults(func=_cmd_scaling)

    table = sub.add_parser("table", help="regenerate a Table 2/3 experiment")
    table.add_argument("soc")
    table.add_argument("--patterns", type=int, default=10_000)
    table.add_argument("--widths", type=int, nargs="+",
                       default=list(DEFAULT_WIDTHS))
    table.add_argument("--parts", type=int, nargs="+",
                       default=list(DEFAULT_GROUP_COUNTS))
    table.add_argument("--seed", type=int, default=1)
    table.add_argument("--json", help="also write a JSON summary here")
    table.add_argument("--verbose", action="store_true")
    _add_experiment_flags(table)
    _add_optimizer_backend_flag(table)
    table.set_defaults(func=_cmd_table)

    bounds = sub.add_parser("bounds",
                            help="lower bounds and the optimality gap")
    bounds.add_argument("soc")
    bounds.add_argument("--wmax", type=int, required=True)
    bounds.add_argument("--patterns", type=int, default=0)
    bounds.add_argument("--parts", type=int, default=4)
    bounds.add_argument("--seed", type=int, default=1)
    bounds.set_defaults(func=_cmd_bounds)

    overhead = sub.add_parser("overhead",
                              help="DFT area cost of SI-capable wrappers")
    overhead.add_argument("soc")
    overhead.set_defaults(func=_cmd_overhead)

    svg = sub.add_parser("svg", help="export the schedule as an SVG figure")
    svg.add_argument("soc")
    svg.add_argument("--wmax", type=int, required=True)
    svg.add_argument("--patterns", type=int, default=0)
    svg.add_argument("--parts", type=int, default=4)
    svg.add_argument("--seed", type=int, default=1)
    svg.add_argument("--out", default="schedule.svg")
    svg.set_defaults(func=_cmd_svg)

    synth = sub.add_parser("synth",
                           help="generate a synthetic ITC'02-style SOC")
    synth.add_argument("name")
    synth.add_argument("--cores", type=int, default=16)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--out", default="synth.soc")
    synth.set_defaults(func=_cmd_synth)

    volume = sub.add_parser(
        "volume", help="test-data-volume study of 2-D compaction"
    )
    volume.add_argument("soc")
    volume.add_argument("--patterns", type=int, default=5_000)
    volume.add_argument("--parts", type=int, nargs="+", default=[1, 2, 4, 8])
    volume.add_argument("--seed", type=int, default=1)
    _add_experiment_flags(volume)
    _add_backend_flag(volume)
    volume.set_defaults(func=_cmd_volume)

    coverage = sub.add_parser(
        "coverage", help="MA fault coverage of a random pattern set"
    )
    coverage.add_argument("soc")
    coverage.add_argument("--patterns", type=int, default=5_000)
    coverage.add_argument("--fanouts", type=int, default=2)
    coverage.add_argument("--locality", type=int, default=2)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.set_defaults(func=_cmd_coverage)

    whatif = sub.add_parser(
        "whatif", help="marginal pin/move analysis of the optimized design"
    )
    whatif.add_argument("soc")
    whatif.add_argument("--wmax", type=int, required=True)
    whatif.add_argument("--patterns", type=int, default=0)
    whatif.add_argument("--parts", type=int, default=4)
    whatif.add_argument("--seed", type=int, default=1)
    whatif.set_defaults(func=_cmd_whatif)

    compare = sub.add_parser(
        "compare", help="head-to-head optimizer comparison"
    )
    compare.add_argument("soc")
    compare.add_argument("--wmax", type=int, required=True)
    compare.add_argument("--patterns", type=int, default=0)
    compare.add_argument("--parts", type=int, default=4)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--sa-steps", type=int, default=4_000)
    _add_experiment_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    multisite = sub.add_parser(
        "multisite", help="multi-site throughput study"
    )
    multisite.add_argument("soc")
    multisite.add_argument("--channels", type=int, default=64,
                           help="total tester channel budget")
    multisite.add_argument("--patterns", type=int, default=0)
    multisite.add_argument("--parts", type=int, default=4)
    multisite.add_argument("--seed", type=int, default=1)
    _add_experiment_flags(multisite)
    multisite.set_defaults(func=_cmd_multisite)

    sensitivity = sub.add_parser(
        "sensitivity", help="generator-knob sensitivity study"
    )
    sensitivity.add_argument("soc")
    sensitivity.add_argument("--wmax", type=int, default=32)
    sensitivity.add_argument("--patterns", type=int, default=2_000)
    sensitivity.add_argument("--parts", type=int, default=4)
    sensitivity.add_argument("--seed", type=int, default=1)
    _add_experiment_flags(sensitivity)
    sensitivity.set_defaults(func=_cmd_sensitivity)

    stability = sub.add_parser(
        "stability", help="seed-stability of the table metrics"
    )
    stability.add_argument("soc")
    stability.add_argument("--wmax", type=int, default=24)
    stability.add_argument("--patterns", type=int, default=2_000)
    stability.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    _add_experiment_flags(stability)
    stability.set_defaults(func=_cmd_stability)

    serve = sub.add_parser(
        "serve", help="run the optimization service (HTTP job server)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 = pick a free port; the chosen port is "
        "printed on startup)",
    )
    serve.add_argument(
        "--state-dir", default="results/service",
        help="durable state root: job journal, checkpoints, and the "
        "shared evaluation cache live here",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per plan run (the warm pool is shared "
        "across all jobs)",
    )
    _add_sweep_backend_flag(serve)
    serve.add_argument(
        "--cache", default=None, metavar="DIR",
        help="shared evaluation cache directory "
        "(default: <state-dir>/cache)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=256,
        help="bounded job queue depth; submissions beyond it get "
        "429 + Retry-After",
    )
    serve.add_argument(
        "--policy", default=None, metavar="SPEC",
        help="run supervision policy applied to every job "
        "(same SPEC as the experiment commands)",
    )
    serve.add_argument(
        "--verify", action="store_true",
        help="independently verify every job's results before "
        "reporting it ok",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit an experiment to a running service"
    )
    submit.add_argument(
        "kind",
        help="plan kind: table, pareto, volume, compare, multisite, "
        "scaling, sensitivity, stability, optimize, evaluate",
    )
    submit.add_argument(
        "soc", nargs="?", default=None,
        help="benchmark name or .soc path (omit for 'scaling')",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="service base URL",
    )
    submit.add_argument("--patterns", type=int, default=None)
    submit.add_argument("--wmax", type=int, default=None)
    submit.add_argument("--widths", type=int, nargs="+", default=None)
    submit.add_argument("--parts", type=int, nargs="+", default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--seeds", type=int, nargs="+", default=None)
    submit.add_argument("--cores", type=int, nargs="+", default=None)
    submit.add_argument("--channels", type=int, default=None)
    submit.add_argument("--sa-steps", type=int, default=None)
    submit.add_argument(
        "--arch", default=None,
        help="architecture JSON (the 'evaluate' kind)",
    )
    submit.add_argument(
        "--optimizer-backend", default=None,
        help="TAM optimizer engine for kinds that take one",
    )
    submit.add_argument("--compaction-backend", default=None)
    submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher runs first; -100..100)",
    )
    submit.add_argument(
        "--fresh", action="store_true",
        help="bypass dedup: force a new job even if an identical plan "
        "is already queued, running, or finished",
    )
    submit.add_argument("--tag", default=None, help="free-form job label")
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return immediately instead of "
        "waiting for the result",
    )
    submit.add_argument(
        "--timeout", type=float, default=3600.0,
        help="seconds to wait for the result",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser(
        "jobs", help="list or inspect jobs on a running service"
    )
    jobs_cmd.add_argument(
        "job", nargs="?", default=None,
        help="job id for a detail view (omit to list all jobs)",
    )
    jobs_cmd.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="service base URL",
    )
    jobs_cmd.add_argument(
        "--watch", action="store_true",
        help="stream the job's event feed (ndjson) until it finishes; "
        "the exit code reflects the final state",
    )
    jobs_cmd.set_defaults(func=_cmd_jobs)

    from repro.runtime.cache import DEFAULT_STORE_DIR

    cache_cmd = sub.add_parser(
        "cache", help="inspect and maintain the on-disk evaluation cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_verify = cache_sub.add_parser(
        "verify", help="integrity-check every store entry "
        "(checksums, format, key aliasing)"
    )
    cache_verify.add_argument(
        "dir", nargs="?", default=str(DEFAULT_STORE_DIR),
        help="cache store directory",
    )
    cache_verify.add_argument(
        "--quarantine", action="store_true",
        help="move each bad entry aside to <name>.corrupt so later runs "
        "recompute it",
    )
    cache_verify.add_argument(
        "--json", action="store_true",
        help="emit a JSON health report (entry/debris counts, bytes, "
        "per-kind totals, problems) instead of text",
    )
    cache_verify.set_defaults(func=_cmd_cache_verify)
    cache_gc = cache_sub.add_parser(
        "gc", help="prune quarantined entries, stale temp files, and "
        "entries of old store versions"
    )
    cache_gc.add_argument(
        "dir", nargs="?", default=str(DEFAULT_STORE_DIR),
        help="cache store directory",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be pruned without deleting anything",
    )
    cache_gc.set_defaults(func=_cmd_cache_gc)
    return parser


def _failure_exceptions() -> tuple:
    """The exception types that are *failed runs*, not crashes: they
    exit with the uniform ``failed`` code (1) and a one-line stderr
    diagnostic instead of a traceback."""
    from repro.resilience.validation import ValidationError
    from repro.resilience.verify import ScheduleVerificationError
    from repro.runtime.executor import CellError
    from repro.runtime.supervision import (
        CircuitOpenError,
        PlanDeadlineError,
        PolicyError,
    )
    from repro.service.client import ServiceError

    return (
        ValidationError,
        ScheduleVerificationError,
        CellError,
        CircuitOpenError,
        PlanDeadlineError,
        PolicyError,
        ServiceError,
        TimeoutError,
        ConnectionError,
    )


def main(argv: list[str] | None = None) -> int:
    from repro.runtime.status import EXIT_FAILED

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`):
        # not an error.  Detach stdout so the interpreter's shutdown
        # flush does not raise again.
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except _failure_exceptions() as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED


if __name__ == "__main__":
    sys.exit(main())
