"""Synthetic SOC generation for scaling studies.

Generates random-but-realistic SOCs in the ITC'02 style: a mix of
combinational glue, small/medium scan cores and large scan-heavy cores,
with parameter ranges drawn from the published benchmark statistics.  Used
by the scaling benchmarks and available to users who want to stress the
optimizers beyond the shipped SOCs.

All generation is deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.soc.model import Core, CoreTest, Soc


@dataclass(frozen=True)
class CoreProfile:
    """Parameter ranges for one class of synthesized cores.

    All ranges are inclusive ``(low, high)`` bounds.
    """

    name: str
    inputs: tuple[int, int]
    outputs: tuple[int, int]
    bidirs: tuple[int, int]
    scan_chains: tuple[int, int]
    scan_cells: tuple[int, int]
    patterns: tuple[int, int]

    def __post_init__(self) -> None:
        for label in ("inputs", "outputs", "bidirs", "scan_chains",
                      "scan_cells", "patterns"):
            low, high = getattr(self, label)
            if not 0 <= low <= high:
                raise ValueError(f"{self.name}: bad {label} range "
                                 f"({low}, {high})")


#: Default profiles, sized after the ITC'02 population.
GLUE = CoreProfile(
    name="glue",
    inputs=(30, 180), outputs=(20, 140), bidirs=(0, 16),
    scan_chains=(0, 0), scan_cells=(0, 0), patterns=(40, 300),
)
SMALL = CoreProfile(
    name="small",
    inputs=(20, 90), outputs=(20, 90), bidirs=(0, 16),
    scan_chains=(1, 8), scan_cells=(100, 900), patterns=(60, 400),
)
MEDIUM = CoreProfile(
    name="medium",
    inputs=(40, 200), outputs=(40, 220), bidirs=(0, 48),
    scan_chains=(8, 24), scan_cells=(1_000, 5_000), patterns=(150, 900),
)
LARGE = CoreProfile(
    name="large",
    inputs=(100, 420), outputs=(100, 350), bidirs=(0, 72),
    scan_chains=(16, 46), scan_cells=(6_000, 24_000), patterns=(150, 700),
)

DEFAULT_MIX: tuple[tuple[CoreProfile, float], ...] = (
    (GLUE, 0.25),
    (SMALL, 0.25),
    (MEDIUM, 0.35),
    (LARGE, 0.15),
)


def _balanced_chains(rng: random.Random, profile: CoreProfile) -> tuple[int, ...]:
    chains = rng.randint(*profile.scan_chains)
    if chains == 0:
        return ()
    cells = max(chains, rng.randint(*profile.scan_cells))
    base = cells // chains
    remainder = cells - base * chains
    return tuple([base + 1] * remainder + [base] * (chains - remainder))


def synthesize_core(
    core_id: int,
    profile: CoreProfile,
    rng: random.Random,
) -> Core:
    """Draw one core from a profile."""
    chains = _balanced_chains(rng, profile)
    return Core(
        core_id=core_id,
        name=f"{profile.name}{core_id}",
        inputs=rng.randint(*profile.inputs),
        outputs=rng.randint(*profile.outputs),
        bidirs=rng.randint(*profile.bidirs),
        scan_chains=chains,
        tests=(CoreTest(patterns=rng.randint(*profile.patterns),
                        scan_use=bool(chains)),),
    )


def synthesize_soc(
    name: str,
    core_count: int,
    mix: tuple[tuple[CoreProfile, float], ...] = DEFAULT_MIX,
    seed: int = 0,
) -> Soc:
    """Generate a synthetic SOC with ``core_count`` cores.

    Args:
        name: SOC name.
        core_count: Number of cores (>= 1).
        mix: ``(profile, weight)`` pairs; weights need not sum to one.
        seed: RNG seed.

    Raises:
        ValueError: On a non-positive core count or an empty/invalid mix.
    """
    if core_count <= 0:
        raise ValueError("core_count must be positive")
    if not mix:
        raise ValueError("profile mix must not be empty")
    profiles = [profile for profile, _ in mix]
    weights = [weight for _, weight in mix]
    if any(weight < 0 for weight in weights) or sum(weights) <= 0:
        raise ValueError("profile weights must be non-negative, not all zero")

    rng = random.Random(seed)
    cores = tuple(
        synthesize_core(core_id, rng.choices(profiles, weights)[0], rng)
        for core_id in range(1, core_count + 1)
    )
    return Soc(name=name, cores=cores)
