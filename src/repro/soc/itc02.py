"""Parser and writer for the ITC'02 SOC test benchmark format.

The grammar implemented here follows the published ITC'02 benchmark files
[Marinissen, Iyengar, Chakrabarty, ITC 2002]::

    SocName <name>
    TotalModules <n>
    Module <id> ['<name>']
      Level <k>
      Inputs <i>
      Outputs <o>
      Bidirs <b>
      ScanChains <count> [: <len1> <len2> ...]
      TotalTests <t>
      Test <j>
        ScanUse <0|1>
        TamUse <0|1>
        Patterns <p>

Lines starting with ``#`` and blank lines are ignored; indentation is not
significant.  The writer emits exactly this grammar, so
``parse(dumps(soc)) == soc`` round-trips.

Beyond the grammar, :func:`parse` schema-checks the result — negative
counts, duplicate module names, dangling ``Parent`` references and
test-less modules are rejected with the offending line number — and
:func:`parse_file` stamps the file path onto every diagnostic, so a bad
benchmark fails at load time with an actionable message instead of a
deep stack trace mid-sweep.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.resilience.validation import ValidationError, validate_soc
from repro.soc.model import Core, CoreTest, Soc


class Itc02ParseError(ValidationError):
    """Raised on malformed ITC'02 benchmark text, with a line number."""

    def __init__(self, line_no: int, message: str,
                 field: str | None = None) -> None:
        super().__init__(message, line=line_no, field=field)
        self.line_no = line_no


class _TokenStream:
    """Sequential reader over the meaningful lines of a benchmark file."""

    def __init__(self, text: str) -> None:
        self._lines: list[tuple[int, list[str]]] = []
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if line:
                self._lines.append((line_no, line.split()))
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._lines)

    def peek(self) -> tuple[int, list[str]] | None:
        if self.exhausted:
            return None
        return self._lines[self._pos]

    def next(self) -> tuple[int, list[str]]:
        if self.exhausted:
            last_no = self._lines[-1][0] if self._lines else 0
            raise Itc02ParseError(last_no, "unexpected end of file")
        item = self._lines[self._pos]
        self._pos += 1
        return item


def _expect_keyword(stream: _TokenStream, keyword: str) -> tuple[int, list[str]]:
    line_no, tokens = stream.next()
    if tokens[0] != keyword:
        raise Itc02ParseError(line_no, f"expected '{keyword}', got '{tokens[0]}'")
    return line_no, tokens


def _parse_int(
    line_no: int, token: str, label: str, minimum: int | None = None
) -> int:
    try:
        value = int(token)
    except ValueError:
        raise Itc02ParseError(
            line_no, f"expected integer, got '{token}'", field=label
        )
    if minimum is not None and value < minimum:
        raise Itc02ParseError(
            line_no, f"expected integer >= {minimum}, got {value}", field=label
        )
    return value


def _parse_keyed_int(
    stream: _TokenStream, keyword: str, minimum: int | None = None
) -> int:
    line_no, tokens = _expect_keyword(stream, keyword)
    if len(tokens) != 2:
        raise Itc02ParseError(line_no, f"'{keyword}' takes exactly one value")
    return _parse_int(line_no, tokens[1], keyword, minimum)


def _parse_bool(stream: _TokenStream, keyword: str) -> bool:
    line_no, tokens = _expect_keyword(stream, keyword)
    if len(tokens) != 2 or tokens[1] not in {"0", "1", "yes", "no"}:
        raise Itc02ParseError(line_no, f"'{keyword}' takes a 0/1 or yes/no value")
    return tokens[1] in {"1", "yes"}


def _parse_scan_chains(stream: _TokenStream) -> tuple[int, ...]:
    line_no, tokens = _expect_keyword(stream, "ScanChains")
    if len(tokens) < 2:
        raise Itc02ParseError(line_no, "'ScanChains' requires a count")
    count = _parse_int(line_no, tokens[1], "ScanChains count", minimum=0)
    if count == 0:
        if len(tokens) > 2:
            raise Itc02ParseError(line_no, "lengths given for zero scan chains")
        return ()
    if len(tokens) < 3 or tokens[2] != ":":
        raise Itc02ParseError(line_no, "expected ':' before scan chain lengths")
    lengths = tuple(
        _parse_int(line_no, token, "scan chain length", minimum=1)
        for token in tokens[3:]
    )
    if len(lengths) != count:
        raise Itc02ParseError(
            line_no,
            f"ScanChains declares {count} chains but lists {len(lengths)} lengths",
        )
    return lengths


def _parse_test(stream: _TokenStream) -> CoreTest:
    _expect_keyword(stream, "Test")
    scan_use = _parse_bool(stream, "ScanUse")
    tam_use = _parse_bool(stream, "TamUse")
    patterns = _parse_keyed_int(stream, "Patterns", minimum=0)
    return CoreTest(patterns=patterns, scan_use=scan_use, tam_use=tam_use)


def _parse_module(stream: _TokenStream) -> tuple[Core, int]:
    line_no, tokens = _expect_keyword(stream, "Module")
    if len(tokens) < 2:
        raise Itc02ParseError(line_no, "'Module' requires an id")
    core_id = _parse_int(line_no, tokens[1], "module id", minimum=0)
    name = tokens[2].strip("'\"") if len(tokens) > 2 else f"module{core_id}"

    level = _parse_keyed_int(stream, "Level", minimum=0)
    parent = None
    peeked = stream.peek()
    if peeked is not None and peeked[1][0] == "Parent":
        parent = _parse_keyed_int(stream, "Parent", minimum=0)
    inputs = _parse_keyed_int(stream, "Inputs", minimum=0)
    outputs = _parse_keyed_int(stream, "Outputs", minimum=0)
    bidirs = _parse_keyed_int(stream, "Bidirs", minimum=0)
    scan_chains = _parse_scan_chains(stream)
    total_tests = _parse_keyed_int(stream, "TotalTests", minimum=0)
    tests = tuple(_parse_test(stream) for _ in range(total_tests))
    core = Core(
        core_id=core_id,
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_chains=scan_chains,
        tests=tests,
        level=level,
        parent=parent,
    )
    return core, line_no


def parse(text: str) -> Soc:
    """Parse ITC'02 benchmark text into a :class:`Soc`.

    Raises:
        Itc02ParseError: On any grammar violation, with the offending
            line number in the message.
        ValidationError: On a schema violation the grammar cannot see
            (duplicate module name, dangling ``Parent``, test-less
            module), also with the offending line number.
    """
    stream = _TokenStream(text)
    line_no, tokens = _expect_keyword(stream, "SocName")
    if len(tokens) != 2:
        raise Itc02ParseError(line_no, "'SocName' takes exactly one value")
    name = tokens[1]
    total_modules = _parse_keyed_int(stream, "TotalModules", minimum=0)

    cores = []
    module_lines: dict[int, int] = {}
    while not stream.exhausted:
        core, module_line = _parse_module(stream)
        cores.append(core)
        module_lines.setdefault(core.core_id, module_line)
    if len(cores) != total_modules:
        raise Itc02ParseError(
            line_no,
            f"TotalModules declares {total_modules} modules "
            f"but file contains {len(cores)}",
        )
    soc = Soc(name=name, cores=tuple(cores))
    validate_soc(soc, lines=module_lines)
    return soc


def parse_file(path: str | Path) -> Soc:
    """Parse an ITC'02 benchmark file from disk; diagnostics carry the
    file path."""
    try:
        return parse(Path(path).read_text())
    except ValidationError as error:
        raise error.with_source(str(path))


def _dump_lines(soc: Soc) -> Iterator[str]:
    yield f"SocName {soc.name}"
    yield f"TotalModules {len(soc.cores)}"
    for core in soc.cores:
        yield f"Module {core.core_id} '{core.name}'"
        yield f"  Level {core.level}"
        if core.parent is not None:
            yield f"  Parent {core.parent}"
        yield f"  Inputs {core.inputs}"
        yield f"  Outputs {core.outputs}"
        yield f"  Bidirs {core.bidirs}"
        if core.scan_chains:
            lengths = " ".join(str(length) for length in core.scan_chains)
            yield f"  ScanChains {len(core.scan_chains)} : {lengths}"
        else:
            yield "  ScanChains 0"
        yield f"  TotalTests {len(core.tests)}"
        for index, test in enumerate(core.tests, start=1):
            yield f"  Test {index}"
            yield f"    ScanUse {int(test.scan_use)}"
            yield f"    TamUse {int(test.tam_use)}"
            yield f"    Patterns {test.patterns}"


def dumps(soc: Soc) -> str:
    """Serialize a :class:`Soc` to ITC'02 benchmark text."""
    return "\n".join(_dump_lines(soc)) + "\n"


def dump_file(soc: Soc, path: str | Path) -> None:
    """Write a :class:`Soc` to disk in ITC'02 benchmark format."""
    Path(path).write_text(dumps(soc))
