"""SOC data model, ITC'02 benchmark format, and shipped benchmarks."""

from repro.soc.benchmarks import available_benchmarks, load_benchmark
from repro.soc.hierarchy import (
    HierarchyError,
    children_of,
    flatten,
    hierarchy_depth,
    top_level_cores,
    validate_hierarchy,
)
from repro.soc.itc02 import Itc02ParseError, dump_file, dumps, parse, parse_file
from repro.soc.model import Core, CoreTest, Soc, SocModelError
from repro.soc.synth import (
    DEFAULT_MIX,
    GLUE,
    LARGE,
    MEDIUM,
    SMALL,
    CoreProfile,
    synthesize_core,
    synthesize_soc,
)

__all__ = [
    "Core",
    "CoreProfile",
    "DEFAULT_MIX",
    "GLUE",
    "LARGE",
    "MEDIUM",
    "SMALL",
    "synthesize_core",
    "synthesize_soc",
    "CoreTest",
    "HierarchyError",
    "Itc02ParseError",
    "children_of",
    "flatten",
    "hierarchy_depth",
    "top_level_cores",
    "validate_hierarchy",
    "Soc",
    "SocModelError",
    "available_benchmarks",
    "dump_file",
    "dumps",
    "load_benchmark",
    "parse",
    "parse_file",
]
