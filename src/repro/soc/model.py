"""Data model for core-based SOCs in the ITC'02 benchmark style.

The model mirrors the information carried by the ITC'02 SOC test benchmarks
[Marinissen, Iyengar, Chakrabarty, ITC 2002]: an SOC is a set of *modules*
(embedded cores), each with functional terminals (inputs, outputs, bidirs),
internal scan chains, and one or more test sets characterized by their
pattern counts.

Only the fields required for test-architecture optimization are modeled;
hierarchy ("Level") is parsed and stored but, following the paper
("Without loss of generality, we do not consider hierarchy"), all cores are
treated as top-level when building test architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SocModelError(ValueError):
    """Raised when SOC model invariants are violated."""


@dataclass(frozen=True)
class CoreTest:
    """One test set of a core (a ``Test`` block in the ITC'02 format).

    Attributes:
        patterns: Number of test patterns in this test set.
        scan_use: Whether the patterns are applied through the scan chains
            (sequential test) or purely combinationally.
        tam_use: Whether the test is delivered over the TAM (all tests
            considered in this work are).
    """

    patterns: int
    scan_use: bool = True
    tam_use: bool = True

    def __post_init__(self) -> None:
        if self.patterns < 0:
            raise SocModelError(f"negative pattern count: {self.patterns}")


@dataclass(frozen=True)
class Core:
    """An embedded core (an ITC'02 ``Module``).

    Attributes:
        core_id: Integer identifier, unique within the SOC.
        name: Human-readable module name.
        inputs: Number of functional input terminals.
        outputs: Number of functional output terminals.
        bidirs: Number of bidirectional terminals.
        scan_chains: Lengths of the core-internal scan chains.
        tests: Test sets of the core.
        level: Hierarchy level from the benchmark file (0 = SOC top).
        parent: Id of the parent core for hierarchical SOCs, or ``None``
            for top-level cores.
    """

    core_id: int
    name: str
    inputs: int
    outputs: int
    bidirs: int
    scan_chains: tuple[int, ...] = ()
    tests: tuple[CoreTest, ...] = ()
    level: int = 1
    parent: int | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("inputs", self.inputs),
            ("outputs", self.outputs),
            ("bidirs", self.bidirs),
        ):
            if value < 0:
                raise SocModelError(
                    f"core {self.core_id} ({self.name}): negative {label}"
                )
        if any(length <= 0 for length in self.scan_chains):
            raise SocModelError(
                f"core {self.core_id} ({self.name}): non-positive scan chain length"
            )

    @property
    def wic_count(self) -> int:
        """Number of wrapper input cells (inputs plus bidirs)."""
        return self.inputs + self.bidirs

    @property
    def woc_count(self) -> int:
        """Number of wrapper output cells (outputs plus bidirs).

        These are the cells that launch transitions onto core-external
        interconnects during SI test.
        """
        return self.outputs + self.bidirs

    @property
    def terminal_count(self) -> int:
        """Total number of functional terminals."""
        return self.inputs + self.outputs + self.bidirs

    @property
    def scan_cell_count(self) -> int:
        """Total number of core-internal scan flip-flops."""
        return sum(self.scan_chains)

    @property
    def is_combinational(self) -> bool:
        """True when the core has no internal scan chains."""
        return not self.scan_chains

    @property
    def total_patterns(self) -> int:
        """Pattern count summed over all test sets of the core."""
        return sum(test.patterns for test in self.tests)


@dataclass(frozen=True)
class Soc:
    """A system-on-chip: a named collection of cores.

    Attributes:
        name: SOC name (e.g. ``p93791``).
        cores: The embedded cores, in file order.
    """

    name: str
    cores: tuple[Core, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for core in self.cores:
            if core.core_id in seen:
                raise SocModelError(
                    f"SOC {self.name}: duplicate core id {core.core_id}"
                )
            seen.add(core.core_id)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def core_by_id(self, core_id: int) -> Core:
        """Return the core with the given id, raising ``KeyError`` if absent."""
        for core in self.cores:
            if core.core_id == core_id:
                return core
        raise KeyError(f"SOC {self.name}: no core with id {core_id}")

    @property
    def core_ids(self) -> tuple[int, ...]:
        """Identifiers of all cores, in file order."""
        return tuple(core.core_id for core in self.cores)

    @property
    def total_terminals(self) -> int:
        """Sum of functional terminal counts over all cores."""
        return sum(core.terminal_count for core in self.cores)

    @property
    def total_scan_cells(self) -> int:
        """Sum of scan flip-flop counts over all cores."""
        return sum(core.scan_cell_count for core in self.cores)

    def describe(self) -> str:
        """Return a short human-readable summary of the SOC."""
        lines = [
            f"SOC {self.name}: {len(self.cores)} cores, "
            f"{self.total_terminals} terminals, "
            f"{self.total_scan_cells} scan cells"
        ]
        for core in self.cores:
            chains = (
                f"{len(core.scan_chains)} chains "
                f"(max {max(core.scan_chains)})"
                if core.scan_chains
                else "combinational"
            )
            lines.append(
                f"  [{core.core_id:>3}] {core.name:<12} "
                f"in={core.inputs:<4} out={core.outputs:<4} "
                f"bidir={core.bidirs:<3} {chains}, "
                f"{core.total_patterns} patterns"
            )
        return "\n".join(lines)
