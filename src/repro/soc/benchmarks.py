"""Access to the benchmark SOCs shipped with the package.

The paper evaluates on the ITC'02 benchmarks ``p34392`` and ``p93791``.
The original benchmark files are not redistributable here, so the package
ships reconstructions (see DESIGN.md §4): ``d695`` follows the published
core table exactly; ``p22810``, ``p34392``, and ``p93791`` reproduce the
published structural statistics with deterministic synthetic detail.
``t5`` is a small toy SOC for examples and tests.
"""

from __future__ import annotations

from importlib import resources

from repro.soc.itc02 import parse
from repro.soc.model import Soc

_DATA_PACKAGE = "repro.soc.data"


def available_benchmarks() -> tuple[str, ...]:
    """Names of the benchmark SOCs shipped with the package, sorted."""
    names = []
    for entry in resources.files(_DATA_PACKAGE).iterdir():
        if entry.name.endswith(".soc"):
            names.append(entry.name[: -len(".soc")])
    return tuple(sorted(names))


def load_benchmark(name: str) -> Soc:
    """Load a shipped benchmark SOC by name (e.g. ``"p93791"``).

    Raises:
        KeyError: If no benchmark with that name is shipped.
    """
    resource = resources.files(_DATA_PACKAGE) / f"{name}.soc"
    if not resource.is_file():
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(available_benchmarks())}"
        )
    return parse(resource.read_text())
