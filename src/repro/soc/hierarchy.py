"""Hierarchy utilities for two-level ITC'02 SOCs.

Several ITC'02 benchmarks are hierarchical: some modules are children of
others and are only accessible through their parent's wrapper.  The paper
sidesteps this ("Without loss of generality, we do not consider hierarchy
in the testing of core-internal logic"), and so does the optimizer — but
the data model carries ``level``/``parent``, and this module provides the
pieces a hierarchy-aware flow needs:

* structural validation (parents exist, levels consistent, no cycles),
* child/parent queries,
* :func:`flatten` — the paper's move: promote every core to the top level
  so the flat optimizers apply.
"""

from __future__ import annotations

from dataclasses import replace

from repro.soc.model import Core, Soc


class HierarchyError(ValueError):
    """Raised when an SOC's hierarchy annotations are inconsistent."""


def validate_hierarchy(soc: Soc) -> None:
    """Check parent/level consistency.

    Raises:
        HierarchyError: If a parent id is unknown or self-referential, a
            child's level is not strictly deeper than its parent's, or
            the parent chain contains a cycle.
    """
    cores = {core.core_id: core for core in soc}
    for core in soc:
        if core.parent is None:
            continue
        if core.parent == core.core_id:
            raise HierarchyError(
                f"core {core.core_id} lists itself as parent"
            )
        parent = cores.get(core.parent)
        if parent is None:
            raise HierarchyError(
                f"core {core.core_id}: unknown parent {core.parent}"
            )
        if core.level <= parent.level:
            raise HierarchyError(
                f"core {core.core_id} (level {core.level}) must sit "
                f"deeper than parent {parent.core_id} "
                f"(level {parent.level})"
            )
    # Cycle check via chain walking (levels already force acyclicity when
    # consistent, but walk anyway so broken inputs fail loudly).
    for core in soc:
        seen = {core.core_id}
        current = core
        while current.parent is not None:
            if current.parent in seen:
                raise HierarchyError(
                    f"parent cycle through core {current.parent}"
                )
            seen.add(current.parent)
            current = cores[current.parent]


def children_of(soc: Soc, core_id: int) -> tuple[Core, ...]:
    """Direct children of a core, in file order."""
    soc.core_by_id(core_id)  # raises KeyError for unknown ids
    return tuple(core for core in soc if core.parent == core_id)


def top_level_cores(soc: Soc) -> tuple[Core, ...]:
    """Cores without a parent."""
    return tuple(core for core in soc if core.parent is None)


def hierarchy_depth(soc: Soc) -> int:
    """Length of the longest parent chain (1 for a flat SOC, 0 if empty)."""
    if not len(soc):
        return 0
    validate_hierarchy(soc)
    cores = {core.core_id: core for core in soc}

    def depth(core: Core) -> int:
        count = 1
        while core.parent is not None:
            core = cores[core.parent]
            count += 1
        return count

    return max(depth(core) for core in soc)


def flatten(soc: Soc) -> Soc:
    """Promote every core to the top level (the paper's assumption).

    Returns a new SOC whose cores all have ``parent=None`` and
    ``level=1``; everything else is untouched.  Validates first so that
    silently flattening a broken hierarchy is impossible.
    """
    validate_hierarchy(soc)
    return Soc(
        name=soc.name,
        cores=tuple(
            replace(core, parent=None, level=1) for core in soc
        ),
    )
