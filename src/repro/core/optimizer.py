"""SI-aware TAM design and optimization (paper, Section 4.2 / Fig. 6).

``optimize_tam`` implements Algorithm 2 (``TAM_Optimization``): a start
solution assigns every core its own one-wire TestRail, which is then merged
down (or padded with free wires) to the pin budget ``W_max`` and optimized
bottom-up, top-down, and by core reshuffling — always scoring candidates by
the *combined* objective ``T_soc = T_soc_in + T_soc_si``.

With no SI groups the combined objective degenerates to the InTest time and
the procedure becomes the TR-Architect baseline of Goel & Marinissen
(ITC 2002), exposed as :func:`repro.tam.tr_architect.tr_architect`.

The key departure from TR-Architect (paper, Section 4.2) is that several
*bottleneck TAMs* can exist at once — the InTest-critical rail plus the
``r_btn`` of every SI group on the SI schedule's critical chain — and free
wires are only worth giving to those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.scheduling import Evaluation, TamEvaluator
from repro.runtime.instrumentation import get_instrumentation, incr
from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture, initial_architecture


@dataclass(frozen=True)
class OptimizationResult:
    """Final architecture of an optimization run plus its evaluation."""

    architecture: TestRailArchitecture
    evaluation: Evaluation
    w_max: int

    @property
    def t_total(self) -> int:
        return self.evaluation.t_total


def bottleneck_rails(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    evaluation: Evaluation | None = None,
) -> set[int]:
    """Indices of the SOC's bottleneck TAMs.

    A rail is a bottleneck when assigning it extra wires can reduce
    ``T_soc``: every rail achieving the InTest maximum, plus the bottleneck
    rail ``r_btn(s)`` of every SI group on the critical chain of the SI
    schedule (a group is critical when it ends at ``T_soc_si`` or ends
    exactly where a critical group begins).
    """
    if evaluation is None:
        evaluation = evaluator.evaluate(architecture)
    bottlenecks = {
        index
        for index, stats in enumerate(evaluation.rail_stats)
        if stats.time_in == evaluation.t_in and evaluation.t_in > 0
    }
    if evaluation.schedule:
        critical_times = {evaluation.t_si}
        for entry in sorted(evaluation.schedule, key=lambda e: -e.end):
            if entry.end in critical_times:
                bottlenecks.add(entry.bottleneck_rail)
                if entry.begin > 0:
                    critical_times.add(entry.begin)
    return bottlenecks


def distribute_free_wires(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    free_wires: int,
) -> TestRailArchitecture:
    """``distributeFreeWires``: hand each free wire to the bottleneck rail
    whose widening minimizes ``T_soc``.

    Rail statistics (and therefore the bottleneck set) are recomputed after
    every assignment, as required by the paper.
    """
    incr("optimizer.wires_distributed", free_wires)
    for _ in range(free_wires):
        evaluation = evaluator.evaluate(architecture)
        candidates = bottleneck_rails(evaluator, architecture, evaluation)
        if not candidates:
            candidates = set(range(len(architecture.rails)))
        best_architecture = None
        best_total = None
        for index in sorted(candidates):
            candidate = architecture.with_rail(
                index, architecture.rails[index].widened(1)
            )
            total = evaluator.t_total(candidate)
            if best_total is None or total < best_total:
                best_total = total
                best_architecture = candidate
        assert best_architecture is not None
        architecture = best_architecture
    return architecture


def merge_tams(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    rail_index: int,
) -> TestRailArchitecture:
    """``mergeTAMs``: merge the rail at ``rail_index`` with the partner,
    width, and leftover-wire redistribution that minimize ``T_soc``.

    For every other rail ``r_i`` the merged width is swept over
    ``[max(w_1, w_i), w_1 + w_i]``; freed wires go to bottleneck rails via
    :func:`distribute_free_wires`.  Returns the input architecture when no
    merge strictly improves ``T_soc``.
    """
    best_total = evaluator.t_total(architecture)
    best_architecture = architecture
    base = architecture.rails[rail_index]
    for partner_index, partner in enumerate(architecture.rails):
        if partner_index == rail_index:
            continue
        width_sum = base.width + partner.width
        width_min = max(base.width, partner.width)
        for width in range(width_min, width_sum + 1):
            incr("optimizer.merges_tried")
            merged = architecture.merged(rail_index, partner_index, width)
            leftover = width_sum - width
            if leftover:
                merged = distribute_free_wires(evaluator, merged, leftover)
            total = evaluator.t_total(merged)
            if total < best_total:
                best_total = total
                best_architecture = merged
    return best_architecture


def core_reshuffle(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
) -> TestRailArchitecture:
    """``coreReshuffle``: repeatedly move one core off a bottleneck rail
    onto another rail while that reduces ``T_soc``."""
    while True:
        evaluation = evaluator.evaluate(architecture)
        current_total = evaluation.t_total
        sources = bottleneck_rails(evaluator, architecture, evaluation)
        if not sources:
            sources = set(range(len(architecture.rails)))
        best_total = current_total
        best_architecture = None
        for source in sorted(sources):
            rail = architecture.rails[source]
            if len(rail.cores) < 2:
                continue
            for core_id in rail.cores:
                for destination in range(len(architecture.rails)):
                    if destination == source:
                        continue
                    incr("optimizer.core_moves_tried")
                    candidate = architecture.with_core_moved(
                        core_id, source, destination
                    )
                    total = evaluator.t_total(candidate)
                    if total < best_total:
                        best_total = total
                        best_architecture = candidate
        if best_architecture is None:
            return architecture
        architecture = best_architecture


def _rail_order_by_used(
    evaluator: TamEvaluator, architecture: TestRailArchitecture
) -> list[int]:
    """Rail indices sorted by non-increasing ``time_used(r)``."""
    return sorted(
        range(len(architecture.rails)),
        key=lambda index: (
            -evaluator.rail_stats(architecture.rails[index]).time_used,
            index,
        ),
    )


def _start_solution(
    evaluator: TamEvaluator,
    soc: Soc,
    w_max: int,
) -> TestRailArchitecture:
    """Lines 1–16 of Algorithm 2: one-wire rail per core, merged down or
    padded up to exactly ``w_max`` wires."""
    architecture = initial_architecture(soc.core_ids, width_per_rail=1)
    core_count = len(architecture.rails)
    if w_max < core_count:
        while len(architecture.rails) > w_max:
            order = _rail_order_by_used(evaluator, architecture)
            overflow = order[w_max]  # r_{W_max + 1} in the paper's sort
            best_total = None
            best_architecture = None
            for position in order[:w_max]:
                candidate = architecture.merged(position, overflow, 1)
                total = evaluator.t_total(candidate)
                if best_total is None or total < best_total:
                    best_total = total
                    best_architecture = candidate
            assert best_architecture is not None
            architecture = best_architecture
    elif w_max > core_count:
        architecture = distribute_free_wires(
            evaluator, architecture, w_max - core_count
        )
    return architecture


def optimize_tam(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
    evaluator: TamEvaluator | None = None,
) -> OptimizationResult:
    """Solve Problem ``P_SI_opt`` with Algorithm 2 (``TAM_Optimization``).

    Args:
        soc: The SOC (every core becomes a wrapped TAM client).
        w_max: SOC pin budget ``W_max``.
        groups: Compacted SI test groups; pass ``()`` for the InTest-only
            TR-Architect baseline.
        capture_cycles: Launch/capture cycles charged per SI pattern.
        evaluator: Custom cost model (e.g. a Test Bus or power-aware
            evaluator); defaults to the paper's TestRail model over
            ``groups``.

    Returns:
        The optimized architecture and its evaluation.

    Raises:
        ValueError: If ``w_max`` is not positive or the SOC has no cores.
    """
    if w_max <= 0:
        raise ValueError(f"W_max must be positive, got {w_max}")
    if not len(soc):
        raise ValueError(f"SOC {soc.name} has no cores")

    incr("optimizer.runs")
    with get_instrumentation().timeit("optimizer.optimize_tam"):
        return _optimize_tam(soc, w_max, groups, capture_cycles, evaluator)


def _optimize_tam(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...],
    capture_cycles: int,
    evaluator: TamEvaluator | None,
) -> OptimizationResult:
    if evaluator is None:
        evaluator = TamEvaluator(soc, groups, capture_cycles=capture_cycles)
    architecture = _start_solution(evaluator, soc, w_max)

    # Optimize bottom-up: merge the least-utilized rail (lines 17-23).
    while len(architecture.rails) > 1:
        initial_total = evaluator.t_total(architecture)
        order = _rail_order_by_used(evaluator, architecture)
        architecture = merge_tams(evaluator, architecture, order[-1])
        if evaluator.t_total(architecture) == initial_total:
            break

    # Optimize top-down: merge the most-utilized rail (lines 24-30).
    skip = set()
    while len(architecture.rails) > 1:
        initial_total = evaluator.t_total(architecture)
        order = _rail_order_by_used(evaluator, architecture)
        architecture = merge_tams(evaluator, architecture, order[0])
        if evaluator.t_total(architecture) == initial_total:
            skip = {architecture.rails[order[0]]}
            break

    # Try the remaining rails, most-utilized first (lines 31-36).
    while True:
        remaining = [
            index
            for index in range(len(architecture.rails))
            if architecture.rails[index] not in skip
        ]
        if not remaining or len(architecture.rails) < 2:
            break
        initial_total = evaluator.t_total(architecture)
        target = max(
            remaining,
            key=lambda index: (
                evaluator.rail_stats(architecture.rails[index]).time_used,
                -index,
            ),
        )
        candidate_rail = architecture.rails[target]
        architecture = merge_tams(evaluator, architecture, target)
        if evaluator.t_total(architecture) == initial_total:
            skip.add(candidate_rail)

    # Final polish: move cores off bottleneck rails (line 37).
    architecture = core_reshuffle(evaluator, architecture)

    return OptimizationResult(
        architecture=architecture,
        evaluation=evaluator.evaluate(architecture),
        w_max=w_max,
    )


def evaluate_architecture(
    soc: Soc,
    architecture: TestRailArchitecture,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> Evaluation:
    """Evaluate a fixed architecture under a (possibly different) SI
    grouping — used e.g. to price the SI-oblivious baseline ``T_[8]``."""
    return TamEvaluator(soc, groups, capture_cycles=capture_cycles).evaluate(
        architecture
    )
