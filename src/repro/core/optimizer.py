"""SI-aware TAM design and optimization (paper, Section 4.2 / Fig. 6).

``optimize_tam`` implements Algorithm 2 (``TAM_Optimization``): a start
solution assigns every core its own one-wire TestRail, which is then merged
down (or padded with free wires) to the pin budget ``W_max`` and optimized
bottom-up, top-down, and by core reshuffling — always scoring candidates by
the *combined* objective ``T_soc = T_soc_in + T_soc_si``.

With no SI groups the combined objective degenerates to the InTest time and
the procedure becomes the TR-Architect baseline of Goel & Marinissen
(ITC 2002), exposed as :func:`repro.tam.tr_architect.tr_architect`.

The key departure from TR-Architect (paper, Section 4.2) is that several
*bottleneck TAMs* can exist at once — the InTest-critical rail plus the
``r_btn`` of every SI group on the SI schedule's critical chain — and free
wires are only worth giving to those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.bounds import intest_bandwidth_bound, si_floor
from repro.core.scheduling import (
    MOVE_CORE,
    MOVE_MERGE,
    MOVE_WIDEN,
    Evaluation,
    IncrementalTamEvaluator,
    PackedState,
    TamEvaluator,
    _excl_max,
)
from repro.runtime.instrumentation import get_instrumentation, incr
from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture, initial_architecture

#: Selectable optimizer backends: ``reference`` is the original
#: object-based Algorithm 2; ``incremental`` mirrors its decision
#: sequence over packed states with bounds pruning and (optionally) the
#: C move scanner; ``auto`` picks ``incremental`` whenever the default
#: cost model applies.  All backends produce bit-identical results.
OPTIMIZER_BACKENDS = ("auto", "reference", "incremental")


@dataclass(frozen=True)
class OptimizationResult:
    """Final architecture of an optimization run plus its evaluation."""

    architecture: TestRailArchitecture
    evaluation: Evaluation
    w_max: int

    @property
    def t_total(self) -> int:
        return self.evaluation.t_total


def bottleneck_rails(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    evaluation: Evaluation | None = None,
) -> set[int]:
    """Indices of the SOC's bottleneck TAMs.

    A rail is a bottleneck when assigning it extra wires can reduce
    ``T_soc``: every rail achieving the InTest maximum, plus the bottleneck
    rail ``r_btn(s)`` of every SI group on the critical chain of the SI
    schedule (a group is critical when it ends at ``T_soc_si`` or ends
    exactly where a critical group begins).
    """
    if evaluation is None:
        evaluation = evaluator.evaluate(architecture)
    bottlenecks = {
        index
        for index, stats in enumerate(evaluation.rail_stats)
        if stats.time_in == evaluation.t_in and evaluation.t_in > 0
    }
    if evaluation.schedule:
        critical_times = {evaluation.t_si}
        for entry in sorted(evaluation.schedule, key=lambda e: -e.end):
            if entry.end in critical_times:
                bottlenecks.add(entry.bottleneck_rail)
                if entry.begin > 0:
                    critical_times.add(entry.begin)
    return bottlenecks


def distribute_free_wires(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    free_wires: int,
) -> TestRailArchitecture:
    """``distributeFreeWires``: hand each free wire to the bottleneck rail
    whose widening minimizes ``T_soc``.

    Rail statistics (and therefore the bottleneck set) are recomputed after
    every assignment, as required by the paper.
    """
    incr("optimizer.wires_distributed", free_wires)
    for _ in range(free_wires):
        evaluation = evaluator.evaluate(architecture)
        candidates = bottleneck_rails(evaluator, architecture, evaluation)
        if not candidates:
            candidates = set(range(len(architecture.rails)))
        best_architecture = None
        best_total = None
        for index in sorted(candidates):
            candidate = architecture.with_rail(
                index, architecture.rails[index].widened(1)
            )
            total = evaluator.t_total(candidate)
            if best_total is None or total < best_total:
                best_total = total
                best_architecture = candidate
        assert best_architecture is not None
        architecture = best_architecture
    return architecture


def merge_tams(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
    rail_index: int,
) -> TestRailArchitecture:
    """``mergeTAMs``: merge the rail at ``rail_index`` with the partner,
    width, and leftover-wire redistribution that minimize ``T_soc``.

    For every other rail ``r_i`` the merged width is swept over
    ``[max(w_1, w_i), w_1 + w_i]``; freed wires go to bottleneck rails via
    :func:`distribute_free_wires`.  Returns the input architecture when no
    merge strictly improves ``T_soc``.
    """
    best_total = evaluator.t_total(architecture)
    best_architecture = architecture
    base = architecture.rails[rail_index]
    for partner_index, partner in enumerate(architecture.rails):
        if partner_index == rail_index:
            continue
        width_sum = base.width + partner.width
        width_min = max(base.width, partner.width)
        for width in range(width_min, width_sum + 1):
            incr("optimizer.merges_tried")
            merged = architecture.merged(rail_index, partner_index, width)
            leftover = width_sum - width
            if leftover:
                merged = distribute_free_wires(evaluator, merged, leftover)
            total = evaluator.t_total(merged)
            if total < best_total:
                best_total = total
                best_architecture = merged
    return best_architecture


def core_reshuffle(
    evaluator: TamEvaluator,
    architecture: TestRailArchitecture,
) -> TestRailArchitecture:
    """``coreReshuffle``: repeatedly move one core off a bottleneck rail
    onto another rail while that reduces ``T_soc``."""
    while True:
        evaluation = evaluator.evaluate(architecture)
        current_total = evaluation.t_total
        sources = bottleneck_rails(evaluator, architecture, evaluation)
        if not sources:
            sources = set(range(len(architecture.rails)))
        best_total = current_total
        best_architecture = None
        for source in sorted(sources):
            rail = architecture.rails[source]
            if len(rail.cores) < 2:
                continue
            for core_id in rail.cores:
                for destination in range(len(architecture.rails)):
                    if destination == source:
                        continue
                    incr("optimizer.core_moves_tried")
                    candidate = architecture.with_core_moved(
                        core_id, source, destination
                    )
                    total = evaluator.t_total(candidate)
                    if total < best_total:
                        best_total = total
                        best_architecture = candidate
        if best_architecture is None:
            return architecture
        architecture = best_architecture


def _rail_order_by_used(
    evaluator: TamEvaluator, architecture: TestRailArchitecture
) -> list[int]:
    """Rail indices sorted by non-increasing ``time_used(r)``."""
    return sorted(
        range(len(architecture.rails)),
        key=lambda index: (
            -evaluator.rail_stats(architecture.rails[index]).time_used,
            index,
        ),
    )


def _start_solution(
    evaluator: TamEvaluator,
    soc: Soc,
    w_max: int,
) -> TestRailArchitecture:
    """Lines 1–16 of Algorithm 2: one-wire rail per core, merged down or
    padded up to exactly ``w_max`` wires."""
    architecture = initial_architecture(soc.core_ids, width_per_rail=1)
    core_count = len(architecture.rails)
    if w_max < core_count:
        while len(architecture.rails) > w_max:
            order = _rail_order_by_used(evaluator, architecture)
            overflow = order[w_max]  # r_{W_max + 1} in the paper's sort
            best_total = None
            best_architecture = None
            for position in order[:w_max]:
                candidate = architecture.merged(position, overflow, 1)
                total = evaluator.t_total(candidate)
                if best_total is None or total < best_total:
                    best_total = total
                    best_architecture = candidate
            assert best_architecture is not None
            architecture = best_architecture
    elif w_max > core_count:
        architecture = distribute_free_wires(
            evaluator, architecture, w_max - core_count
        )
    return architecture


def resolve_optimizer_backend(
    backend: str, evaluator: TamEvaluator | None = None
) -> str:
    """The concrete backend (``reference`` or ``incremental``) a request
    resolves to.

    A custom evaluator forces the reference path — the incremental
    scorer replicates the default TestRail cost model only — so ``auto``
    falls back silently while an explicit ``incremental`` request errors
    out rather than optimize against the wrong model.

    Raises:
        ValueError: On an unknown backend name or on
            ``backend="incremental"`` with a custom evaluator.
    """
    if backend not in OPTIMIZER_BACKENDS:
        raise ValueError(
            f"unknown optimizer backend {backend!r}; "
            f"choose from {', '.join(OPTIMIZER_BACKENDS)}"
        )
    if evaluator is not None:
        if backend == "incremental":
            raise ValueError(
                "the incremental backend replicates the default TestRail "
                "cost model only; drop the custom evaluator or use "
                "backend='reference'"
            )
        return "reference"
    return "reference" if backend == "reference" else "incremental"


def optimize_tam(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
    evaluator: TamEvaluator | None = None,
    backend: str = "auto",
) -> OptimizationResult:
    """Solve Problem ``P_SI_opt`` with Algorithm 2 (``TAM_Optimization``).

    Args:
        soc: The SOC (every core becomes a wrapped TAM client).
        w_max: SOC pin budget ``W_max``.
        groups: Compacted SI test groups; pass ``()`` for the InTest-only
            TR-Architect baseline.
        capture_cycles: Launch/capture cycles charged per SI pattern.
        evaluator: Custom cost model (e.g. a Test Bus or power-aware
            evaluator); defaults to the paper's TestRail model over
            ``groups``.
        backend: One of :data:`OPTIMIZER_BACKENDS`.  The ``incremental``
            backend mirrors the reference decision sequence over a packed
            state representation (with bounds pruning and the optional C
            move scanner) and returns bit-identical results; ``auto``
            uses it whenever the default cost model applies.

    Returns:
        The optimized architecture and its evaluation.

    Raises:
        ValueError: If ``w_max`` is not positive, the SOC has no cores,
            or the backend selection is invalid.
    """
    if w_max <= 0:
        raise ValueError(f"W_max must be positive, got {w_max}")
    if not len(soc):
        raise ValueError(f"SOC {soc.name} has no cores")

    chosen = resolve_optimizer_backend(backend, evaluator)
    incr("optimizer.runs")
    incr(f"optimizer.backend.{chosen}")
    with get_instrumentation().timeit("optimizer.optimize_tam"):
        if chosen == "incremental":
            return _IncrementalOptimizer(
                soc, w_max, groups, capture_cycles
            ).run()
        return _optimize_tam(soc, w_max, groups, capture_cycles, evaluator)


def _optimize_tam(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...],
    capture_cycles: int,
    evaluator: TamEvaluator | None,
) -> OptimizationResult:
    if evaluator is None:
        evaluator = TamEvaluator(soc, groups, capture_cycles=capture_cycles)
    architecture = _start_solution(evaluator, soc, w_max)

    # Optimize bottom-up: merge the least-utilized rail (lines 17-23).
    while len(architecture.rails) > 1:
        initial_total = evaluator.t_total(architecture)
        order = _rail_order_by_used(evaluator, architecture)
        architecture = merge_tams(evaluator, architecture, order[-1])
        if evaluator.t_total(architecture) == initial_total:
            break

    # Optimize top-down: merge the most-utilized rail (lines 24-30).
    skip = set()
    while len(architecture.rails) > 1:
        initial_total = evaluator.t_total(architecture)
        order = _rail_order_by_used(evaluator, architecture)
        architecture = merge_tams(evaluator, architecture, order[0])
        if evaluator.t_total(architecture) == initial_total:
            skip = {architecture.rails[order[0]]}
            break

    # Try the remaining rails, most-utilized first (lines 31-36).
    while True:
        remaining = [
            index
            for index in range(len(architecture.rails))
            if architecture.rails[index] not in skip
        ]
        if not remaining or len(architecture.rails) < 2:
            break
        initial_total = evaluator.t_total(architecture)
        target = max(
            remaining,
            key=lambda index: (
                evaluator.rail_stats(architecture.rails[index]).time_used,
                -index,
            ),
        )
        candidate_rail = architecture.rails[target]
        architecture = merge_tams(evaluator, architecture, target)
        if evaluator.t_total(architecture) == initial_total:
            skip.add(candidate_rail)

    # Final polish: move cores off bottleneck rails (line 37).
    architecture = core_reshuffle(evaluator, architecture)

    return OptimizationResult(
        architecture=architecture,
        evaluation=evaluator.evaluate(architecture),
        w_max=w_max,
    )


class _IncrementalOptimizer:
    """Algorithm 2 over packed states — the ``incremental`` backend.

    Mirrors ``_optimize_tam`` decision for decision: the same candidate
    enumeration order, the same strict-``<`` selections, the same
    tie-breaks, so the final :class:`OptimizationResult` is bit-identical
    to the reference backend.  What changes is the cost of a candidate:
    :class:`IncrementalTamEvaluator` patches only the (at most two)
    affected rails, and two sound lower bounds skip candidates that
    provably cannot beat the incumbent:

    * ``floor_total`` — the pin-bandwidth bound on the InTest phase plus
      the SI floor (``core/bounds.py``), valid for every architecture
      within the pin budget; once the incumbent reaches it, no candidate
      can *strictly* beat the incumbent, which is what selection needs.
    * the *exclusion bound* — unchanged rails keep their InTest times and
      group contributions, so any single-move candidate costs at least
      ``max`` (unchanged ``time_in``) + ``max_s`` (unchanged involved
      rail time of ``s``), answered in O(groups) from the packed top-3
      tables.  Not applied to merge candidates with leftover wires: the
      redistribution may widen any rail.

    A pruned candidate's cost is at least the incumbent's at the moment
    of pruning, and the incumbent only improves, so pruning never alters
    which candidate a strict-``<`` scan selects — bit-identity survives.
    """

    def __init__(
        self,
        soc: Soc,
        w_max: int,
        groups: tuple[SITestGroup, ...],
        capture_cycles: int,
    ) -> None:
        self.soc = soc
        self.w_max = w_max
        self.evaluator = IncrementalTamEvaluator(
            soc, groups, capture_cycles=capture_cycles
        )
        self.floor_total = intest_bandwidth_bound(soc, w_max) + si_floor(
            soc, self.evaluator.groups, w_max, capture_cycles
        )

    def run(self) -> OptimizationResult:
        evaluator = self.evaluator
        state = self._start_solution()

        # Optimize bottom-up: merge the least-utilized rail.
        while len(state.cores) > 1:
            initial_total = state.t_total
            order = self._order_by_used(state)
            state = self._merge_tams(state, order[-1])
            if state.t_total == initial_total:
                break

        # Optimize top-down: merge the most-utilized rail.
        skip: set[tuple] = set()
        while len(state.cores) > 1:
            initial_total = state.t_total
            order = self._order_by_used(state)
            state = self._merge_tams(state, order[0])
            if state.t_total == initial_total:
                skip = {(state.cores[order[0]], state.widths[order[0]])}
                break

        # Try the remaining rails, most-utilized first.
        while True:
            remaining = [
                index
                for index in range(len(state.cores))
                if (state.cores[index], state.widths[index]) not in skip
            ]
            if not remaining or len(state.cores) < 2:
                break
            initial_total = state.t_total
            target = max(
                remaining,
                key=lambda index: (evaluator.rail_used(state, index), -index),
            )
            candidate_rail = (state.cores[target], state.widths[target])
            state = self._merge_tams(state, target)
            if state.t_total == initial_total:
                skip.add(candidate_rail)

        # Final polish: move cores off bottleneck rails.
        state = self._core_reshuffle(state)

        architecture = evaluator.state_architecture(state)
        return OptimizationResult(
            architecture=architecture,
            evaluation=evaluator.evaluate(architecture),
            w_max=self.w_max,
        )

    # ------------------------------------------------------------------
    # pruning bounds and the shared strict-< scan

    def _move_bound(
        self, state: PackedState, first: int, second: int = -1
    ) -> int:
        """Exclusion lower bound on any candidate that changes only the
        given rails (``second`` may be removed by the move)."""
        bound = _excl_max(state.in_top, first, second)
        best_group = 0
        for top in state.group_top:
            value = _excl_max(top, first, second)
            if value > best_group:
                best_group = value
        return bound + best_group

    def _select_first_min(self, state, moves):
        """First-candidate-initialised strict-``<`` selection — the
        ``best_total=None`` scans of ``distribute_free_wires`` and
        ``_start_solution``, where the first candidate always wins the
        initial comparison and therefore can never be pruned.  One batch
        scores everything; the walk replicates the reference order."""
        if len(moves) == 1:
            return moves[0]
        best_total = None
        best_move = None
        for move, total in zip(
            moves, self.evaluator.score_moves(state, moves)
        ):
            if best_total is None or total < best_total:
                best_total = total
                best_move = move
        return best_move

    def _scan_bounded(self, state, moves, bounds, incumbent):
        """Strict-``<`` scan against an existing ``incumbent`` total.

        A candidate whose exclusion bound is at least the incumbent can
        never win a strict-``<`` comparison (the running best only
        decreases from the incumbent), so it is skipped unscored; the
        survivors are scored in a single batch and walked in reference
        enumeration order.  Returns the winning move, or ``None`` when
        nothing strictly improves.
        """
        kept = []
        pruned = 0
        for move, bound in zip(moves, bounds):
            if bound >= incumbent:
                pruned += 1
            else:
                kept.append(move)
        if pruned:
            incr("optimizer.moves_pruned", pruned)
        best_total = incumbent
        best_move = None
        if kept:
            for move, total in zip(
                kept, self.evaluator.score_moves(state, kept)
            ):
                if total < best_total:
                    best_total = total
                    best_move = move
        return best_move

    # ------------------------------------------------------------------
    # the Algorithm 2 building blocks, mirrored over packed states

    def _order_by_used(self, state: PackedState) -> list[int]:
        evaluator = self.evaluator
        return sorted(
            range(len(state.cores)),
            key=lambda index: (-evaluator.rail_used(state, index), index),
        )

    def _start_solution(self) -> PackedState:
        evaluator = self.evaluator
        core_ids = self.soc.core_ids
        state = evaluator.pack(
            [(core_id,) for core_id in core_ids], [1] * len(core_ids)
        )
        core_count = len(core_ids)
        if self.w_max < core_count:
            while len(state.cores) > self.w_max:
                order = self._order_by_used(state)
                overflow = order[self.w_max]  # r_{W_max + 1}
                # The floor does not apply here (the intermediate
                # architectures still exceed the pin budget) and the
                # first candidate always initialises the best, so score
                # the whole merge sweep in a single batch.
                moves = [
                    (MOVE_MERGE, position, overflow, 1)
                    for position in order[: self.w_max]
                ]
                best_move = self._select_first_min(state, moves)
                state = evaluator.apply_move(state, best_move)
        elif self.w_max > core_count:
            state = self._distribute(state, self.w_max - core_count)
        return state

    def _distribute(self, state: PackedState, free_wires: int) -> PackedState:
        evaluator = self.evaluator
        incr("optimizer.wires_distributed", free_wires)
        for _ in range(free_wires):
            candidates = sorted(evaluator.state_bottlenecks(state))
            if not candidates:
                candidates = list(range(len(state.cores)))
            moves = [(MOVE_WIDEN, index, 0, 0) for index in candidates]
            best_move = self._select_first_min(state, moves)
            state = evaluator.apply_move(state, best_move)
        return state

    def _merge_tams(self, state: PackedState, rail_index: int) -> PackedState:
        evaluator = self.evaluator
        floor = self.floor_total
        best_total = state.t_total
        base_width = state.widths[rail_index]
        partners = [
            index
            for index in range(len(state.cores))
            if index != rail_index
        ]
        if best_total <= floor:
            # No merge can strictly improve an incumbent at the floor;
            # count the enumeration the reference would have performed
            # (min(w_1, w_i) + 1 widths per partner) and keep the state.
            tried = sum(
                min(base_width, state.widths[index]) + 1
                for index in partners
            )
            incr("optimizer.merges_tried", tried)
            incr("optimizer.moves_pruned", tried)
            return state

        # The merged rail serializes the cores of both rails on at most
        # ``w_1 + w_i`` wires, whatever the sweep width or the leftover
        # redistribution — when its arithmetic bound already matches the
        # incumbent, the whole partner sweep is pruned unbuilt.
        skip_partner = {
            index
            for index in partners
            if evaluator.merged_rail_bound(
                state.cores[rail_index],
                state.cores[index],
                base_width + state.widths[index],
            )
            >= best_total
        }

        # Exact merges (leftover == 0, one per partner: width == w_1 + w_i)
        # change exactly two rails, so the exclusion bound covers them and
        # the survivors can be pre-scored in a single batch — scoring is
        # side-effect-free, so batch order cannot alter the walk below.
        exact_totals: dict[int, int] = {}
        batch = [
            index
            for index in partners
            if index not in skip_partner
            and self._move_bound(state, rail_index, index) < best_total
        ]
        if batch:
            exact_moves = [
                (MOVE_MERGE, rail_index, index,
                 base_width + state.widths[index])
                for index in batch
            ]
            for index, total in zip(
                batch, evaluator.score_moves(state, exact_moves)
            ):
                exact_totals[index] = total

        best_state = state
        best_move = None
        tried = 0
        pruned = 0
        for partner_index in partners:
            width_sum = base_width + state.widths[partner_index]
            width_min = max(base_width, state.widths[partner_index])
            if partner_index in skip_partner:
                count = width_sum - width_min + 1
                tried += count
                pruned += count
                continue
            for width in range(width_min, width_sum + 1):
                tried += 1
                if best_total <= floor:
                    pruned += 1
                    continue
                if width == width_sum:
                    total = exact_totals.get(partner_index)
                    if total is None:
                        # Bound-pruned at batch time; the bound only
                        # tightens as the incumbent improves.
                        pruned += 1
                    elif total < best_total:
                        best_total = total
                        best_move = (
                            MOVE_MERGE, rail_index, partner_index, width
                        )
                        best_state = None
                else:
                    # Redistribution may widen any rail, so no exclusion
                    # bound applies.  The C engine replays the merge plus
                    # the full wire-by-wire greedy redistribution and
                    # returns the candidate's total with the chosen rails,
                    # so only a *winning* candidate is materialized.
                    move = (MOVE_MERGE, rail_index, partner_index, width)
                    leftover = width_sum - width
                    scored = evaluator.score_merge_distribute(
                        state, rail_index, partner_index, width, leftover
                    )
                    if scored is None:
                        # Engine unavailable — build the candidate in full.
                        merged = self._distribute(
                            evaluator.apply_move(state, move), leftover
                        )
                        if merged.t_total < best_total:
                            best_total = merged.t_total
                            best_state = merged
                            best_move = None
                    else:
                        incr("optimizer.wires_distributed", leftover)
                        total, choices = scored
                        if total < best_total:
                            best_total = total
                            merged = evaluator.apply_move(state, move)
                            for rail in choices:
                                merged = evaluator.apply_move(
                                    merged, (MOVE_WIDEN, rail, 0, 0)
                                )
                            best_state = merged
                            best_move = None
        incr("optimizer.merges_tried", tried)
        if pruned:
            incr("optimizer.moves_pruned", pruned)
        if best_state is None:
            best_state = evaluator.apply_move(state, best_move)
        return best_state

    def _core_reshuffle(self, state: PackedState) -> PackedState:
        evaluator = self.evaluator
        floor = self.floor_total
        while True:
            current_total = state.t_total
            sources = sorted(evaluator.state_bottlenecks(state))
            if not sources:
                sources = list(range(len(state.cores)))
            eligible = [
                source
                for source in sources
                if len(state.cores[source]) >= 2
            ]
            destinations = len(state.cores) - 1
            count = destinations * sum(
                len(state.cores[source]) for source in eligible
            )
            if not count:
                return state
            incr("optimizer.core_moves_tried", count)
            if current_total <= floor:
                incr("optimizer.moves_pruned", count)
                return state
            moves = []
            bounds = []
            pair_bounds: dict[tuple[int, int], int] = {}
            for source in eligible:
                for core_id in state.cores[source]:
                    for destination in range(len(state.cores)):
                        if destination == source:
                            continue
                        pair = (source, destination)
                        bound = pair_bounds.get(pair)
                        if bound is None:
                            bound = pair_bounds[pair] = self._move_bound(
                                state, source, destination
                            )
                        moves.append(
                            (MOVE_CORE, core_id, source, destination)
                        )
                        bounds.append(bound)
            best_move = self._scan_bounded(
                state, moves, bounds, current_total
            )
            if best_move is None:
                return state
            state = evaluator.apply_move(state, best_move)


def evaluate_architecture(
    soc: Soc,
    architecture: TestRailArchitecture,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
    backend: str = "auto",
) -> Evaluation:
    """Evaluate a fixed architecture under a (possibly different) SI
    grouping — used e.g. to price the SI-oblivious baseline ``T_[8]``.

    ``backend`` selects the evaluator class the same way
    :func:`optimize_tam` does; full evaluations are identical either way
    (the incremental evaluator only adds move-scoring machinery), so the
    flag exists to keep ``evaluate``/``--verify`` flows on the same code
    path as the optimizer run they are checking.
    """
    chosen = resolve_optimizer_backend(backend)
    cls = IncrementalTamEvaluator if chosen == "incremental" else TamEvaluator
    return cls(soc, groups, capture_cycles=capture_cycles).evaluate(
        architecture
    )
