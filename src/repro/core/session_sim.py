"""Discrete-event simulation of a complete SOC test session.

An independent checker of the analytic cost model: the simulator *executes*
a test plan — every core's InTest serially on its rail, then every SI
group over its rails at its scheduled window — as discrete events over
explicit rail resources, enforcing mutual exclusion, and reports the
makespan it observed.  Agreement with
:meth:`repro.core.scheduling.TamEvaluator.evaluate` is asserted in the
test suite, so the closed-form times and the executable semantics cannot
drift apart.

The simulator also produces a complete event trace (useful for debugging
schedules and for the Gantt/SVG views to be checked against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture
from repro.wrapper.timing import core_test_time

if TYPE_CHECKING:
    from repro.core.scheduling import Evaluation


@dataclass(frozen=True)
class SessionEvent:
    """One executed activity.

    Attributes:
        kind: ``"intest"`` or ``"si"``.
        label: Core id (InTest) or SI group id.
        rails: Rails the activity occupied.
        begin: Start time.
        end: Completion time.
    """

    kind: str
    label: int
    rails: frozenset[int]
    begin: int
    end: int


class SimulationError(RuntimeError):
    """Raised when the plan violates resource exclusivity."""


@dataclass
class SessionTrace:
    """Outcome of a simulated session."""

    events: list[SessionEvent] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return max((event.end for event in self.events), default=0)

    @property
    def intest_end(self) -> int:
        return max(
            (event.end for event in self.events if event.kind == "intest"),
            default=0,
        )

    def busy_intervals(self, rail: int) -> list[tuple[int, int]]:
        """Sorted (begin, end) occupancy of one rail."""
        intervals = [
            (event.begin, event.end)
            for event in self.events
            if rail in event.rails and event.end > event.begin
        ]
        return sorted(intervals)


def simulate_session(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
) -> SessionTrace:
    """Execute the plan implied by an evaluation and verify exclusivity.

    InTest: each rail runs its cores back to back from time 0.  SI phase:
    each scheduled group occupies all its rails over
    ``[t_in + begin, t_in + end)``.  Every rail is a unit resource; any
    double booking raises :class:`SimulationError`.

    Returns the full event trace.
    """
    trace = SessionTrace()

    # InTest phase: serial per rail.
    for rail_index, rail in enumerate(architecture.rails):
        clock = 0
        for core_id in rail.cores:
            duration = core_test_time(soc.core_by_id(core_id), rail.width)
            if duration == 0:
                continue
            trace.events.append(
                SessionEvent(
                    kind="intest",
                    label=core_id,
                    rails=frozenset({rail_index}),
                    begin=clock,
                    end=clock + duration,
                )
            )
            clock += duration

    # SI phase: as scheduled, offset by the InTest phase end.
    t_in = evaluation.t_in
    for entry in evaluation.schedule:
        trace.events.append(
            SessionEvent(
                kind="si",
                label=entry.group_id,
                rails=entry.rails,
                begin=t_in + entry.begin,
                end=t_in + entry.end,
            )
        )

    _check_exclusivity(trace, len(architecture.rails))
    return trace


def _check_exclusivity(trace: SessionTrace, rail_count: int) -> None:
    """Sweep-line over each rail's intervals; overlap is an error."""
    for rail in range(rail_count):
        intervals = trace.busy_intervals(rail)
        for (begin_a, end_a), (begin_b, end_b) in zip(
            intervals, intervals[1:]
        ):
            if begin_b < end_a:
                raise SimulationError(
                    f"rail {rail} double-booked: [{begin_a}, {end_a}) "
                    f"overlaps [{begin_b}, {end_b})"
                )


def utilization_from_trace(
    trace: SessionTrace, rail_count: int
) -> list[float]:
    """Busy fraction per rail, measured from the executed trace."""
    makespan = trace.makespan
    if makespan == 0:
        return [0.0] * rail_count
    result = []
    for rail in range(rail_count):
        busy = sum(
            end - begin for begin, end in trace.busy_intervals(rail)
        )
        result.append(busy / makespan)
    return result
