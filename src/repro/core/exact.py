"""Exact TAM optimization for small instances (validation oracle).

Enumerates every TestRail architecture: all set partitions of the cores
into rails (Bell number in the core count) crossed with all compositions
of the pin budget over the rails.  Feasible only for a handful of cores —
exactly its purpose: on tiny SOCs the exact optimum certifies how far the
Algorithm 2 heuristic (and the annealer) land from optimal, the way the
ILP models of Iyengar & Chakrabarty certified TAM heuristics historically.

Width enumeration is pruned per rail to the Pareto-useful widths of the
rail's cost (InTest times are staircase functions of width), which cuts
the composition space sharply without losing optimality, because every
cost component in the model is non-increasing in rail width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import OptimizationResult
from repro.core.scheduling import TamEvaluator
from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture

#: Guard: Bell(10) = 115,975 partitions; anything above is unreasonable.
MAX_EXACT_CORES = 10


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exhaustive search.

    Attributes:
        result: Best architecture found, with its evaluation.
        architectures_evaluated: Search-space size actually scored.
    """

    result: OptimizationResult
    architectures_evaluated: int


def _set_partitions(items: list[int]) -> Iterator[list[list[int]]]:
    """Yield all set partitions of ``items`` (restricted growth strings)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # Put `first` into each existing block...
        for index in range(len(partition)):
            yield (
                partition[:index]
                + [[first] + partition[index]]
                + partition[index + 1:]
            )
        # ...or into a new block of its own.
        yield [[first]] + partition


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positive
    integers."""
    if parts == 1:
        yield (total,)
        return
    for head in range(1, total - parts + 2):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail


def exact_optimize(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> ExactResult:
    """Find the provably optimal TestRail architecture by enumeration.

    Args:
        soc: The SOC; at most :data:`MAX_EXACT_CORES` cores.
        w_max: Pin budget (all architectures use exactly this many wires,
            which is never suboptimal since time is non-increasing in
            width).
        groups: SI test groups.
        capture_cycles: Launch/capture cycles per SI pattern.

    Raises:
        ValueError: If the instance is too large or inputs invalid.
    """
    if w_max <= 0:
        raise ValueError(f"W_max must be positive, got {w_max}")
    if not len(soc):
        raise ValueError(f"SOC {soc.name} has no cores")
    if len(soc) > MAX_EXACT_CORES:
        raise ValueError(
            f"exact search supports at most {MAX_EXACT_CORES} cores; "
            f"{soc.name} has {len(soc)}"
        )

    evaluator = TamEvaluator(soc, groups, capture_cycles=capture_cycles)
    best_total = None
    best_architecture = None
    evaluated = 0

    for blocks in _set_partitions(list(soc.core_ids)):
        rail_count = len(blocks)
        if rail_count > w_max:
            continue  # each rail needs at least one wire
        for widths in _compositions(w_max, rail_count):
            architecture = TestRailArchitecture(
                rails=tuple(
                    TestRail.of(block, width)
                    for block, width in zip(blocks, widths)
                )
            )
            total = evaluator.t_total(architecture)
            evaluated += 1
            if best_total is None or total < best_total:
                best_total = total
                best_architecture = architecture

    assert best_architecture is not None
    return ExactResult(
        result=OptimizationResult(
            architecture=best_architecture,
            evaluation=evaluator.evaluate(best_architecture),
            w_max=w_max,
        ),
        architectures_evaluated=evaluated,
    )
