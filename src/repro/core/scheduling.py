"""SI test time calculation and scheduling (paper, Section 4.1).

Implements ``CalculateSITestTime`` and ``ScheduleSITest`` (Fig. 5 /
Algorithm 1) plus the memoizing :class:`TamEvaluator` that the optimizers
use to score candidate TestRail architectures.

Timing model (see DESIGN.md §5): in SI test mode the wrapper chains of a
core contain its wrapper output cells only, balanced over the rail width,
so a core contributes ``ceil(woc / width)`` shift cycles per pattern; cores
on a rail are daisy-chained, so a rail's per-pattern depth for group ``s``
is the sum over its cores in ``C(s)``, plus one launch/capture cycle.  The
group's testing time is set by its *bottleneck* rail — the involved rail
with the longest time — exactly the arithmetic of the paper's Example 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.runtime.instrumentation import incr
from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture
from repro.wrapper.timing import core_test_time


@dataclass(frozen=True)
class RailStats:
    """Memoized per-rail figures (paper, Fig. 4 ``TestRail`` structure).

    Attributes:
        time_in: ``time_in(r)`` — serial InTest time of the rail's cores.
        si_depths: Per SI group, the rail's per-pattern shift depth
            (0 when the rail carries no core of the group).
        time_si: ``time_si(r)`` — the rail's own cumulative SI occupancy.
    """

    time_in: int
    si_depths: tuple[int, ...]
    time_si: int

    @property
    def time_used(self) -> int:
        """``time_used(r)`` — actual utilization, used to rank rails."""
        return self.time_in + self.time_si


@dataclass(frozen=True)
class SIScheduleEntry:
    """Schedule information of one SI test group (Fig. 4 ``SI test s``).

    Attributes:
        group_id: Id of the group within the grouping.
        time_si: ``time_si(s)`` — testing time of the group.
        rails: ``R_tam(s)`` — indices of the rails involved.
        bottleneck_rail: ``r_btn(s)`` — index of the rail that sets
            ``time_si(s)``.
        begin: ``begin(s)`` — scheduled start time within the SI phase.
        end: ``end(s)`` — scheduled completion time.
    """

    group_id: int
    time_si: int
    rails: frozenset[int]
    bottleneck_rail: int
    begin: int
    end: int


@dataclass(frozen=True)
class Evaluation:
    """Complete cost breakdown of a TestRail architecture.

    ``t_total = t_in + t_si`` because InTest and SI test reuse the same
    wrapper cells and therefore never overlap (paper, Section 4).
    """

    t_in: int
    t_si: int
    schedule: tuple[SIScheduleEntry, ...]
    rail_stats: tuple[RailStats, ...]

    @property
    def t_total(self) -> int:
        return self.t_in + self.t_si


class TamEvaluator:
    """Scores TestRail architectures for an SOC and a fixed SI grouping.

    Rail statistics are memoized on the immutable :class:`TestRail` values,
    so evaluating the thousands of candidate architectures visited by the
    optimizer only recomputes the one or two rails that changed.
    """

    def __init__(
        self,
        soc: Soc,
        groups: tuple[SITestGroup, ...] = (),
        capture_cycles: int = 1,
        exact_schedule: bool = False,
    ) -> None:
        """Args:
        soc: The SOC under optimization.
        groups: SI test groups (possibly empty for InTest-only use).
        capture_cycles: Launch/capture cycles charged per SI pattern.
        exact_schedule: Pack the SI phase with the optimal (permutation
            search) scheduler instead of Algorithm 1.  Only feasible for
            small group counts; evaluation cost grows factorially.
        """
        self.soc = soc
        self.groups = tuple(group for group in groups if not group.is_empty)
        self.capture_cycles = capture_cycles
        self.exact_schedule = exact_schedule
        self._core_of = {core.core_id: core for core in soc}
        self._woc_of = {core.core_id: core.woc_count for core in soc}
        self._group_cores = [group.cores for group in self.groups]
        self._group_patterns = [group.patterns for group in self.groups]
        self._rail_cache: dict[TestRail, RailStats] = {}
        unknown = {
            core_id
            for cores in self._group_cores
            for core_id in cores
            if core_id not in self._core_of
        }
        if unknown:
            raise ValueError(f"SI groups reference unknown cores: {sorted(unknown)}")

    def rail_stats(self, rail: TestRail) -> RailStats:
        """Compute (or fetch) the memoized statistics of a rail."""
        stats = self._rail_cache.get(rail)
        if stats is not None:
            return stats
        incr("evaluator.rail_stats_computed")
        width = rail.width
        time_in = 0
        for core_id in rail.cores:
            time_in += core_test_time(self._core_of[core_id], width)
        depths = []
        time_si = 0
        for cores, patterns in zip(self._group_cores, self._group_patterns):
            depth = 0
            for core_id in rail.cores:
                if core_id in cores:
                    woc = self._woc_of[core_id]
                    if woc:
                        depth += -(-woc // width)
            depths.append(depth)
            if depth:
                time_si += patterns * (depth + self.capture_cycles)
        stats = RailStats(
            time_in=time_in, si_depths=tuple(depths), time_si=time_si
        )
        self._rail_cache[rail] = stats
        return stats

    def calculate_si_test_times(
        self, architecture: TestRailArchitecture
    ) -> list[SIScheduleEntry]:
        """``CalculateSITestTime``: unscheduled entries (begin/end = 0).

        ``time_si(s)`` is the maximum over the involved rails of the rail's
        shift time for the group; the maximizing rail is ``r_btn(s)``.
        """
        all_stats = [self.rail_stats(rail) for rail in architecture.rails]
        entries = []
        for group_index, group in enumerate(self.groups):
            patterns = self._group_patterns[group_index]
            involved = []
            best_time = 0
            bottleneck = -1
            for rail_index, stats in enumerate(all_stats):
                depth = stats.si_depths[group_index]
                if depth == 0:
                    continue
                involved.append(rail_index)
                rail_time = patterns * (depth + self.capture_cycles)
                if rail_time > best_time:
                    best_time = rail_time
                    bottleneck = rail_index
            if not involved:
                # Group cores absent from the architecture; treat as free.
                continue
            entries.append(
                SIScheduleEntry(
                    group_id=group.group_id,
                    time_si=best_time,
                    rails=frozenset(involved),
                    bottleneck_rail=bottleneck,
                    begin=0,
                    end=0,
                )
            )
        return entries

    def schedule(
        self, entries: list[SIScheduleEntry]
    ) -> tuple[tuple[SIScheduleEntry, ...], int]:
        """Scheduling policy hook — Algorithm 1 by default.

        Subclasses model other access mechanisms (e.g. the Test Bus
        architecture, which serializes all external tests) by overriding
        this method.
        """
        if self.exact_schedule:
            from repro.core.exact_schedule import exact_si_schedule

            incr("scheduler.exact_runs")
            result = exact_si_schedule(entries)
            return result.schedule, result.t_si
        return schedule_si_tests(entries)

    def evaluate(self, architecture: TestRailArchitecture) -> Evaluation:
        """Full evaluation: InTest time, scheduled SI time, per-rail stats."""
        incr("evaluator.evaluations")
        all_stats = tuple(self.rail_stats(rail) for rail in architecture.rails)
        t_in = max((stats.time_in for stats in all_stats), default=0)
        entries = self.calculate_si_test_times(architecture)
        schedule, t_si = self.schedule(entries)
        return Evaluation(
            t_in=t_in, t_si=t_si, schedule=schedule, rail_stats=all_stats
        )

    def t_total(self, architecture: TestRailArchitecture) -> int:
        """Shortcut for ``evaluate(architecture).t_total``."""
        return self.evaluate(architecture).t_total


def schedule_si_tests(
    entries: list[SIScheduleEntry],
) -> tuple[tuple[SIScheduleEntry, ...], int]:
    """``ScheduleSITest`` (Fig. 5 / Algorithm 1).

    Greedily packs SI tests onto the time axis: at the current time, any
    unscheduled test whose rails are all idle may start (the longest one is
    chosen when several are eligible — the paper leaves the tie-break
    open); when nothing fits, time advances to the earliest completion.

    Returns the scheduled entries (with ``begin``/``end`` filled in) and
    ``T_soc_si``.
    """
    incr("scheduler.greedy_runs")
    unscheduled = sorted(entries, key=lambda e: (-e.time_si, e.group_id))
    running: list[SIScheduleEntry] = []
    scheduled: list[SIScheduleEntry] = []
    current_time = 0
    t_si = 0

    while unscheduled:
        busy: set[int] = set()
        for entry in running:
            if entry.end > current_time:
                busy.update(entry.rails)
        chosen = None
        for entry in unscheduled:
            if busy.isdisjoint(entry.rails):
                chosen = entry
                break
        if chosen is not None:
            placed = SIScheduleEntry(
                group_id=chosen.group_id,
                time_si=chosen.time_si,
                rails=chosen.rails,
                bottleneck_rail=chosen.bottleneck_rail,
                begin=current_time,
                end=current_time + chosen.time_si,
            )
            unscheduled.remove(chosen)
            running.append(placed)
            scheduled.append(placed)
            t_si = max(t_si, placed.end)
        else:
            future_ends = [e.end for e in running if e.end > current_time]
            if not future_ends:
                raise RuntimeError(
                    "ScheduleSITest stalled: no running test to wait for"
                )
            current_time = min(future_ends)

    scheduled.sort(key=lambda e: (e.begin, e.group_id))
    return tuple(scheduled), t_si
