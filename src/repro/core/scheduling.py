"""SI test time calculation and scheduling (paper, Section 4.1).

Implements ``CalculateSITestTime`` and ``ScheduleSITest`` (Fig. 5 /
Algorithm 1) plus the memoizing :class:`TamEvaluator` that the optimizers
use to score candidate TestRail architectures.

Timing model (see DESIGN.md §5): in SI test mode the wrapper chains of a
core contain its wrapper output cells only, balanced over the rail width,
so a core contributes ``ceil(woc / width)`` shift cycles per pattern; cores
on a rail are daisy-chained, so a rail's per-pattern depth for group ``s``
is the sum over its cores in ``C(s)``, plus one launch/capture cycle.  The
group's testing time is set by its *bottleneck* rail — the involved rail
with the longest time — exactly the arithmetic of the paper's Example 1.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.runtime.instrumentation import incr
from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture
from repro.wrapper.timing import core_test_time

#: Move kinds of the incremental evaluator, shared with the C engine:
#: ``(MOVE_WIDEN, rail, 0, 0)`` adds one wire to ``rail``;
#: ``(MOVE_CORE, core_id, source, destination)`` moves one core;
#: ``(MOVE_MERGE, first, second, width)`` merges two rails onto ``width``
#: wires, the merged rail taking ``first``'s position.
MOVE_WIDEN = 0
MOVE_CORE = 1
MOVE_MERGE = 2


@dataclass(frozen=True)
class RailStats:
    """Memoized per-rail figures (paper, Fig. 4 ``TestRail`` structure).

    Attributes:
        time_in: ``time_in(r)`` — serial InTest time of the rail's cores.
        si_depths: Per SI group, the rail's per-pattern shift depth
            (0 when the rail carries no core of the group).
        time_si: ``time_si(r)`` — the rail's own cumulative SI occupancy.
    """

    time_in: int
    si_depths: tuple[int, ...]
    time_si: int

    @property
    def time_used(self) -> int:
        """``time_used(r)`` — actual utilization, used to rank rails."""
        return self.time_in + self.time_si


@dataclass(frozen=True)
class SIScheduleEntry:
    """Schedule information of one SI test group (Fig. 4 ``SI test s``).

    Attributes:
        group_id: Id of the group within the grouping.
        time_si: ``time_si(s)`` — testing time of the group.
        rails: ``R_tam(s)`` — indices of the rails involved.
        bottleneck_rail: ``r_btn(s)`` — index of the rail that sets
            ``time_si(s)``.
        begin: ``begin(s)`` — scheduled start time within the SI phase.
        end: ``end(s)`` — scheduled completion time.
    """

    group_id: int
    time_si: int
    rails: frozenset[int]
    bottleneck_rail: int
    begin: int
    end: int


@dataclass(frozen=True)
class Evaluation:
    """Complete cost breakdown of a TestRail architecture.

    ``t_total = t_in + t_si`` because InTest and SI test reuse the same
    wrapper cells and therefore never overlap (paper, Section 4).
    """

    t_in: int
    t_si: int
    schedule: tuple[SIScheduleEntry, ...]
    rail_stats: tuple[RailStats, ...]

    @property
    def t_total(self) -> int:
        return self.t_in + self.t_si


class TamEvaluator:
    """Scores TestRail architectures for an SOC and a fixed SI grouping.

    Rail statistics are memoized on the immutable :class:`TestRail` values,
    so evaluating the thousands of candidate architectures visited by the
    optimizer only recomputes the one or two rails that changed.
    """

    def __init__(
        self,
        soc: Soc,
        groups: tuple[SITestGroup, ...] = (),
        capture_cycles: int = 1,
        exact_schedule: bool = False,
    ) -> None:
        """Args:
        soc: The SOC under optimization.
        groups: SI test groups (possibly empty for InTest-only use).
        capture_cycles: Launch/capture cycles charged per SI pattern.
        exact_schedule: Pack the SI phase with the optimal (permutation
            search) scheduler instead of Algorithm 1.  Only feasible for
            small group counts; evaluation cost grows factorially.
        """
        self.soc = soc
        self.groups = tuple(group for group in groups if not group.is_empty)
        self.capture_cycles = capture_cycles
        self.exact_schedule = exact_schedule
        self._core_of = {core.core_id: core for core in soc}
        self._woc_of = {core.core_id: core.woc_count for core in soc}
        self._group_cores = [group.cores for group in self.groups]
        self._group_patterns = [group.patterns for group in self.groups]
        self._rail_cache: dict[TestRail, RailStats] = {}
        unknown = {
            core_id
            for cores in self._group_cores
            for core_id in cores
            if core_id not in self._core_of
        }
        if unknown:
            raise ValueError(f"SI groups reference unknown cores: {sorted(unknown)}")

    def rail_stats(self, rail: TestRail) -> RailStats:
        """Compute (or fetch) the memoized statistics of a rail."""
        stats = self._rail_cache.get(rail)
        if stats is not None:
            return stats
        incr("evaluator.rail_stats_computed")
        width = rail.width
        time_in = 0
        for core_id in rail.cores:
            time_in += core_test_time(self._core_of[core_id], width)
        depths = []
        time_si = 0
        for cores, patterns in zip(self._group_cores, self._group_patterns):
            depth = 0
            for core_id in rail.cores:
                if core_id in cores:
                    woc = self._woc_of[core_id]
                    if woc:
                        depth += -(-woc // width)
            depths.append(depth)
            if depth:
                time_si += patterns * (depth + self.capture_cycles)
        stats = RailStats(
            time_in=time_in, si_depths=tuple(depths), time_si=time_si
        )
        self._rail_cache[rail] = stats
        return stats

    def calculate_si_test_times(
        self, architecture: TestRailArchitecture
    ) -> list[SIScheduleEntry]:
        """``CalculateSITestTime``: unscheduled entries (begin/end = 0).

        ``time_si(s)`` is the maximum over the involved rails of the rail's
        shift time for the group; the maximizing rail is ``r_btn(s)``.
        """
        all_stats = [self.rail_stats(rail) for rail in architecture.rails]
        entries = []
        for group_index, group in enumerate(self.groups):
            patterns = self._group_patterns[group_index]
            involved = []
            best_time = 0
            bottleneck = -1
            for rail_index, stats in enumerate(all_stats):
                depth = stats.si_depths[group_index]
                if depth == 0:
                    continue
                involved.append(rail_index)
                rail_time = patterns * (depth + self.capture_cycles)
                if rail_time > best_time:
                    best_time = rail_time
                    bottleneck = rail_index
            if not involved:
                # Group cores absent from the architecture; treat as free.
                continue
            entries.append(
                SIScheduleEntry(
                    group_id=group.group_id,
                    time_si=best_time,
                    rails=frozenset(involved),
                    bottleneck_rail=bottleneck,
                    begin=0,
                    end=0,
                )
            )
        return entries

    def schedule(
        self, entries: list[SIScheduleEntry]
    ) -> tuple[tuple[SIScheduleEntry, ...], int]:
        """Scheduling policy hook — Algorithm 1 by default.

        Subclasses model other access mechanisms (e.g. the Test Bus
        architecture, which serializes all external tests) by overriding
        this method.
        """
        if self.exact_schedule:
            from repro.core.exact_schedule import exact_si_schedule

            incr("scheduler.exact_runs")
            result = exact_si_schedule(entries)
            return result.schedule, result.t_si
        return schedule_si_tests(entries)

    def evaluate(self, architecture: TestRailArchitecture) -> Evaluation:
        """Full evaluation: InTest time, scheduled SI time, per-rail stats."""
        incr("evaluator.evaluations")
        all_stats = tuple(self.rail_stats(rail) for rail in architecture.rails)
        t_in = max((stats.time_in for stats in all_stats), default=0)
        entries = self.calculate_si_test_times(architecture)
        schedule, t_si = self.schedule(entries)
        return Evaluation(
            t_in=t_in, t_si=t_si, schedule=schedule, rail_stats=all_stats
        )

    def t_total(self, architecture: TestRailArchitecture) -> int:
        """Shortcut for ``evaluate(architecture).t_total``."""
        return self.evaluate(architecture).t_total


def schedule_si_tests(
    entries: list[SIScheduleEntry],
) -> tuple[tuple[SIScheduleEntry, ...], int]:
    """``ScheduleSITest`` (Fig. 5 / Algorithm 1).

    Greedily packs SI tests onto the time axis: at the current time, any
    unscheduled test whose rails are all idle may start (the longest one is
    chosen when several are eligible — the paper leaves the tie-break
    open); when nothing fits, time advances to the earliest completion.

    Returns the scheduled entries (with ``begin``/``end`` filled in) and
    ``T_soc_si``.
    """
    incr("scheduler.greedy_runs")
    unscheduled = sorted(entries, key=lambda e: (-e.time_si, e.group_id))
    running: list[SIScheduleEntry] = []
    scheduled: list[SIScheduleEntry] = []
    current_time = 0
    t_si = 0

    while unscheduled:
        busy: set[int] = set()
        for entry in running:
            if entry.end > current_time:
                busy.update(entry.rails)
        chosen = None
        for entry in unscheduled:
            if busy.isdisjoint(entry.rails):
                chosen = entry
                break
        if chosen is not None:
            placed = SIScheduleEntry(
                group_id=chosen.group_id,
                time_si=chosen.time_si,
                rails=chosen.rails,
                bottleneck_rail=chosen.bottleneck_rail,
                begin=current_time,
                end=current_time + chosen.time_si,
            )
            unscheduled.remove(chosen)
            running.append(placed)
            scheduled.append(placed)
            t_si = max(t_si, placed.end)
        else:
            future_ends = [e.end for e in running if e.end > current_time]
            if not future_ends:
                raise RuntimeError(
                    "ScheduleSITest stalled: no running test to wait for"
                )
            current_time = min(future_ends)

    scheduled.sort(key=lambda e: (e.begin, e.group_id))
    return tuple(scheduled), t_si


def _excl_max(top, first: int, second: int) -> int:
    """Largest value in ``top`` whose index is neither ``first`` nor
    ``second`` — exact because at most two indices are ever excluded and
    ``top`` holds the three largest ``(value, index)`` pairs (or all of
    them when fewer exist)."""
    for value, index in top:
        if index != first and index != second:
            return value
    return 0


class PackedState:
    """Flat mirror of one candidate architecture plus derived figures.

    The incremental evaluator keeps candidate architectures in plain
    arrays instead of :class:`TestRail` objects: per-rail InTest times and
    per-group shift depths, per-group testing times with involved-rail
    bitmasks, and the top-3 ``(value, rail)`` tables that make the
    exclusion queries behind move scoring and pruning O(1).

    ``scheduled`` holds the greedy SI schedule as ``(begin, end,
    group_index)`` triples sorted like the reference schedule, which is
    all :meth:`IncrementalTamEvaluator.state_bottlenecks` needs for the
    critical-chain walk.
    """

    __slots__ = (
        "cores", "widths", "time_in", "depths", "group_time", "group_mask",
        "group_btn", "group_top", "in_top", "t_in", "t_si", "scheduled",
        "flat",
    )

    def __init__(self, cores, widths, time_in, depths, group_time,
                 group_mask, group_btn, group_top, in_top, t_in, t_si,
                 scheduled) -> None:
        self.cores = cores
        self.widths = widths
        self.time_in = time_in
        self.depths = depths
        self.group_time = group_time
        self.group_mask = group_mask
        self.group_btn = group_btn
        self.group_top = group_top
        self.in_top = in_top
        self.t_in = t_in
        self.t_si = t_si
        self.scheduled = scheduled
        self.flat = None  # lazily built arrays for the C engine

    @property
    def t_total(self) -> int:
        return self.t_in + self.t_si


class IncrementalTamEvaluator(TamEvaluator):
    """A :class:`TamEvaluator` that can score single-core moves without
    re-deriving every rail.

    The reference evaluator recomputes all rail statistics, SI test times
    and the greedy schedule for every candidate the optimizer visits.
    Under a single move (widen / core move / merge) at most two rails
    change, so this subclass patches only the affected rails' figures and
    SI entries: unaffected rails contribute through the memoized top-3
    tables, the makespan is re-derived from integer bitmask entries, and
    the per-``(cores, width)`` row cache plays the role the
    :class:`TestRail`-keyed cache plays for the reference path.

    Scoring is exact — the same integers the reference evaluator would
    produce — which is what makes the incremental optimizer backend
    bit-identical.  ``evaluate`` (inherited) still produces the reference
    :class:`Evaluation` for final results.
    """

    def __init__(
        self,
        soc: Soc,
        groups: tuple[SITestGroup, ...] = (),
        capture_cycles: int = 1,
    ) -> None:
        super().__init__(soc, groups, capture_cycles=capture_cycles)
        self._gids = [group.group_id for group in self.groups]
        # core -> indices of the groups it contributes shift depth to
        self._core_groups: dict[int, tuple[int, ...]] = {}
        for group_index, cores in enumerate(self._group_cores):
            for core_id in cores:
                if self._woc_of.get(core_id):
                    self._core_groups.setdefault(core_id, []).append(
                        group_index
                    )
        self._core_groups = {
            core_id: tuple(indices)
            for core_id, indices in self._core_groups.items()
        }
        # core -> InTest payload bits (the pin-bandwidth argument of
        # ``core/bounds.py`` applied per core): a rail serializes its
        # cores, so its time on ``w`` wires is at least
        # ``sum(ceil(payload / w))`` — the merge-sweep pruning bound.
        self._payload_of: dict[int, int] = {}
        for core in soc:
            scan = core.scan_cell_count
            word = max(core.wic_count + scan, core.woc_count + scan)
            self._payload_of[core.core_id] = word * core.total_patterns
        # (cores, width) -> (time_in, depths, time_used)
        self._rows: dict[tuple, tuple] = {}
        # (core_id, width) -> InTest time; shared by the packed rows and
        # the flat C table so each wrapper design happens exactly once.
        self._core_times: dict[tuple[int, int], int] = {}
        self._core_ids = soc.core_ids
        self._static = None
        self._table = array("q")
        self._table_have = array("B")  # per-cell flags read by C
        self._table_cap = 0
        # (cores, width) rail keys whose table cells are filled
        self._table_filled: set[tuple] = set()

    # ------------------------------------------------------------------
    # packed rows and states

    def _core_time(self, core_id: int, width: int) -> int:
        """Memoized ``core_test_time`` — one wrapper design per pair."""
        key = (core_id, width)
        value = self._core_times.get(key)
        if value is None:
            value = self._core_times[key] = core_test_time(
                self._core_of[core_id], width
            )
        return value

    def _row(self, cores: tuple[int, ...], width: int) -> tuple:
        """Per-rail figures of ``cores`` on ``width`` wires (memoized)."""
        key = (cores, width)
        row = self._rows.get(key)
        if row is not None:
            return row
        incr("evaluator.rail_stats_computed")
        woc_of = self._woc_of
        core_time = self._core_time
        time_in = 0
        for core_id in cores:
            time_in += core_time(core_id, width)
        depths = [0] * len(self.groups)
        for core_id in cores:
            group_indices = self._core_groups.get(core_id)
            if group_indices:
                depth = -(-woc_of[core_id] // width)
                for group_index in group_indices:
                    depths[group_index] += depth
        time_si = 0
        for group_index, depth in enumerate(depths):
            if depth:
                time_si += self._group_patterns[group_index] * (
                    depth + self.capture_cycles
                )
        row = (time_in, tuple(depths), time_in + time_si)
        self._rows[key] = row
        return row

    def rail_used(self, state: PackedState, index: int) -> int:
        """``time_used(r)`` of one rail of a packed state."""
        return self._row(state.cores[index], state.widths[index])[2]

    def merged_rail_bound(self, cores_a, cores_b, width: int) -> int:
        """Lower bound on ``T_soc`` of any architecture containing a rail
        with ``cores_a + cores_b`` on at most ``width`` wires.

        The rail serializes its cores, so its InTest time is at least
        ``sum(ceil(payload_c / width))`` (pin-bandwidth argument per
        core), and every SI group it feeds shifts at least the rail's
        own depth at ``width`` — both pure arithmetic, no wrapper
        design.  Bounds every candidate of a merge sweep, including the
        ones whose leftover wires get redistributed (redistribution can
        widen the merged rail at most back to ``width``).
        """
        payload_of = self._payload_of
        woc_of = self._woc_of
        core_groups = self._core_groups
        t_in = 0
        depths: dict[int, int] = {}
        for cores in (cores_a, cores_b):
            for core_id in cores:
                t_in += -(-payload_of[core_id] // width)
                group_indices = core_groups.get(core_id)
                if group_indices:
                    depth = -(-woc_of[core_id] // width)
                    for group_index in group_indices:
                        depths[group_index] = (
                            depths.get(group_index, 0) + depth
                        )
        t_si = 0
        capture = self.capture_cycles
        patterns = self._group_patterns
        for group_index, depth in depths.items():
            group_time = patterns[group_index] * (depth + capture)
            if group_time > t_si:
                t_si = group_time
        return t_in + t_si

    def pack(self, cores, widths) -> PackedState:
        """Build the packed representation of an architecture."""
        cores = list(cores)
        widths = list(widths)
        rows = [self._row(c, w) for c, w in zip(cores, widths)]
        time_in = [row[0] for row in rows]
        depths = [row[1] for row in rows]
        group_count = len(self.groups)
        group_time = [0] * group_count
        group_mask = [0] * group_count
        group_btn = [-1] * group_count
        group_top: list[tuple] = [()] * group_count
        entries = []
        capture = self.capture_cycles
        for group_index in range(group_count):
            patterns = self._group_patterns[group_index]
            best_time = 0
            bottleneck = -1
            mask = 0
            tops = []
            for rail_index, row_depths in enumerate(depths):
                depth = row_depths[group_index]
                if depth:
                    rail_time = patterns * (depth + capture)
                    mask |= 1 << rail_index
                    tops.append((rail_time, rail_index))
                    if rail_time > best_time:
                        best_time = rail_time
                        bottleneck = rail_index
            if mask:
                tops.sort(key=lambda item: (-item[0], item[1]))
                group_time[group_index] = best_time
                group_mask[group_index] = mask
                group_btn[group_index] = bottleneck
                group_top[group_index] = tuple(tops[:3])
                entries.append(
                    (best_time, mask, self._gids[group_index], group_index)
                )
        in_top = sorted(
            ((value, index) for index, value in enumerate(time_in)),
            key=lambda item: (-item[0], item[1]),
        )[:3]
        t_in = max(time_in, default=0)
        scheduled, t_si = self._schedule_packed(entries)
        return PackedState(
            cores=cores, widths=widths, time_in=time_in, depths=depths,
            group_time=group_time, group_mask=group_mask,
            group_btn=group_btn, group_top=group_top, in_top=tuple(in_top),
            t_in=t_in, t_si=t_si, scheduled=scheduled,
        )

    def state_architecture(self, state: PackedState) -> TestRailArchitecture:
        """The :class:`TestRailArchitecture` a packed state stands for."""
        return TestRailArchitecture(
            rails=tuple(
                TestRail(cores=cores, width=width)
                for cores, width in zip(state.cores, state.widths)
            )
        )

    def apply_move(self, state: PackedState, move: tuple) -> PackedState:
        """The packed state after ``move`` — mirrors the ``with_rail`` /
        ``with_core_moved`` / ``merged`` constructions of the reference
        path, including the merged rail taking the first rail's position.

        Only the affected rails' figures are re-derived; SI groups not
        touching a changed rail keep their column (indices remapped when
        a merge removes a rail — the remap is strictly monotonic, so the
        ``(-time, rail)`` order of the top tables survives)."""
        kind, a, b, c = move
        removed = -1
        if kind == MOVE_WIDEN:
            cores = list(state.cores)
            widths = list(state.widths)
            widths[a] += 1
            rows = {a: self._row(cores[a], widths[a])}
            changed_bits = 1 << a
        elif kind == MOVE_CORE:
            cores = list(state.cores)
            widths = list(state.widths)
            cores[b] = tuple(x for x in cores[b] if x != a)
            cores[c] = tuple(sorted(cores[c] + (a,)))
            rows = {
                b: self._row(cores[b], widths[b]),
                c: self._row(cores[c], widths[c]),
            }
            changed_bits = (1 << b) | (1 << c)
        else:
            removed = b
            merged_cores = tuple(sorted(state.cores[a] + state.cores[b]))
            cores = [
                merged_cores if index == a else state.cores[index]
                for index in range(len(state.cores))
                if index != b
            ]
            widths = [
                c if index == a else state.widths[index]
                for index in range(len(state.widths))
                if index != b
            ]
            merged_index = a - (a > b)
            rows = {merged_index: self._row(merged_cores, c)}
            changed_bits = (1 << a) | (1 << b)

        if removed < 0:
            time_in = list(state.time_in)
            depths = list(state.depths)
        else:
            time_in = [
                value
                for index, value in enumerate(state.time_in)
                if index != removed
            ]
            depths = [
                row
                for index, row in enumerate(state.depths)
                if index != removed
            ]
            low_mask = (1 << removed) - 1
        for index, row in rows.items():
            time_in[index] = row[0]
            depths[index] = row[1]

        capture = self.capture_cycles
        patterns = self._group_patterns
        gids = self._gids
        group_time = list(state.group_time)
        group_mask = list(state.group_mask)
        group_btn = list(state.group_btn)
        group_top = list(state.group_top)
        entries = []
        for group_index in range(len(self.groups)):
            mask = state.group_mask[group_index]
            if not mask & changed_bits:
                if removed >= 0 and mask:
                    mask = (mask & low_mask) | (
                        (mask >> (removed + 1)) << removed
                    )
                    group_mask[group_index] = mask
                    bottleneck = state.group_btn[group_index]
                    group_btn[group_index] = bottleneck - (
                        bottleneck > removed
                    )
                    group_top[group_index] = tuple(
                        (value, rail - (rail > removed))
                        for value, rail in state.group_top[group_index]
                    )
                if mask:
                    entries.append(
                        (group_time[group_index], mask, gids[group_index],
                         group_index)
                    )
                continue
            group_patterns = patterns[group_index]
            best_time = 0
            bottleneck = -1
            mask = 0
            tops = []
            for rail_index, row_depths in enumerate(depths):
                depth = row_depths[group_index]
                if depth:
                    rail_time = group_patterns * (depth + capture)
                    mask |= 1 << rail_index
                    tops.append((rail_time, rail_index))
                    if rail_time > best_time:
                        best_time = rail_time
                        bottleneck = rail_index
            if mask:
                tops.sort(key=lambda item: (-item[0], item[1]))
                group_time[group_index] = best_time
                group_mask[group_index] = mask
                group_btn[group_index] = bottleneck
                group_top[group_index] = tuple(tops[:3])
                entries.append(
                    (best_time, mask, gids[group_index], group_index)
                )
            else:
                group_time[group_index] = 0
                group_mask[group_index] = 0
                group_btn[group_index] = -1
                group_top[group_index] = ()

        in_top = sorted(
            ((value, index) for index, value in enumerate(time_in)),
            key=lambda item: (-item[0], item[1]),
        )[:3]
        t_in = max(time_in, default=0)
        scheduled, t_si = self._schedule_packed(entries)
        return PackedState(
            cores=cores, widths=widths, time_in=time_in, depths=depths,
            group_time=group_time, group_mask=group_mask,
            group_btn=group_btn, group_top=group_top, in_top=tuple(in_top),
            t_in=t_in, t_si=t_si, scheduled=scheduled,
        )

    # ------------------------------------------------------------------
    # schedule replication

    def _schedule_packed(self, entries):
        """Algorithm 1 over ``(time, mask, group_id, group_index)`` entries;
        returns ``(scheduled, t_si)`` with ``scheduled`` as ``(begin, end,
        group_index)`` triples in reference schedule order."""
        if not entries:
            return (), 0
        unscheduled = sorted(entries, key=lambda e: (-e[0], e[2]))
        running = []
        scheduled = []
        current = 0
        t_si = 0
        while unscheduled:
            busy = 0
            for end, mask in running:
                if end > current:
                    busy |= mask
            chosen = -1
            for position, entry in enumerate(unscheduled):
                if not busy & entry[1]:
                    chosen = position
                    break
            if chosen >= 0:
                time_si, mask, group_id, group_index = unscheduled.pop(chosen)
                end = current + time_si
                running.append((end, mask))
                scheduled.append((current, end, group_id, group_index))
                if end > t_si:
                    t_si = end
            else:
                future = [end for end, _ in running if end > current]
                if not future:
                    raise RuntimeError(
                        "ScheduleSITest stalled: no running test to wait for"
                    )
                current = min(future)
        scheduled.sort(key=lambda item: (item[0], item[2]))
        return tuple(scheduled), t_si

    def _makespan(self, entries) -> int:
        """``T_soc_si`` of ``(time, mask, group_id)`` entries — the greedy
        schedule's completion time without materializing the schedule."""
        if not entries:
            return 0
        unscheduled = sorted(entries, key=lambda e: (-e[0], e[2]))
        running = []
        current = 0
        t_si = 0
        while unscheduled:
            busy = 0
            for end, mask in running:
                if end > current:
                    busy |= mask
            chosen = -1
            for position, entry in enumerate(unscheduled):
                if not busy & entry[1]:
                    chosen = position
                    break
            if chosen >= 0:
                time_si, mask, _ = unscheduled.pop(chosen)
                end = current + time_si
                running.append((end, mask))
                if end > t_si:
                    t_si = end
            else:
                future = [end for end, _ in running if end > current]
                if not future:
                    raise RuntimeError(
                        "ScheduleSITest stalled: no running test to wait for"
                    )
                current = min(future)
        return t_si

    def state_bottlenecks(self, state: PackedState) -> set[int]:
        """Bottleneck TAMs of a packed state — the packed replication of
        :func:`repro.core.optimizer.bottleneck_rails`."""
        bottlenecks = {
            index
            for index, value in enumerate(state.time_in)
            if value == state.t_in and state.t_in > 0
        }
        if state.scheduled:
            critical_times = {state.t_si}
            for begin, end, _, group_index in sorted(
                state.scheduled, key=lambda item: -item[1]
            ):
                if end in critical_times:
                    bottlenecks.add(state.group_btn[group_index])
                    if begin > 0:
                        critical_times.add(begin)
        return bottlenecks

    # ------------------------------------------------------------------
    # move scoring

    def score_moves(self, state: PackedState, moves) -> list[int]:
        """Exact ``T_soc`` of every candidate in ``moves``, scored against
        ``state`` without applying them.  Uses the C engine when available
        (``core/_movescan.py``), the pure-Python patch path otherwise."""
        if not moves:
            return []
        # Tiny batches are overhead-bound on the C side (state flatten +
        # ctypes marshalling); the O(groups) top-3 patch scorer wins there.
        if len(moves) >= 8 and len(state.cores) <= 64:
            from repro.core import _movescan

            if _movescan.available():
                totals = self._score_moves_c(state, moves)
                if totals is not None:
                    return totals
        return [self._score_move(state, move) for move in moves]

    def _score_move(self, state: PackedState, move: tuple) -> int:
        """Pure-Python incremental scoring of one move."""
        kind, a, b, c = move
        if kind == MOVE_WIDEN:
            changed_first, changed_second = a, -1
            rows = ((a, self._row(state.cores[a], state.widths[a] + 1)),)
        elif kind == MOVE_CORE:
            changed_first, changed_second = b, c
            source_cores = tuple(x for x in state.cores[b] if x != a)
            dest_cores = tuple(sorted(state.cores[c] + (a,)))
            rows = (
                (b, self._row(source_cores, state.widths[b])),
                (c, self._row(dest_cores, state.widths[c])),
            )
        else:
            changed_first, changed_second = a, b
            merged = tuple(sorted(state.cores[a] + state.cores[b]))
            rows = ((a, self._row(merged, c)),)
        t_in = _excl_max(state.in_top, changed_first, changed_second)
        for _, row in rows:
            if row[0] > t_in:
                t_in = row[0]
        entries = []
        capture = self.capture_cycles
        patterns = self._group_patterns
        gids = self._gids
        for group_index in range(len(self.groups)):
            mask = state.group_mask[group_index]
            affected = bool(
                mask >> changed_first & 1
                or (changed_second >= 0 and mask >> changed_second & 1)
            )
            if not affected:
                for _, row in rows:
                    if row[1][group_index]:
                        affected = True
                        break
            if not affected:
                if mask:
                    entries.append(
                        (state.group_time[group_index], mask,
                         gids[group_index])
                    )
                continue
            best_time = _excl_max(
                state.group_top[group_index], changed_first, changed_second
            )
            mask &= ~(1 << changed_first)
            if changed_second >= 0:
                mask &= ~(1 << changed_second)
            for rail_index, row in rows:
                depth = row[1][group_index]
                if depth:
                    rail_time = patterns[group_index] * (depth + capture)
                    mask |= 1 << rail_index
                    if rail_time > best_time:
                        best_time = rail_time
            if mask:
                entries.append((best_time, mask, gids[group_index]))
        return t_in + self._makespan(entries)

    # ------------------------------------------------------------------
    # C engine interface

    def _build_static(self):
        core_ids = self._core_ids
        dense = {
            core_id: position for position, core_id in enumerate(core_ids)
        }
        woc = array("q", (self._woc_of[core_id] for core_id in core_ids))
        cg_off = array("q", [0])
        cg_ids = array("i")
        for core_id in core_ids:
            for group_index in self._core_groups.get(core_id, ()):
                cg_ids.append(group_index)
            cg_off.append(len(cg_ids))
        patterns = array("q", self._group_patterns)
        gids = array("q", self._gids)
        return (dense, woc, cg_off, cg_ids, patterns, gids)

    def _ensure_cells(self, keys) -> None:
        """Fill the flat ``(core, width)`` InTest time table for every
        ``(cores, width)`` rail key — only the cells the C kernel will
        actually read, so no wrapper is designed speculatively."""
        seen = self._table_filled
        missing = [key for key in keys if key not in seen]
        if not missing:
            return
        cap = max(width for _, width in missing)
        if cap > self._table_cap:
            old_cap, old_table = self._table_cap, self._table
            old_have = self._table_have
            new_cap = max(cap, 2 * old_cap)
            core_ids = self._core_ids
            table = array("q", bytes(8 * len(core_ids) * new_cap))
            have = array("B", bytes(len(core_ids) * new_cap))
            for position in range(len(core_ids)):
                table[position * new_cap:position * new_cap + old_cap] = (
                    old_table[position * old_cap:(position + 1) * old_cap]
                )
                have[position * new_cap:position * new_cap + old_cap] = (
                    old_have[position * old_cap:(position + 1) * old_cap]
                )
            self._table, self._table_have = table, have
            self._table_cap = new_cap
        cap = self._table_cap
        core_time = self._core_time
        dense = self._static[0]
        for key in missing:
            if key in seen:
                continue
            seen.add(key)
            cores, width = key
            for core_id in cores:
                cell = dense[core_id] * cap + width - 1
                self._table[cell] = core_time(core_id, width)
                self._table_have[cell] = 1

    def _flatten_state(self, state: PackedState):
        dense = self._static[0]
        widths = array("q", state.widths)
        time_in = array("q", state.time_in)
        depths = array(
            "q", (depth for row in state.depths for depth in row)
        )
        rail_off = array("q", [0])
        rail_cores = array("i")
        for cores in state.cores:
            for core_id in cores:
                rail_cores.append(dense[core_id])
            rail_off.append(len(rail_cores))
        return (widths, time_in, depths, rail_off, rail_cores)

    def _score_moves_c(self, state: PackedState, moves):
        from repro.core import _movescan

        if self._static is None:
            self._static = self._build_static()
        dense, woc, cg_off, cg_ids, patterns, gids = self._static
        needed = []
        for kind, a, b, c in moves:
            if kind == MOVE_WIDEN:
                needed.append((state.cores[a], state.widths[a] + 1))
            elif kind == MOVE_CORE:
                # Source keeps its width; the destination rail and the
                # moved core are re-timed at the destination width.
                needed.append((state.cores[b], state.widths[b]))
                needed.append((state.cores[c], state.widths[c]))
                needed.append(((a,), state.widths[c]))
            else:
                needed.append((state.cores[a], c))
                needed.append((state.cores[b], c))
        self._ensure_cells(needed)
        if state.flat is None:
            state.flat = self._flatten_state(state)
        widths, time_in, depths, rail_off, rail_cores = state.flat
        kinds = array("q", bytes(8 * len(moves)))
        move_a = array("q", bytes(8 * len(moves)))
        move_b = array("q", bytes(8 * len(moves)))
        move_c = array("q", bytes(8 * len(moves)))
        for position, (kind, a, b, c) in enumerate(moves):
            kinds[position] = kind
            move_a[position] = dense[a] if kind == MOVE_CORE else a
            move_b[position] = b
            move_c[position] = c
        totals = _movescan.score_moves(
            len(state.cores), len(self.groups), self.capture_cycles,
            widths, time_in, depths, rail_off, rail_cores,
            woc, cg_off, cg_ids, patterns, gids,
            self._table, self._table_cap,
            kinds, move_a, move_b, move_c,
        )
        if totals is not None:
            incr("movescan.batches")
            incr("movescan.moves_scored", len(moves))
        return totals

    def score_merge_distribute(
        self, state: PackedState, rail_a: int, rail_b: int,
        width: int, leftover: int,
    ):
        """Score a merge-with-leftover candidate without building it.

        The C engine replays the merge and the greedy wire-by-wire
        redistribution over the flat arrays and returns ``(total,
        choices)`` — the candidate's ``T_soc`` plus the chosen rail per
        wire (post-merge indexing), so only a winning candidate is ever
        materialized via :meth:`apply_move`.  Returns ``None`` when the
        engine is unavailable (callers fall back to the Python path).
        """
        if len(state.cores) > 64:
            return None
        from repro.core import _movescan

        if not _movescan.available():
            return None
        if self._static is None:
            self._static = self._build_static()
        dense, woc, cg_off, cg_ids, patterns, gids = self._static
        self._ensure_cells(
            [(state.cores[rail_a], width), (state.cores[rail_b], width)]
        )
        if state.flat is None:
            state.flat = self._flatten_state(state)
        widths, time_in, depths, rail_off, rail_cores = state.flat
        while True:
            result = _movescan.merge_distribute(
                len(state.cores), len(self.groups), self.capture_cycles,
                widths, time_in, depths, rail_off, rail_cores,
                woc, cg_off, cg_ids, patterns, gids,
                self._table, self._table_have, self._table_cap,
                rail_a, rail_b, width, leftover,
            )
            if isinstance(result, _movescan.MissingCell):
                core, missing_width = result
                self._ensure_cells(
                    [((self._core_ids[core],), missing_width)]
                )
                continue
            if result is not None:
                incr("movescan.distributes")
            return result
