"""Exact SI test scheduling for small group counts.

``ScheduleSITest`` (Algorithm 1) is greedy; this module finds the optimal
makespan by exhausting the *active schedules*: every permutation of the
tests placed by the serial schedule-generation scheme (each test starts at
the earliest time its rails are all idle).  For non-preemptive
resource-constrained scheduling an optimal schedule is always active, so
the permutation search is exact.  With the paper's ≤ 9 SI groups the
search is a few hundred thousand placements — instant — and certifies
Algorithm 1's optimality gap in the benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.scheduling import SIScheduleEntry


@dataclass(frozen=True)
class ExactScheduleResult:
    """Outcome of the exhaustive schedule search.

    Attributes:
        schedule: Optimal scheduled entries (begin/end filled in).
        t_si: Optimal makespan.
        permutations_tried: Search-space size examined.
    """

    schedule: tuple[SIScheduleEntry, ...]
    t_si: int
    permutations_tried: int


MAX_EXACT_TESTS = 9


def _serial_placement(
    order: tuple[SIScheduleEntry, ...]
) -> tuple[tuple[SIScheduleEntry, ...], int]:
    """Serial SGS: place each test at the earliest time its rails are
    idle, respecting the given priority order."""
    placed: list[SIScheduleEntry] = []
    makespan = 0
    for entry in order:
        # Candidate starts: 0 and the ends of already-placed conflicts.
        begin = 0
        while True:
            conflict_end = 0
            for other in placed:
                if other.rails & entry.rails and (
                    other.begin < begin + entry.time_si
                    and begin < other.end
                ):
                    conflict_end = max(conflict_end, other.end)
            if conflict_end <= begin:
                break
            begin = conflict_end
        placed.append(
            SIScheduleEntry(
                group_id=entry.group_id,
                time_si=entry.time_si,
                rails=entry.rails,
                bottleneck_rail=entry.bottleneck_rail,
                begin=begin,
                end=begin + entry.time_si,
            )
        )
        makespan = max(makespan, begin + entry.time_si)
    return tuple(placed), makespan


def exact_si_schedule(
    entries: list[SIScheduleEntry],
) -> ExactScheduleResult:
    """Find the makespan-optimal SI schedule by permutation search.

    Raises:
        ValueError: If more than :data:`MAX_EXACT_TESTS` tests are given.
    """
    if len(entries) > MAX_EXACT_TESTS:
        raise ValueError(
            f"exact scheduling supports at most {MAX_EXACT_TESTS} tests; "
            f"got {len(entries)}"
        )
    if not entries:
        return ExactScheduleResult(schedule=(), t_si=0,
                                   permutations_tried=0)

    best_schedule: tuple[SIScheduleEntry, ...] | None = None
    best_makespan: int | None = None
    tried = 0
    for order in permutations(entries):
        tried += 1
        schedule, makespan = _serial_placement(order)
        if best_makespan is None or makespan < best_makespan:
            best_makespan = makespan
            best_schedule = tuple(
                sorted(schedule, key=lambda e: (e.begin, e.group_id))
            )
    assert best_schedule is not None and best_makespan is not None
    return ExactScheduleResult(
        schedule=best_schedule,
        t_si=best_makespan,
        permutations_tried=tried,
    )
