"""The paper's contribution: SI-aware scheduling and TAM optimization."""

from repro.core.annealing import AnnealingConfig, anneal_tam
from repro.core.bounds import (
    BoundReport,
    bound_report,
    intest_bandwidth_bound,
    intest_core_floor,
    si_floor,
)
from repro.core.exact import MAX_EXACT_CORES, ExactResult, exact_optimize
from repro.core.exact_schedule import (
    MAX_EXACT_TESTS,
    ExactScheduleResult,
    exact_si_schedule,
)
from repro.core.whatif import (
    WhatIfReport,
    WireDelta,
    format_whatif_report,
    what_if,
)
from repro.core.session_sim import (
    SessionEvent,
    SessionTrace,
    SimulationError,
    simulate_session,
    utilization_from_trace,
)
from repro.core.optimizer import (
    OptimizationResult,
    bottleneck_rails,
    core_reshuffle,
    distribute_free_wires,
    evaluate_architecture,
    merge_tams,
    optimize_tam,
)
from repro.core.power import (
    PowerAwareEvaluator,
    PowerModel,
    schedule_si_tests_power,
)
from repro.core.scheduling import (
    Evaluation,
    RailStats,
    SIScheduleEntry,
    TamEvaluator,
    schedule_si_tests,
)

__all__ = [
    "AnnealingConfig",
    "BoundReport",
    "Evaluation",
    "ExactResult",
    "MAX_EXACT_CORES",
    "MAX_EXACT_TESTS",
    "ExactScheduleResult",
    "exact_si_schedule",
    "exact_optimize",
    "PowerAwareEvaluator",
    "PowerModel",
    "SessionEvent",
    "SessionTrace",
    "SimulationError",
    "WhatIfReport",
    "WireDelta",
    "format_whatif_report",
    "what_if",
    "simulate_session",
    "utilization_from_trace",
    "anneal_tam",
    "bound_report",
    "intest_bandwidth_bound",
    "intest_core_floor",
    "schedule_si_tests_power",
    "si_floor",
    "OptimizationResult",
    "RailStats",
    "SIScheduleEntry",
    "TamEvaluator",
    "bottleneck_rails",
    "core_reshuffle",
    "distribute_free_wires",
    "evaluate_architecture",
    "merge_tams",
    "optimize_tam",
    "schedule_si_tests",
]
