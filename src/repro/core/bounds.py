"""Lower bounds on the achievable SOC test time.

Optimality gaps contextualize the heuristic results (the tables report
heuristic times only; the bounds say how much a perfect optimizer could
still recover).  Three classical arguments apply:

* **Per-core floor** — a core's wrapper scan chains can never be shorter
  than its longest internal scan chain, so its test time is bounded below
  by its time at unbounded width; the SOC cannot finish before its
  slowest core.
* **Bandwidth bound** — the total test data volume must pass through the
  ``W_max`` pins: ``T >= ceil(total_bits / W_max)`` where ``total_bits``
  counts every core's scan-in payload (the max of in/out per cycle).
* **SI floor** — every SI group must shift its patterns through the
  bottleneck of `W_max` wires even if it owns the entire TAM, and groups
  sharing any core serialize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.soc.model import Soc
from repro.wrapper.timing import core_test_time


@dataclass(frozen=True)
class BoundReport:
    """Lower bounds and the derived optimality gap of a heuristic result.

    Attributes:
        core_floor: Slowest core at unbounded TAM width.
        bandwidth_bound: Pin-bandwidth argument on the InTest payload.
        si_floor: Minimum SI phase length at full TAM width.
    """

    core_floor: int
    bandwidth_bound: int
    si_floor: int

    @property
    def t_in_bound(self) -> int:
        return max(self.core_floor, self.bandwidth_bound)

    @property
    def t_total_bound(self) -> int:
        """InTest and SI phases never overlap, so the bounds add."""
        return self.t_in_bound + self.si_floor

    def gap(self, achieved_total: int) -> float:
        """Relative distance of an achieved ``T_soc`` from the bound."""
        if achieved_total <= 0:
            raise ValueError("achieved total must be positive")
        return (achieved_total - self.t_total_bound) / achieved_total


def intest_core_floor(soc: Soc, probe_width: int = 256) -> int:
    """Slowest core when every core gets effectively unlimited TAM wires."""
    if not len(soc):
        return 0
    return max(core_test_time(core, probe_width) for core in soc)


def intest_bandwidth_bound(soc: Soc, w_max: int) -> int:
    """``ceil(payload / W_max)`` — the pins move one bit per wire per cycle.

    The per-core payload counts, per pattern, the longer of the scan-in
    and scan-out words (they overlap via pipelining), which is what the
    wrapper actually streams.
    """
    if w_max <= 0:
        raise ValueError("W_max must be positive")
    payload = 0
    for core in soc:
        scan = core.scan_cell_count
        word = max(core.wic_count + scan, core.woc_count + scan)
        payload += word * core.total_patterns
    return -(-payload // w_max)


def si_floor(
    soc: Soc,
    groups: tuple[SITestGroup, ...],
    w_max: int,
    capture_cycles: int = 1,
) -> int:
    """Minimum length of the SI phase.

    Each group must shift ``pattern(s)`` vector pairs through at most
    ``w_max`` wires covering its cores' WOCs; two groups sharing a core
    necessarily share that core's rail and serialize.  A simple chain
    argument: the heaviest pairwise-conflicting set here is approximated
    by the single heaviest group plus all groups overlapping it — we use
    the safe (weaker) bound of the heaviest group alone plus the residual
    serialization with any group it overlaps is omitted; i.e. the bound
    is ``max_s floor(s)``, with ``floor(s)`` the group's time at full
    width.
    """
    if w_max <= 0:
        raise ValueError("W_max must be positive")
    woc_of = {core.core_id: core.woc_count for core in soc}
    best = 0
    for group in groups:
        if group.is_empty:
            continue
        total_woc = sum(woc_of.get(core_id, 0) for core_id in group.cores)
        if total_woc == 0:
            continue
        # Even spread over w_max wires cannot beat ceil(total / w_max);
        # per-core chain granularity only makes it worse.
        depth = -(-total_woc // w_max)
        best = max(best, group.patterns * (depth + capture_cycles))
    return best


def bound_report(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> BoundReport:
    """Assemble all lower bounds for one optimization instance."""
    return BoundReport(
        core_floor=intest_core_floor(soc),
        bandwidth_bound=intest_bandwidth_bound(soc, w_max),
        si_floor=si_floor(soc, groups, w_max, capture_cycles),
    )
