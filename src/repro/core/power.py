"""Power-constrained SI test scheduling (extension).

Concurrent tests dissipate power simultaneously; exceeding the package's
test power budget damages yield.  This extension — in the tradition of
power-constrained SOC test scheduling [Chou/Saluja/Agrawal; Iyengar &
Chakrabarty] — augments ``ScheduleSITest`` so that, in addition to the
rail-disjointness condition of Algorithm 1, the sum of the power ratings
of the tests running at any instant stays within a budget.

A group's power rating defaults to the sum of its cores' ratings: every
involved core's wrapper chain toggles during the group's shift phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compaction.groups import SITestGroup
from repro.core.scheduling import SIScheduleEntry, TamEvaluator
from repro.soc.model import Soc


@dataclass(frozen=True)
class PowerModel:
    """Test power ratings and the SOC budget.

    Attributes:
        budget: Maximum total power of concurrently running tests
            (same arbitrary unit as the ratings).
        core_power: Rating per core id; cores absent from the mapping are
            rated ``default_power``.
        default_power: Fallback rating.
    """

    budget: float
    core_power: dict[int, float] = field(default_factory=dict)
    default_power: float = 1.0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("power budget must be positive")
        if self.default_power < 0:
            raise ValueError("default power must be non-negative")
        for core_id, rating in self.core_power.items():
            if rating < 0:
                raise ValueError(f"core {core_id}: negative power rating")

    def rating_of(self, core_id: int) -> float:
        return self.core_power.get(core_id, self.default_power)

    def group_power(self, group: SITestGroup) -> float:
        """Power drawn while a group's tests shift: all its cores toggle."""
        return sum(self.rating_of(core_id) for core_id in group.cores)


def schedule_si_tests_power(
    entries: list[SIScheduleEntry],
    powers: dict[int, float],
    budget: float,
) -> tuple[tuple[SIScheduleEntry, ...], int]:
    """Algorithm 1 with an additional power constraint.

    An unscheduled test may start when (a) its rails are idle and (b) the
    power of the running tests plus its own stays within ``budget``.
    Tests whose own rating exceeds the budget are rejected outright (they
    could never be applied).

    Args:
        entries: Unscheduled entries from ``CalculateSITestTime``.
        powers: Power rating per ``group_id``.
        budget: Concurrency power budget.

    Raises:
        ValueError: If any single test exceeds the budget by itself.
    """
    for entry in entries:
        if powers.get(entry.group_id, 0.0) > budget:
            raise ValueError(
                f"SI group {entry.group_id} alone exceeds the power budget "
                f"({powers[entry.group_id]} > {budget})"
            )

    unscheduled = sorted(entries, key=lambda e: (-e.time_si, e.group_id))
    running: list[SIScheduleEntry] = []
    scheduled: list[SIScheduleEntry] = []
    current_time = 0
    t_si = 0

    while unscheduled:
        busy: set[int] = set()
        load = 0.0
        for entry in running:
            if entry.end > current_time:
                busy.update(entry.rails)
                load += powers.get(entry.group_id, 0.0)
        chosen = None
        for entry in unscheduled:
            if not busy.isdisjoint(entry.rails):
                continue
            if load + powers.get(entry.group_id, 0.0) > budget:
                continue
            chosen = entry
            break
        if chosen is not None:
            placed = SIScheduleEntry(
                group_id=chosen.group_id,
                time_si=chosen.time_si,
                rails=chosen.rails,
                bottleneck_rail=chosen.bottleneck_rail,
                begin=current_time,
                end=current_time + chosen.time_si,
            )
            unscheduled.remove(chosen)
            running.append(placed)
            scheduled.append(placed)
            t_si = max(t_si, placed.end)
        else:
            future_ends = [e.end for e in running if e.end > current_time]
            if not future_ends:
                raise RuntimeError(
                    "power-constrained scheduler stalled with idle rails"
                )
            current_time = min(future_ends)

    scheduled.sort(key=lambda e: (e.begin, e.group_id))
    return tuple(scheduled), t_si


class PowerAwareEvaluator(TamEvaluator):
    """TestRail cost model under a test power budget.

    Identical to :class:`TamEvaluator` except that the SI phase is packed
    by the power-constrained scheduler.  Use with
    :func:`repro.core.optimizer.optimize_tam` via its ``evaluator``
    parameter to co-optimize the architecture for the budget.
    """

    def __init__(
        self,
        soc: Soc,
        groups: tuple[SITestGroup, ...],
        power_model: PowerModel,
        capture_cycles: int = 1,
    ) -> None:
        super().__init__(soc, groups, capture_cycles=capture_cycles)
        self.power_model = power_model
        self._group_power = {
            group.group_id: power_model.group_power(group)
            for group in self.groups
        }

    def schedule(
        self, entries: list[SIScheduleEntry]
    ) -> tuple[tuple[SIScheduleEntry, ...], int]:
        return schedule_si_tests_power(
            entries, self._group_power, self.power_model.budget
        )
