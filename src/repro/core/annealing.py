"""Simulated-annealing TAM optimizer (comparison heuristic).

Algorithm 2 is a deterministic merge-based heuristic; this module provides
a randomized point of comparison for the ablation benches.  The state is a
complete TestRail architecture; neighbourhood moves are:

* move a core to another rail,
* move one wire from a rail (width >= 2) to another,
* split a multi-core rail's cores off onto a wire taken from it,
* merge two rails (widths added).

All moves conserve the pin budget, so every visited state is feasible.
Cost is the same ``T_soc`` as Algorithm 2's, scored through the shared
memoized :class:`~repro.core.scheduling.TamEvaluator` — the annealer and
the merge heuristic literally optimize the same objective.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.optimizer import OptimizationResult
from repro.core.scheduling import TamEvaluator
from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture


@dataclass(frozen=True)
class AnnealingConfig:
    """Cooling schedule knobs.

    Attributes:
        initial_temperature: Starting temperature as a *fraction* of the
            initial cost (self-scaling across SOCs).
        cooling_rate: Geometric cooling factor per step.
        steps: Total proposed moves.
        seed: RNG seed (runs are deterministic per seed).
    """

    initial_temperature: float = 0.05
    cooling_rate: float = 0.999
    steps: int = 4_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0 < self.cooling_rate < 1:
            raise ValueError("cooling_rate must lie in (0, 1)")
        if self.steps < 0:
            raise ValueError("steps must be non-negative")


def _propose(
    rng: random.Random, architecture: TestRailArchitecture
) -> TestRailArchitecture | None:
    """One random neighbour, or ``None`` when the move is inapplicable."""
    rails = architecture.rails
    move = rng.randrange(4)
    if move == 0 and len(rails) >= 2:
        # Move a core between rails.
        source = rng.randrange(len(rails))
        if len(rails[source].cores) < 2:
            return None
        destination = rng.randrange(len(rails) - 1)
        if destination >= source:
            destination += 1
        core_id = rng.choice(rails[source].cores)
        return architecture.with_core_moved(core_id, source, destination)
    if move == 1 and len(rails) >= 2:
        # Move one wire between rails.
        source = rng.randrange(len(rails))
        if rails[source].width < 2:
            return None
        destination = rng.randrange(len(rails) - 1)
        if destination >= source:
            destination += 1
        shrunk = TestRail(cores=rails[source].cores,
                          width=rails[source].width - 1)
        return architecture.with_rail(source, shrunk).with_rail(
            destination, rails[destination].widened(1)
        )
    if move == 2:
        # Split: peel a random core off onto one of the rail's wires.
        source = rng.randrange(len(rails))
        rail = rails[source]
        if len(rail.cores) < 2 or rail.width < 2:
            return None
        core_id = rng.choice(rail.cores)
        remaining = TestRail(
            cores=tuple(c for c in rail.cores if c != core_id),
            width=rail.width - 1,
        )
        new_rails = list(rails)
        new_rails[source] = remaining
        new_rails.append(TestRail(cores=(core_id,), width=1))
        return TestRailArchitecture(rails=tuple(new_rails))
    if move == 3 and len(rails) >= 2:
        # Merge two rails, widths added.
        first = rng.randrange(len(rails))
        second = rng.randrange(len(rails) - 1)
        if second >= first:
            second += 1
        return architecture.merged(
            first, second, rails[first].width + rails[second].width
        )
    return None


def anneal_tam(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    config: AnnealingConfig = AnnealingConfig(),
    capture_cycles: int = 1,
    initial: TestRailArchitecture | None = None,
) -> OptimizationResult:
    """Optimize a TestRail architecture by simulated annealing.

    Args:
        soc: The SOC under optimization.
        w_max: Pin budget; the initial state uses all of it and every move
            conserves it.
        groups: SI test groups (``()`` for InTest only).
        config: Cooling schedule.
        capture_cycles: Launch/capture cycles per SI pattern.
        initial: Optional warm start (e.g. Algorithm 2's result).

    Raises:
        ValueError: On a non-positive budget or an empty SOC.
    """
    if w_max <= 0:
        raise ValueError(f"W_max must be positive, got {w_max}")
    if not len(soc):
        raise ValueError(f"SOC {soc.name} has no cores")

    evaluator = TamEvaluator(soc, groups, capture_cycles=capture_cycles)
    rng = random.Random(config.seed)

    if initial is None:
        # Everything on one rail with the full budget: trivially feasible.
        architecture = TestRailArchitecture(
            rails=(TestRail.of(soc.core_ids, w_max),)
        )
    else:
        if initial.total_width != w_max:
            raise ValueError(
                f"warm start uses {initial.total_width} wires, budget is "
                f"{w_max}"
            )
        architecture = initial

    current_cost = evaluator.t_total(architecture)
    best_architecture = architecture
    best_cost = current_cost
    temperature = max(1.0, current_cost * config.initial_temperature)

    for _ in range(config.steps):
        candidate = _propose(rng, architecture)
        temperature *= config.cooling_rate
        if candidate is None:
            continue
        cost = evaluator.t_total(candidate)
        delta = cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            architecture = candidate
            current_cost = cost
            if cost < best_cost:
                best_cost = cost
                best_architecture = candidate

    return OptimizationResult(
        architecture=best_architecture,
        evaluation=evaluator.evaluate(best_architecture),
        w_max=w_max,
    )
