"""Optional C engine for the incremental move-evaluation scan.

:class:`repro.core.scheduling.IncrementalTamEvaluator` scores the
optimizer's candidate moves (widen a rail / move a core / merge two
rails) by patching at most two rails of a packed state and re-deriving
``T_soc``.  The patch arithmetic is pure integer work over flat arrays
— per-rail InTest times, per-group shift depths, a ``(core, width)``
time table, involved-rail bitmasks — so this module carries a small,
dependency-free C translation of the scan (same row arithmetic, same
entry sort, same greedy Algorithm 1 replay; see the evaluator docstring
for the equivalence argument) compiled on demand with whatever
``cc``/``gcc``/``clang`` the host provides and loaded through
:mod:`ctypes`.

The engine is strictly optional: if no compiler is present, compilation
fails, the smoke check fails, or ``REPRO_OPTIMIZER_CSCAN=0`` is set, the
evaluator silently falls back to its pure-Python patch path — scoring is
bit-identical either way.  Compiled objects are cached in the system
temp directory keyed by a hash of the C source, so the (sub-second)
compile happens once per source revision per machine, not once per
process.

The C side works on flattened integer streams only — rail membership as
dense core ids in CSR layout, core-to-group membership likewise — and
returns one ``T_soc`` total per candidate.  All core/group semantics
stay in Python; the C code never sees a rail object.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array

__all__ = ["available", "merge_distribute", "score_moves", "warm"]

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* Batch scorer for single-move TAM candidates.
 *
 * Per candidate at most two rails change.  The new rows are derived
 * from the CSR rail membership, the per-core WOC counts and the flat
 * (core, width) InTest time table; unchanged rails are read straight
 * from the base state's arrays.  The SI makespan is then replayed with
 * the greedy scheduler over (time, rail-mask, group-id) entries sorted
 * by (-time, group-id) -- the exact tie-break order of the Python
 * scheduler, so every total matches the reference evaluator bit for
 * bit.
 *
 * Move kinds: 0 widen(rail a), 1 move(core a, rail b -> rail c),
 * 2 merge(rails a + b onto c wires, b removed).  Rail masks are one
 * uint64, so callers must keep n_rails <= 64.
 */
int64_t repro_move_scan(
    int64_t n_rails, int64_t n_groups, int64_t capture,
    const int64_t *widths, const int64_t *time_in, const int64_t *depths,
    const int64_t *rail_off, const int32_t *rail_cores,
    const int64_t *woc, const int64_t *cg_off, const int32_t *cg_ids,
    const int64_t *patterns, const int64_t *gids,
    const int64_t *table, int64_t cap,
    int64_t n_moves, const int64_t *kinds,
    const int64_t *ma, const int64_t *mb, const int64_t *mc,
    int64_t *totals_out)
{
    if (n_rails > 64)
        return -1;
    const int64_t G = n_groups ? n_groups : 1;
    int64_t *row0 = calloc((size_t)G, 8);
    int64_t *row1 = calloc((size_t)G, 8);
    int64_t *et = malloc((size_t)G * 8);
    int64_t *eg = malloc((size_t)G * 8);
    int64_t *run_end = malloc((size_t)G * 8);
    uint64_t *em = malloc((size_t)G * 8);
    uint64_t *run_mask = malloc((size_t)G * 8);
    char *used = malloc((size_t)G);
    if (!row0 || !row1 || !et || !eg || !run_end || !em || !run_mask
        || !used) {
        free(row0); free(row1); free(et); free(eg); free(run_end);
        free(em); free(run_mask); free(used);
        return -1;
    }

    for (int64_t m = 0; m < n_moves; m++) {
        const int64_t kind = kinds[m], a = ma[m], b = mb[m], c = mc[m];
        int64_t changed0, changed1 = -1;
        int64_t new_tin0 = 0, new_tin1 = 0;
        int has1 = 0;
        for (int64_t g = 0; g < n_groups; g++) {
            row0[g] = 0;
            row1[g] = 0;
        }
        if (kind == 0) {            /* widen rail a by one wire */
            const int64_t w = widths[a] + 1;
            changed0 = a;
            for (int64_t k = rail_off[a]; k < rail_off[a + 1]; k++) {
                const int32_t core = rail_cores[k];
                new_tin0 += table[(size_t)core * cap + w - 1];
                const int64_t oc = woc[core];
                if (oc) {
                    const int64_t d = (oc + w - 1) / w;
                    for (int64_t kk = cg_off[core]; kk < cg_off[core + 1];
                         kk++)
                        row0[cg_ids[kk]] += d;
                }
            }
        } else if (kind == 1) {     /* move core a from rail b to rail c */
            changed0 = b;
            changed1 = c;
            has1 = 1;
            for (int64_t g = 0; g < n_groups; g++) {
                row0[g] = depths[b * n_groups + g];
                row1[g] = depths[c * n_groups + g];
            }
            new_tin0 = time_in[b] - table[(size_t)a * cap + widths[b] - 1];
            new_tin1 = time_in[c] + table[(size_t)a * cap + widths[c] - 1];
            const int64_t oc = woc[a];
            if (oc) {
                const int64_t d_src = (oc + widths[b] - 1) / widths[b];
                const int64_t d_dst = (oc + widths[c] - 1) / widths[c];
                for (int64_t kk = cg_off[a]; kk < cg_off[a + 1]; kk++) {
                    row0[cg_ids[kk]] -= d_src;
                    row1[cg_ids[kk]] += d_dst;
                }
            }
        } else {                    /* merge rails a + b onto c wires */
            const int64_t w = c;
            const int64_t pair[2] = { a, b };
            changed0 = a;
            changed1 = b;           /* removed: contributes nothing */
            for (int p = 0; p < 2; p++) {
                const int64_t r = pair[p];
                for (int64_t k = rail_off[r]; k < rail_off[r + 1]; k++) {
                    const int32_t core = rail_cores[k];
                    new_tin0 += table[(size_t)core * cap + w - 1];
                    const int64_t oc = woc[core];
                    if (oc) {
                        const int64_t d = (oc + w - 1) / w;
                        for (int64_t kk = cg_off[core];
                             kk < cg_off[core + 1]; kk++)
                            row0[cg_ids[kk]] += d;
                    }
                }
            }
        }

        int64_t t_in = new_tin0;
        if (has1 && new_tin1 > t_in)
            t_in = new_tin1;
        for (int64_t r = 0; r < n_rails; r++) {
            if (r == changed0 || r == changed1)
                continue;
            if (time_in[r] > t_in)
                t_in = time_in[r];
        }

        int64_t ne = 0;
        for (int64_t g = 0; g < n_groups; g++) {
            int64_t best = 0;
            uint64_t mask = 0;
            for (int64_t r = 0; r < n_rails; r++) {
                int64_t d;
                if (r == changed0)
                    d = row0[g];
                else if (r == changed1)
                    d = has1 ? row1[g] : 0;
                else
                    d = depths[r * n_groups + g];
                if (d) {
                    mask |= 1ULL << r;
                    const int64_t t = patterns[g] * (d + capture);
                    if (t > best)
                        best = t;
                }
            }
            if (mask) {
                et[ne] = best;
                em[ne] = mask;
                eg[ne] = gids[g];
                ne++;
            }
        }

        /* sort entries by (-time, group_id); keys are unique */
        for (int64_t i = 1; i < ne; i++) {
            const int64_t t = et[i], g = eg[i];
            const uint64_t mk = em[i];
            int64_t j = i - 1;
            while (j >= 0 && (et[j] < t || (et[j] == t && eg[j] > g))) {
                et[j + 1] = et[j];
                em[j + 1] = em[j];
                eg[j + 1] = eg[j];
                j--;
            }
            et[j + 1] = t;
            em[j + 1] = mk;
            eg[j + 1] = g;
        }

        /* greedy Algorithm 1 replay */
        int64_t t_si = 0, current = 0, n_run = 0, left = ne;
        for (int64_t i = 0; i < ne; i++)
            used[i] = 0;
        while (left) {
            uint64_t busy = 0;
            for (int64_t k = 0; k < n_run; k++)
                if (run_end[k] > current)
                    busy |= run_mask[k];
            int64_t pick = -1;
            for (int64_t i = 0; i < ne; i++)
                if (!used[i] && !(busy & em[i])) {
                    pick = i;
                    break;
                }
            if (pick >= 0) {
                used[pick] = 1;
                left--;
                const int64_t end = current + et[pick];
                run_end[n_run] = end;
                run_mask[n_run] = em[pick];
                n_run++;
                if (end > t_si)
                    t_si = end;
            } else {
                int64_t next = INT64_MAX;
                for (int64_t k = 0; k < n_run; k++)
                    if (run_end[k] > current && run_end[k] < next)
                        next = run_end[k];
                if (next == INT64_MAX) {
                    free(row0); free(row1); free(et); free(eg);
                    free(run_end); free(em); free(run_mask); free(used);
                    return -2;  /* stalled: cannot happen on valid input */
                }
                current = next;
            }
        }
        totals_out[m] = t_in + t_si;
    }
    free(row0); free(row1); free(et); free(eg); free(run_end);
    free(em); free(run_mask); free(used);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Full mergeTAMs candidate with leftover-wire redistribution.
 *
 * The expensive optimizer path is "merge rails a+b onto c wires, then
 * hand the (w_a + w_b - c) freed wires to bottleneck rails one at a
 * time" -- a greedy loop whose every wire re-derives the bottleneck set
 * (InTest maxima plus the SI schedule's critical chain) and scores one
 * widen candidate per bottleneck rail.  The routines below replay that
 * loop with the exact Python semantics: the same group bottleneck
 * (first rail achieving the strict maximum, scanning ascending), the
 * same schedule order (picks sorted by (begin, group_id)), the same
 * stable critical-chain walk (end descending, ties in original order),
 * and the same first-candidate strict-< selection over ascending rail
 * indices.  Choices are reported so the caller can replay the winning
 * candidate; losers never materialize on the Python side.
 *
 * The (core, width) time table is filled lazily by the caller, so
 * every read consults the parallel `have` byte map; a missing cell
 * aborts with -3 and reports (core, width) for the caller to fill
 * before retrying. */

static int64_t rpr_groups(
    int64_t R, int64_t n_groups, int64_t capture,
    const int64_t *ld, const int64_t *patterns, const int64_t *gids,
    int64_t *gb, int64_t *et, uint64_t *em, int64_t *eg, int64_t *ex)
{
    int64_t ne = 0;
    for (int64_t g = 0; g < n_groups; g++) {
        int64_t best = 0, btn = -1;
        uint64_t mask = 0;
        for (int64_t r = 0; r < R; r++) {
            const int64_t d = ld[r * n_groups + g];
            if (d) {
                mask |= 1ULL << r;
                const int64_t t = patterns[g] * (d + capture);
                if (t > best) {
                    best = t;
                    btn = r;
                }
            }
        }
        gb[g] = btn;
        if (mask) {
            et[ne] = best;
            em[ne] = mask;
            eg[ne] = gids[g];
            ex[ne] = g;
            ne++;
        }
    }
    /* sort entries by (-time, group_id); keys are unique */
    for (int64_t i = 1; i < ne; i++) {
        const int64_t t = et[i], g = eg[i], x = ex[i];
        const uint64_t mk = em[i];
        int64_t j = i - 1;
        while (j >= 0 && (et[j] < t || (et[j] == t && eg[j] > g))) {
            et[j + 1] = et[j];
            em[j + 1] = em[j];
            eg[j + 1] = eg[j];
            ex[j + 1] = ex[j];
            j--;
        }
        et[j + 1] = t;
        em[j + 1] = mk;
        eg[j + 1] = g;
        ex[j + 1] = x;
    }
    return ne;
}

/* Greedy Algorithm 1 over sorted entries; when sb is non-NULL the
 * schedule (begin, end, group_id, group_index) is recorded and sorted
 * by (begin, group_id).  Returns the schedule length, or -2 on stall. */
static int64_t rpr_greedy(
    int64_t ne, const int64_t *et, const uint64_t *em,
    const int64_t *eg, const int64_t *ex,
    int64_t *sb, int64_t *se, int64_t *sg, int64_t *sx,
    int64_t *run_end, uint64_t *run_mask, char *used, int64_t *t_si_out)
{
    int64_t t_si = 0, current = 0, n_run = 0, left = ne, ns = 0;
    for (int64_t i = 0; i < ne; i++)
        used[i] = 0;
    while (left) {
        uint64_t busy = 0;
        for (int64_t k = 0; k < n_run; k++)
            if (run_end[k] > current)
                busy |= run_mask[k];
        int64_t pick = -1;
        for (int64_t i = 0; i < ne; i++)
            if (!used[i] && !(busy & em[i])) {
                pick = i;
                break;
            }
        if (pick >= 0) {
            used[pick] = 1;
            left--;
            const int64_t end = current + et[pick];
            run_end[n_run] = end;
            run_mask[n_run] = em[pick];
            n_run++;
            if (sb) {
                sb[ns] = current;
                se[ns] = end;
                sg[ns] = eg[pick];
                sx[ns] = ex[pick];
            }
            ns++;
            if (end > t_si)
                t_si = end;
        } else {
            int64_t next = INT64_MAX;
            for (int64_t k = 0; k < n_run; k++)
                if (run_end[k] > current && run_end[k] < next)
                    next = run_end[k];
            if (next == INT64_MAX)
                return -2;
            current = next;
        }
    }
    if (sb) {
        /* sort by (begin, group_id); keys are unique */
        for (int64_t i = 1; i < ns; i++) {
            const int64_t b = sb[i], e = se[i], g = sg[i], x = sx[i];
            int64_t j = i - 1;
            while (j >= 0 && (sb[j] > b || (sb[j] == b && sg[j] > g))) {
                sb[j + 1] = sb[j];
                se[j + 1] = se[j];
                sg[j + 1] = sg[j];
                sx[j + 1] = sx[j];
                j--;
            }
            sb[j + 1] = b;
            se[j + 1] = e;
            sg[j + 1] = g;
            sx[j + 1] = x;
        }
    }
    *t_si_out = t_si;
    return ns;
}

/* Bottleneck rails: InTest maxima plus the bottleneck of every group on
 * the schedule's critical chain (walked end-descending, stable). */
static uint64_t rpr_bottlenecks(
    int64_t R, const int64_t *lt, int64_t t_in,
    int64_t ns, const int64_t *sb, const int64_t *se, const int64_t *sx,
    const int64_t *gb, int64_t t_si, int64_t *ord, int64_t *crit)
{
    uint64_t mask = 0;
    if (t_in > 0)
        for (int64_t r = 0; r < R; r++)
            if (lt[r] == t_in)
                mask |= 1ULL << r;
    if (ns) {
        for (int64_t i = 0; i < ns; i++)
            ord[i] = i;
        /* stable sort by end descending (strict compare keeps ties in
         * (begin, group_id) order -- Python's sorted() stability) */
        for (int64_t i = 1; i < ns; i++) {
            const int64_t key = ord[i];
            int64_t j = i - 1;
            while (j >= 0 && se[ord[j]] < se[key]) {
                ord[j + 1] = ord[j];
                j--;
            }
            ord[j + 1] = key;
        }
        int64_t ncrit = 0;
        crit[ncrit++] = t_si;
        for (int64_t i = 0; i < ns; i++) {
            const int64_t e = se[ord[i]];
            int member = 0;
            for (int64_t k = 0; k < ncrit; k++)
                if (crit[k] == e) {
                    member = 1;
                    break;
                }
            if (member) {
                mask |= 1ULL << gb[sx[ord[i]]];
                if (sb[ord[i]] > 0)
                    crit[ncrit++] = sb[ord[i]];
            }
        }
    }
    return mask;
}

/* Score widening local rail r by one wire.  Returns the candidate
 * T_soc (always >= 0), -2 on stall, or -3 with missing_out filled when
 * a table cell is absent.  new_tin_out/new_row receive the rail's
 * patched figures for a later apply. */
static int64_t rpr_score_widen(
    int64_t R, int64_t n_groups, int64_t capture, int64_t r,
    const int64_t *lw, const int64_t *lt, const int64_t *ld,
    const int64_t *loff, const int32_t *lcores,
    const int64_t *woc, const int64_t *cg_off, const int32_t *cg_ids,
    const int64_t *patterns, const int64_t *gids,
    const int64_t *table, const uint8_t *have, int64_t cap,
    int64_t *et, uint64_t *em, int64_t *eg, int64_t *ex,
    int64_t *run_end, uint64_t *run_mask, char *used,
    int64_t *new_tin_out, int64_t *new_row, int64_t *missing_out)
{
    const int64_t w = lw[r] + 1;
    int64_t tin = 0;
    for (int64_t g = 0; g < n_groups; g++)
        new_row[g] = 0;
    for (int64_t k = loff[r]; k < loff[r + 1]; k++) {
        const int32_t core = lcores[k];
        if (w > cap || !have[(size_t)core * cap + w - 1]) {
            missing_out[0] = core;
            missing_out[1] = w;
            return -3;
        }
        tin += table[(size_t)core * cap + w - 1];
        const int64_t oc = woc[core];
        if (oc) {
            const int64_t d = (oc + w - 1) / w;
            for (int64_t kk = cg_off[core]; kk < cg_off[core + 1]; kk++)
                new_row[cg_ids[kk]] += d;
        }
    }
    int64_t t_in = tin;
    for (int64_t rr = 0; rr < R; rr++)
        if (rr != r && lt[rr] > t_in)
            t_in = lt[rr];
    int64_t ne = 0;
    for (int64_t g = 0; g < n_groups; g++) {
        int64_t best = 0;
        uint64_t mask = 0;
        for (int64_t rr = 0; rr < R; rr++) {
            const int64_t d = (rr == r) ? new_row[g]
                                        : ld[rr * n_groups + g];
            if (d) {
                mask |= 1ULL << rr;
                const int64_t t = patterns[g] * (d + capture);
                if (t > best)
                    best = t;
            }
        }
        if (mask) {
            et[ne] = best;
            em[ne] = mask;
            eg[ne] = gids[g];
            ex[ne] = g;
            ne++;
        }
    }
    for (int64_t i = 1; i < ne; i++) {
        const int64_t t = et[i], g = eg[i], x = ex[i];
        const uint64_t mk = em[i];
        int64_t j = i - 1;
        while (j >= 0 && (et[j] < t || (et[j] == t && eg[j] > g))) {
            et[j + 1] = et[j];
            em[j + 1] = em[j];
            eg[j + 1] = eg[j];
            ex[j + 1] = ex[j];
            j--;
        }
        et[j + 1] = t;
        em[j + 1] = mk;
        eg[j + 1] = g;
        ex[j + 1] = x;
    }
    int64_t t_si = 0;
    const int64_t ns = rpr_greedy(ne, et, em, eg, ex, 0, 0, 0, 0,
                                  run_end, run_mask, used, &t_si);
    if (ns < 0)
        return -2;
    *new_tin_out = tin;
    return t_in + t_si;
}

int64_t repro_merge_distribute(
    int64_t n_rails, int64_t n_groups, int64_t capture,
    const int64_t *widths, const int64_t *time_in, const int64_t *depths,
    const int64_t *rail_off, const int32_t *rail_cores,
    const int64_t *woc, const int64_t *cg_off, const int32_t *cg_ids,
    const int64_t *patterns, const int64_t *gids,
    const int64_t *table, const uint8_t *have, int64_t cap,
    int64_t merge_a, int64_t merge_b, int64_t merge_c, int64_t leftover,
    int64_t *choices_out, int64_t *total_out, int64_t *missing_out)
{
    if (n_rails > 64 || n_rails < 2 || leftover < 0)
        return -1;
    const int64_t R = n_rails - 1;      /* rails after the merge */
    const int64_t G = n_groups ? n_groups : 1;
    const int64_t ncores = rail_off[n_rails];
    int64_t status = 0;
    int64_t *lw = malloc((size_t)R * 8);
    int64_t *lt = malloc((size_t)R * 8);
    int64_t *ld = calloc((size_t)(R * G), 8);
    int64_t *loff = malloc((size_t)(R + 1) * 8);
    int32_t *lcores = malloc((size_t)ncores * 4);
    int64_t *gb = malloc((size_t)G * 8);
    int64_t *et = malloc((size_t)G * 8);
    uint64_t *em = malloc((size_t)G * 8);
    int64_t *eg = malloc((size_t)G * 8);
    int64_t *ex = malloc((size_t)G * 8);
    int64_t *sb = malloc((size_t)G * 8);
    int64_t *se = malloc((size_t)G * 8);
    int64_t *sg = malloc((size_t)G * 8);
    int64_t *sx = malloc((size_t)G * 8);
    int64_t *ord = malloc((size_t)G * 8);
    int64_t *crit = malloc((size_t)(G + 1) * 8);
    int64_t *run_end = malloc((size_t)G * 8);
    uint64_t *run_mask = malloc((size_t)G * 8);
    char *used = malloc((size_t)G);
    int64_t *cand_d = malloc((size_t)G * 8);
    int64_t *best_d = malloc((size_t)G * 8);
    if (!lw || !lt || !ld || !loff || !lcores || !gb || !et || !em
        || !eg || !ex || !sb || !se || !sg || !sx || !ord || !crit
        || !run_end || !run_mask || !used || !cand_d || !best_d) {
        status = -1;
        goto done;
    }

    /* local post-merge state: rail b removed, the merged rail takes
     * rail a's (shifted) slot -- the exact remap of the Python apply */
    {
        int64_t pos = 0;
        for (int64_t r = 0; r < n_rails; r++) {
            if (r == merge_b)
                continue;
            const int64_t lr = r - (r > merge_b);
            loff[lr] = pos;
            if (r == merge_a) {
                const int64_t pair[2] = { merge_a, merge_b };
                int64_t tin = 0;
                for (int p = 0; p < 2; p++) {
                    for (int64_t k = rail_off[pair[p]];
                         k < rail_off[pair[p] + 1]; k++) {
                        const int32_t core = rail_cores[k];
                        lcores[pos++] = core;
                        if (merge_c > cap
                            || !have[(size_t)core * cap + merge_c - 1]) {
                            missing_out[0] = core;
                            missing_out[1] = merge_c;
                            status = -3;
                            goto done;
                        }
                        tin += table[(size_t)core * cap + merge_c - 1];
                        const int64_t oc = woc[core];
                        if (oc) {
                            const int64_t d = (oc + merge_c - 1) / merge_c;
                            for (int64_t kk = cg_off[core];
                                 kk < cg_off[core + 1]; kk++)
                                ld[lr * n_groups + cg_ids[kk]] += d;
                        }
                    }
                }
                lw[lr] = merge_c;
                lt[lr] = tin;
            } else {
                lw[lr] = widths[r];
                lt[lr] = time_in[r];
                for (int64_t g = 0; g < n_groups; g++)
                    ld[lr * n_groups + g] = depths[r * n_groups + g];
                for (int64_t k = rail_off[r]; k < rail_off[r + 1]; k++)
                    lcores[pos++] = rail_cores[k];
            }
        }
        loff[R] = pos;
    }

    for (int64_t wire = 0; ; wire++) {
        const int64_t ne = rpr_groups(R, n_groups, capture, ld, patterns,
                                      gids, gb, et, em, eg, ex);
        int64_t t_si = 0;
        const int64_t ns = rpr_greedy(ne, et, em, eg, ex, sb, se, sg, sx,
                                      run_end, run_mask, used, &t_si);
        if (ns < 0) {
            status = -2;
            goto done;
        }
        int64_t t_in = 0;
        for (int64_t r = 0; r < R; r++)
            if (lt[r] > t_in)
                t_in = lt[r];
        if (wire == leftover) {
            *total_out = t_in + t_si;
            break;
        }
        uint64_t cand = rpr_bottlenecks(R, lt, t_in, ns, sb, se, sx, gb,
                                        t_si, ord, crit);
        if (!cand)
            cand = (R == 64) ? ~0ULL : ((1ULL << R) - 1);
        int64_t best_total = INT64_MAX, best_r = -1, best_tin = 0;
        for (int64_t r = 0; r < R; r++) {
            if (!(cand & (1ULL << r)))
                continue;
            int64_t tin_r = 0;
            const int64_t total = rpr_score_widen(
                R, n_groups, capture, r, lw, lt, ld, loff, lcores,
                woc, cg_off, cg_ids, patterns, gids, table, have, cap,
                et, em, eg, ex, run_end, run_mask, used,
                &tin_r, cand_d, missing_out);
            if (total < 0) {
                status = total;
                goto done;
            }
            if (total < best_total) {
                best_total = total;
                best_r = r;
                best_tin = tin_r;
                for (int64_t g = 0; g < n_groups; g++)
                    best_d[g] = cand_d[g];
            }
        }
        if (best_r < 0) {
            status = -1;
            goto done;
        }
        choices_out[wire] = best_r;
        lw[best_r] += 1;
        lt[best_r] = best_tin;
        for (int64_t g = 0; g < n_groups; g++)
            ld[best_r * n_groups + g] = best_d[g];
    }

done:
    free(lw); free(lt); free(ld); free(loff); free(lcores); free(gb);
    free(et); free(em); free(eg); free(ex); free(sb); free(se); free(sg);
    free(sx); free(ord); free(crit); free(run_end); free(run_mask);
    free(used); free(cand_d); free(best_d);
    return status;
}
"""

_DISABLE_VALUES = ("0", "off", "no", "false")

#: Cached load result: ``None`` = not attempted, ``False`` = unavailable.
_engine = None


def _compile() -> str | None:
    """Compile the C source into a cached shared object; return its path."""
    compiler = (shutil.which("cc") or shutil.which("gcc")
                or shutil.which("clang"))
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(tempfile.gettempdir(),
                           f"repro-movescan-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        with tempfile.TemporaryDirectory() as workdir:
            source = os.path.join(workdir, "movescan.c")
            with open(source, "w", encoding="ascii") as handle:
                handle.write(_SOURCE)
            built = os.path.join(workdir, "movescan.so")
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", built, source],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(built, so_path)
    except (OSError, subprocess.SubprocessError):
        return None
    return so_path


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_move_scan
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # rails/groups/capture
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # widths/tin/depths
        ctypes.c_void_p, ctypes.c_void_p,  # rail_off, rail_cores
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # woc, cg CSR
        ctypes.c_void_p, ctypes.c_void_p,  # patterns, gids
        ctypes.c_void_p, ctypes.c_int64,   # table, cap
        ctypes.c_int64, ctypes.c_void_p,   # n_moves, kinds
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # ma, mb, mc
        ctypes.c_void_p,                   # totals_out
    ]
    dist = lib.repro_merge_distribute
    dist.restype = ctypes.c_int64
    dist.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # rails/groups/capture
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # widths/tin/depths
        ctypes.c_void_p, ctypes.c_void_p,  # rail_off, rail_cores
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # woc, cg CSR
        ctypes.c_void_p, ctypes.c_void_p,  # patterns, gids
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64,  # table, have, cap
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,    # merge a, b, c
        ctypes.c_int64,                    # leftover
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # choices/total/missing
    ]
    return fn, dist


def _addr(buffer: array) -> int:
    return buffer.buffer_info()[0]


def _run(fn, n_rails, n_groups, capture, widths, time_in, depths,
         rail_off, rail_cores, woc, cg_off, cg_ids, patterns, gids,
         table, cap, kinds, ma, mb, mc):
    n_moves = len(kinds)
    totals = array("q", bytes(8 * n_moves))
    status = fn(
        n_rails, n_groups, capture,
        _addr(widths), _addr(time_in), _addr(depths),
        _addr(rail_off), _addr(rail_cores),
        _addr(woc), _addr(cg_off), _addr(cg_ids),
        _addr(patterns), _addr(gids),
        _addr(table), cap,
        n_moves, _addr(kinds),
        _addr(ma), _addr(mb), _addr(mc),
        _addr(totals),
    )
    if status < 0:
        return None
    return list(totals)


def _run_distribute(dist, n_rails, n_groups, capture, widths, time_in,
                    depths, rail_off, rail_cores, woc, cg_off, cg_ids,
                    patterns, gids, table, have, cap,
                    merge_a, merge_b, merge_c, leftover):
    """Run the merge+distribute replay once.

    Returns ``(total, choices)`` on success, ``(core, width)`` ints
    packed in a :class:`MissingCell` when the time table lacks a cell,
    and ``None`` on hard errors (caller falls back to Python).
    """
    choices = array("q", bytes(8 * max(leftover, 1)))
    total = array("q", (0,))
    missing = array("q", (0, 0))
    status = dist(
        n_rails, n_groups, capture,
        _addr(widths), _addr(time_in), _addr(depths),
        _addr(rail_off), _addr(rail_cores),
        _addr(woc), _addr(cg_off), _addr(cg_ids),
        _addr(patterns), _addr(gids),
        _addr(table), _addr(have), cap,
        merge_a, merge_b, merge_c, leftover,
        _addr(choices), _addr(total), _addr(missing),
    )
    if status == -3:
        return MissingCell(missing[0], missing[1])
    if status < 0:
        return None
    return total[0], tuple(choices[:leftover])


class MissingCell(tuple):
    """Sentinel result: the C replay needs ``(core, width)`` filled."""

    __slots__ = ()

    def __new__(cls, core, width):
        return super().__new__(cls, (core, width))


def _smoke(fn) -> bool:
    """One hand-rolled call guarding against ABI/layout mishaps.

    Two one-core rails of width 1; core 0 has WOC 2 and belongs to the
    single SI group (3 patterns, 1 capture cycle), core 1 has none.  The
    base state costs 10 + 9 = 19; widening rail 0 must score 12, moving
    core 1 onto rail 0 must score 23, and merging both rails onto two
    wires must score 16 — worked by hand from the timing model.
    """
    out = _run(
        fn, 2, 1, 1,
        array("q", (1, 1)), array("q", (10, 4)), array("q", (2, 0)),
        array("q", (0, 1, 2)), array("i", (0, 1)),       # rail CSR
        array("q", (2, 0)),                               # woc
        array("q", (0, 1, 1)), array("i", (0,)),          # core-group CSR
        array("q", (3,)), array("q", (0,)),               # patterns, gids
        array("q", (10, 6, 4, 4)), 2,                     # time table, cap
        array("q", (0, 1, 2)),                            # kinds
        array("q", (0, 1, 0)),                            # a
        array("q", (0, 1, 1)),                            # b
        array("q", (0, 0, 2)),                            # c
    )
    return out == [12, 23, 16]


def _smoke_distribute(dist) -> bool:
    """Hand-rolled check of the merge+distribute replay on the same tiny
    SOC: merging both rails onto one wire with one leftover wire costs
    14 + 9 = 23 before redistribution; the single bottleneck is the
    merged rail, widening it to two wires lands on the exact-merge total
    of 16 with choice sequence [0]."""
    out = _run_distribute(
        dist, 2, 1, 1,
        array("q", (1, 1)), array("q", (10, 4)), array("q", (2, 0)),
        array("q", (0, 1, 2)), array("i", (0, 1)),       # rail CSR
        array("q", (2, 0)),                               # woc
        array("q", (0, 1, 1)), array("i", (0,)),          # core-group CSR
        array("q", (3,)), array("q", (0,)),               # patterns, gids
        array("q", (10, 6, 4, 4)), array("B", (1, 1, 1, 1)), 2,
        0, 1, 1, 1,                                       # merge a, b, c; L
    )
    return out == (16, (0,))


def available() -> bool:
    """Whether the C move scanner compiled, loaded, and passed its smoke."""
    global _engine
    if _engine is None:
        _engine = False
        toggle = os.environ.get("REPRO_OPTIMIZER_CSCAN", "").strip().lower()
        if toggle not in _DISABLE_VALUES and not _load_fault_injected():
            so_path = _compile()
            if so_path is not None:
                try:
                    fns = _bind(so_path)
                except (OSError, AttributeError):
                    fns = None
                if (fns is not None and _smoke(fns[0])
                        and _smoke_distribute(fns[1])):
                    _engine = fns
            if _engine is False:
                # Wanted but unresolvable on this host: disclose the
                # pure-Python degradation once per process.
                from repro.runtime.instrumentation import incr

                incr("recovery.degraded.movescan")
    return _engine is not False


def warm() -> bool:
    """Resolve the engine now, instead of lazily inside the first scan.

    The resolved handles are cached for the life of the process (module
    global), so a persistent sweep worker that calls this during warm-up
    pays the compile/load/smoke cost exactly once, outside any cell's
    wall clock — later cells reuse the handles with a dict lookup.
    """
    return available()


def _load_fault_injected() -> bool:
    """``movescan.load`` injection site: a due ``movescan-compile-fail``
    fault makes the engine unavailable, exactly like a host with no
    compiler; the evaluator then takes its pure-Python patch path."""
    from repro.resilience.faults import check_fault
    from repro.runtime.instrumentation import incr

    if check_fault("movescan.load") is None:
        return False
    incr("recovery.movescan_fallback")
    return True


def score_moves(n_rails, n_groups, capture, widths, time_in, depths,
                rail_off, rail_cores, woc, cg_off, cg_ids, patterns, gids,
                table, cap, kinds, ma, mb, mc):
    """Score a candidate batch in C; ``None`` when the engine is
    unavailable (callers fall back to the Python patch path).

    All array arguments are :mod:`array` buffers in the layout described
    by the C source; returns one ``T_soc`` total per candidate.
    """
    if not available():
        return None
    return _run(_engine[0], n_rails, n_groups, capture, widths, time_in,
                depths, rail_off, rail_cores, woc, cg_off, cg_ids,
                patterns, gids, table, cap, kinds, ma, mb, mc)


def merge_distribute(n_rails, n_groups, capture, widths, time_in, depths,
                     rail_off, rail_cores, woc, cg_off, cg_ids, patterns,
                     gids, table, have, cap,
                     merge_a, merge_b, merge_c, leftover):
    """Replay one merge-with-leftover candidate in C.

    Returns ``(total, choices)`` — the candidate's ``T_soc`` after the
    greedy leftover redistribution plus the chosen rail index per wire
    (post-merge indexing, for replaying the winner) — a
    :class:`MissingCell` when a ``(core, width)`` time-table cell must
    be filled first, or ``None`` when the engine is unavailable.
    """
    if not available():
        return None
    return _run_distribute(_engine[1], n_rails, n_groups, capture, widths,
                           time_in, depths, rail_off, rail_cores, woc,
                           cg_off, cg_ids, patterns, gids, table, have,
                           cap, merge_a, merge_b, merge_c, leftover)
