"""What-if analysis of a finished architecture.

Designers reading an optimization result ask two questions: "what would
one more pin buy me?" and "which rail is the money rail?".  This module
answers both by differentiating the cost model around the final
architecture:

* marginal wire value — ΔT_soc from granting each rail one extra wire
  (beyond the budget), identifying where a future pin should go;
* wire removal cost — ΔT_soc from taking one wire away from each rail
  (where the design has slack);
* core move gains — the best single-core move still available (zero for
  a converged ``coreReshuffle``, by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.core.scheduling import TamEvaluator
from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture


@dataclass(frozen=True)
class WireDelta:
    """Effect of changing one rail's width by one wire."""

    rail_index: int
    delta: int  # T_soc(after) - T_soc(before); negative = improvement


@dataclass(frozen=True)
class WhatIfReport:
    """Marginal analysis around one architecture."""

    t_total: int
    add_wire: tuple[WireDelta, ...]
    remove_wire: tuple[WireDelta, ...]
    best_core_move_delta: int

    @property
    def best_new_pin_rail(self) -> int:
        """Rail that benefits most from one extra pin."""
        return min(self.add_wire, key=lambda d: d.delta).rail_index

    @property
    def marginal_pin_value(self) -> int:
        """Cycles saved by the best single extra pin (>= 0)."""
        return max(0, -min(d.delta for d in self.add_wire))


def what_if(
    soc: Soc,
    architecture: TestRailArchitecture,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> WhatIfReport:
    """Differentiate ``T_soc`` around ``architecture``."""
    evaluator = TamEvaluator(soc, groups, capture_cycles=capture_cycles)
    base = evaluator.t_total(architecture)

    add = []
    remove = []
    for index, rail in enumerate(architecture.rails):
        wider = architecture.with_rail(index, rail.widened(1))
        add.append(WireDelta(rail_index=index,
                             delta=evaluator.t_total(wider) - base))
        if rail.width > 1:
            narrower = architecture.with_rail(
                index, TestRail(cores=rail.cores, width=rail.width - 1)
            )
            remove.append(
                WireDelta(rail_index=index,
                          delta=evaluator.t_total(narrower) - base)
            )

    best_move = 0
    for source in range(len(architecture.rails)):
        rail = architecture.rails[source]
        if len(rail.cores) < 2:
            continue
        for core_id in rail.cores:
            for destination in range(len(architecture.rails)):
                if destination == source:
                    continue
                moved = architecture.with_core_moved(
                    core_id, source, destination
                )
                best_move = min(
                    best_move, evaluator.t_total(moved) - base
                )

    return WhatIfReport(
        t_total=base,
        add_wire=tuple(add),
        remove_wire=tuple(remove),
        best_core_move_delta=best_move,
    )


def format_whatif_report(report: WhatIfReport) -> str:
    """Text rendering of the marginal analysis."""
    lines = [f"T_soc = {report.t_total} cc"]
    lines.append("one extra pin:")
    for delta in sorted(report.add_wire, key=lambda d: d.delta):
        lines.append(f"  rail {delta.rail_index}: {delta.delta:+d} cc")
    if report.remove_wire:
        lines.append("one pin removed:")
        for delta in sorted(report.remove_wire, key=lambda d: d.delta):
            lines.append(f"  rail {delta.rail_index}: {delta.delta:+d} cc")
    lines.append(
        f"best remaining single-core move: "
        f"{report.best_core_move_delta:+d} cc"
    )
    return "\n".join(lines)
