"""Execution runtime: parallel sweeps, evaluation caching, instrumentation.

The experiments of the paper (Tables 2-3, the Pareto sweep, the volume
study) decompose into independent *cells* — one ``TAM_Optimization`` or
grouping run per (``W_max``, group count) pair.  This package provides the
machinery to run those cells fast and observably:

* :mod:`repro.runtime.executor` — a process-pool sweep executor with
  deterministic result ordering, per-cell timeout, retry-once fault
  handling and a graceful serial fallback.
* :mod:`repro.runtime.pool` — the work-stealing ``workers`` sweep
  backend: persistent warm workers with shard queues, cell batching,
  dead-worker reassignment and a shared warm-state cache.
* :mod:`repro.runtime.cache` — a keyed evaluation cache (in-memory LRU
  plus an optional on-disk JSON store) memoizing grouping results and
  architecture optimizations by a stable content hash of their inputs.
* :mod:`repro.runtime.instrumentation` — counters and wall/CPU timers
  threaded through the optimizer, the compactor and the schedulers,
  emitted as a structured JSON run report.
* :mod:`repro.runtime.supervision` — the declarative :class:`RunPolicy`
  (retry budgets with deterministic backoff, deadlines, a failure-rate
  circuit breaker), the backend degradation ladder, and the resource
  guards (disk preflight, worker RSS watchdog) every execution layer
  consults.
* :mod:`repro.runtime.codec` — exact JSON round-trips for the cached
  result objects.
"""

from repro.runtime.cache import (
    EvaluationCache,
    audit_store,
    default_codecs,
    gc_store,
    grouping_cache_key,
    optimize_cache_key,
    patterns_cache_key,
    soc_fingerprint,
    stable_hash,
    verify_store,
)
from repro.runtime.executor import (
    SWEEP_BACKENDS,
    CellError,
    CellFailure,
    resolve_sweep_backend,
    run_cells,
)
from repro.runtime.pool import (
    PatternsRef,
    PoolUnavailable,
    SharedStateStore,
    WorkerPool,
    resolve_patterns,
    run_cells_stolen,
)
from repro.runtime.instrumentation import (
    Instrumentation,
    RunReport,
    absorb_snapshot,
    call_with_instrumentation,
    get_instrumentation,
    incr,
    use_instrumentation,
)
from repro.runtime.supervision import (
    CircuitBreaker,
    CircuitOpenError,
    PlanDeadlineError,
    PolicyError,
    RetryPolicy,
    RunPolicy,
    current_breaker,
    current_policy,
    use_policy,
)

__all__ = [
    "CellError",
    "CellFailure",
    "CircuitBreaker",
    "CircuitOpenError",
    "EvaluationCache",
    "Instrumentation",
    "PatternsRef",
    "PlanDeadlineError",
    "PolicyError",
    "PoolUnavailable",
    "RetryPolicy",
    "RunPolicy",
    "RunReport",
    "SWEEP_BACKENDS",
    "SharedStateStore",
    "WorkerPool",
    "absorb_snapshot",
    "audit_store",
    "call_with_instrumentation",
    "current_breaker",
    "current_policy",
    "default_codecs",
    "gc_store",
    "get_instrumentation",
    "grouping_cache_key",
    "incr",
    "optimize_cache_key",
    "patterns_cache_key",
    "resolve_patterns",
    "resolve_sweep_backend",
    "run_cells",
    "run_cells_stolen",
    "soc_fingerprint",
    "stable_hash",
    "use_instrumentation",
    "use_policy",
    "verify_store",
]
