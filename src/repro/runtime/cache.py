"""Keyed evaluation cache: in-memory LRU plus an optional on-disk store.

The dominant cost of every experiment is repeated ``TAM_Optimization``
runs and grouping (two-dimensional compaction) runs over identical
inputs — re-running a table with one more width, re-plotting a Pareto
curve, or simply re-executing a sweep after a crash re-pays for work whose
inputs did not change.  This cache memoizes those results by a *stable
content hash* of everything the computation depends on:

* grouping results — ``(SOC structure, generator seed, N_r, generator
  config, parts, epsilon)``;
* architecture optimizations — ``(SOC structure, W_max, SI groups,
  capture cycles)``;
* baseline (SI-oblivious) pricings — ``(SOC structure, W_max, all
  groupings, capture cycles)``.

Keys hash the SOC's *structural content* (not its name), so a renamed or
regenerated benchmark never aliases a stale entry.  Values are stored via
:mod:`repro.runtime.codec`, whose round-trips are exact: a warm hit
compares equal to the object a cold run would produce.

The on-disk store is one JSON file per entry under a directory (by
convention ``results/cache/``); each file carries a checksum of its
payload so :func:`verify_store` can detect truncation or hand-editing.
Writes are atomic (temp file + ``fsync`` + rename) and a corrupt entry
found at load time is *quarantined* — renamed to ``*.corrupt`` — and
silently recomputed, so one torn write can never wedge a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path

from repro.runtime.instrumentation import incr
from repro.runtime.supervision import disk_preflight
from repro.sitest.generator import GeneratorConfig
from repro.soc.model import Soc

STORE_FORMAT = "repro-eval-cache"
STORE_VERSION = 1

#: Conventional on-disk store location, relative to the repo root.
DEFAULT_STORE_DIR = Path("results") / "cache"


def stable_hash(value) -> str:
    """Hex digest of the canonical JSON encoding of ``value``.

    The encoding sorts object keys and forbids NaN, so the digest depends
    only on content — never on dict insertion order, hash seeds, or the
    process that produced it.
    """
    canonical = json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def soc_fingerprint(soc: Soc) -> dict:
    """Structural content of an SOC, sufficient to key test-time results.

    Everything the timing model reads is included: terminal counts, scan
    chains and pattern counts per core.  Names are excluded on purpose.
    """
    return {
        "cores": [
            {
                "id": core.core_id,
                "io": [core.inputs, core.outputs, core.bidirs],
                "chains": list(core.scan_chains),
                "patterns": [test.patterns for test in core.tests],
            }
            for core in soc
        ]
    }


def _config_fingerprint(config: GeneratorConfig) -> dict:
    return {
        "min_aggressors": config.min_aggressors,
        "max_aggressors": config.max_aggressors,
        "max_external_aggressors": config.max_external_aggressors,
        "bus_width": config.bus_width,
        "bus_probability": config.bus_probability,
    }


def _groups_fingerprint(groups) -> list:
    return [
        [group.group_id, sorted(group.cores), group.patterns,
         group.original_patterns, group.is_residual]
        for group in groups
    ]


def grouping_cache_key(
    soc: Soc,
    seed: int,
    pattern_count: int,
    parts: int,
    config: GeneratorConfig = GeneratorConfig(),
    epsilon: float = 0.10,
) -> str:
    """Key of a two-dimensional compaction (grouping) result."""
    return "grouping-" + stable_hash(
        {
            "soc": soc_fingerprint(soc),
            "seed": seed,
            "pattern_count": pattern_count,
            "parts": parts,
            "generator": _config_fingerprint(config),
            "epsilon": epsilon,
        }
    )


def patterns_cache_key(
    soc: Soc,
    seed: int,
    pattern_count: int,
    config: GeneratorConfig = GeneratorConfig(),
) -> str:
    """Key of a generated SI pattern set (``generate_random_patterns``).

    One key per (SOC structure, seed, ``N_r``, generator config): every
    sweep cell over the same inputs names the same set, so warm workers
    and the shared state store can serve it instead of regenerating it.
    """
    return "patterns-" + stable_hash(
        {
            "soc": soc_fingerprint(soc),
            "seed": seed,
            "pattern_count": pattern_count,
            "generator": _config_fingerprint(config),
        }
    )


def optimize_cache_key(
    soc: Soc,
    w_max: int,
    groups=(),
    capture_cycles: int = 1,
) -> str:
    """Key of a ``TAM_Optimization`` (or TR-Architect, ``groups=()``) run."""
    return "optimize-" + stable_hash(
        {
            "soc": soc_fingerprint(soc),
            "w_max": w_max,
            "groups": _groups_fingerprint(groups),
            "capture_cycles": capture_cycles,
        }
    )


def baseline_cache_key(
    soc: Soc,
    w_max: int,
    groupings_fingerprint: list,
    capture_cycles: int = 1,
) -> str:
    """Key of an SI-oblivious baseline pricing (``T_[8]``)."""
    return "baseline-" + stable_hash(
        {
            "soc": soc_fingerprint(soc),
            "w_max": w_max,
            "groupings": groupings_fingerprint,
            "capture_cycles": capture_cycles,
        }
    )


def groups_fingerprint(groups) -> list:
    """Public alias used by the experiment harness for baseline keys."""
    return _groups_fingerprint(groups)


class EvaluationCache:
    """LRU cache of evaluation results with an optional disk store.

    In-memory entries hold live result objects (no serialization cost on
    a hot hit).  When ``store_dir`` is set, every put is also written as a
    JSON file and misses fall back to the store before recomputing.

    Args:
        max_entries: In-memory LRU capacity.
        store_dir: Directory of the on-disk JSON store, or ``None`` to
            keep the cache purely in-memory.
        codec_of: Maps a key prefix (``"grouping"``, ``"optimize"``, ...)
            to an ``(encode, decode)`` pair used for the disk store.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        store_dir: str | Path | None = None,
        codec_of: dict | None = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.store_dir = Path(store_dir) if store_dir is not None else None
        if codec_of is None:
            codec_of = _default_codecs()
        self._codec_of = codec_of
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _kind_of(self, key: str) -> str:
        return key.split("-", 1)[0]

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            incr("cache.hits")
            return value
        value = self._load_from_store(key)
        if value is not None:
            self._remember(key, value)
            self.hits += 1
            self.disk_hits += 1
            incr("cache.hits")
            incr("cache.disk_hits")
            return value
        self.misses += 1
        incr("cache.misses")
        return None

    def put(self, key: str, value) -> None:
        """Cache ``value`` under ``key`` (and persist it when a store is
        configured)."""
        self._remember(key, value)
        if self.store_dir is not None:
            self._write_to_store(key, value)

    def _remember(self, key: str, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            incr("cache.evictions")

    def _entry_path(self, key: str) -> Path:
        assert self.store_dir is not None
        return self.store_dir / f"{key}.json"

    def _write_to_store(self, key: str, value) -> None:
        codec = self._codec_of.get(self._kind_of(key))
        if codec is None:
            return
        encode, _ = codec
        payload = encode(value)
        entry = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "key": key,
            "payload": payload,
            "checksum": stable_hash(payload),
        }
        text = json.dumps(entry, sort_keys=True) + "\n"
        text = _corrupted_by_fault(entry, text)
        if not disk_preflight(self.store_dir, "cachestore"):
            return  # skipped store = recompute later, never corruption
        self.store_dir.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(key)
        # Atomic publish: a crash mid-write leaves only a stray *.tmp
        # (which no store glob matches), never a torn entry.
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.stores += 1
        incr("cache.stores")

    def _load_from_store(self, key: str):
        if self.store_dir is None:
            return None
        codec = self._codec_of.get(self._kind_of(key))
        if codec is None:
            return None
        path = self._entry_path(key)
        if not path.is_file():
            return None
        problem: str | None = None
        entry = None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            problem = f"unreadable ({error})"
        if problem is None:
            problem = _entry_problem(entry, expected_key=key)
        if problem is not None:
            incr("cache.corrupt_entries")
            _quarantine_entry(path)
            return None
        _, decode = codec
        return decode(entry["payload"])

    def stats(self) -> dict:
        """Counters for the run report."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
        }


def _identity(value):
    return value


def default_codecs() -> dict:
    """The key-prefix -> ``(encode, decode)`` map of the standard result
    kinds (also used by :class:`repro.resilience.checkpoint.SweepCheckpoint`
    so checkpointed cells round-trip exactly like cached ones)."""
    from repro.runtime import codec

    return {
        "grouping": (codec.grouping_to_dict, codec.grouping_from_dict),
        "optimize": (codec.optimization_to_dict, codec.optimization_from_dict),
        "baseline": (_identity, _identity),
        # Generic plan cells (repro.experiments.plan) hold plain-JSON
        # values by contract, so identity round-trips exactly.
        "plancell": (_identity, _identity),
    }


_default_codecs = default_codecs


def _corrupted_by_fault(entry: dict, text: str) -> str:
    """Apply a due ``cache.store.write`` data fault to the entry text.

    ``cache-truncate`` drops the second half of the file (torn write);
    ``cache-bitflip`` flips one checksum hex digit (valid JSON, wrong
    checksum); ``codec-mismatch`` rewrites the version (a store written
    by an incompatible release).  With no fault plan active this is one
    ``None`` check.
    """
    from repro.resilience.faults import check_fault

    fault = check_fault("cache.store.write")
    if fault is None:
        return text
    if fault.kind == "cache-truncate":
        return text[: len(text) // 2]
    if fault.kind == "cache-bitflip":
        checksum = entry["checksum"]
        pos = int(fault.arg) if fault.arg is not None else 0
        pos %= len(checksum)
        flipped = "0" if checksum[pos] != "0" else "1"
        bad = checksum[:pos] + flipped + checksum[pos + 1:]
        return text.replace(checksum, bad)
    if fault.kind == "codec-mismatch":
        bad_entry = dict(entry, version=STORE_VERSION + 1)
        return json.dumps(bad_entry, sort_keys=True) + "\n"
    return text


def _quarantine_entry(path: Path) -> Path | None:
    """Move a corrupt store entry aside as ``<name>.corrupt``; the caller
    then recomputes as on a plain miss."""
    quarantined = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, quarantined)
    except OSError:  # pragma: no cover - entry vanished underneath us
        return None
    incr("recovery.cache_quarantined")
    return quarantined


def _entry_problem(entry, expected_key: str | None = None) -> str | None:
    """A description of what is wrong with a store entry, or ``None``."""
    if not isinstance(entry, dict):
        return "entry is not a JSON object"
    if entry.get("format") != STORE_FORMAT:
        return f"unexpected format {entry.get('format')!r}"
    if entry.get("version") != STORE_VERSION:
        return f"unsupported version {entry.get('version')!r}"
    if expected_key is not None and entry.get("key") != expected_key:
        return f"key mismatch (file holds {entry.get('key')!r})"
    if "payload" not in entry:
        return "missing payload"
    checksum = stable_hash(entry["payload"])
    if entry.get("checksum") != checksum:
        return "payload checksum mismatch"
    return None


def verify_store(
    store_dir: str | Path, quarantine: bool = False
) -> list[str]:
    """Integrity-check every entry of an on-disk cache store.

    Returns a list of human-readable problems; an empty list means the
    store is healthy (a missing directory counts as healthy-and-empty).
    With ``quarantine=True`` each bad entry is also moved aside to
    ``<name>.corrupt`` so subsequent loads recompute it.
    """
    store = Path(store_dir)
    problems: list[str] = []
    if not store.exists():
        return problems
    for path in sorted(store.glob("*.json")):
        problem: str | None = None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            problem = f"unreadable ({error})"
            entry = None
        if problem is None:
            problem = _entry_problem(entry, expected_key=path.stem)
        if problem is not None:
            problems.append(f"{path.name}: {problem}")
            if quarantine:
                _quarantine_entry(path)
    return problems


def gc_store(store_dir: str | Path, dry_run: bool = False) -> list[str]:
    """Prune store debris: quarantined entries, stale temp files, and
    entries of an unsupported format/version.

    Healthy current-version entries are never touched.  Returns the
    removed file names; with ``dry_run=True`` nothing is deleted and the
    list is what *would* be removed.
    """
    store = Path(store_dir)
    removed: list[str] = []
    if not store.exists():
        return removed
    for path in sorted(store.glob("*.corrupt")) + sorted(store.glob("*.tmp")):
        if not dry_run:
            path.unlink(missing_ok=True)
        removed.append(path.name)
    for path in sorted(store.glob("*.json")):
        stale = False
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # torn entry: verify/quarantine territory, not gc
        if isinstance(entry, dict) and (
            entry.get("format") != STORE_FORMAT
            or entry.get("version") != STORE_VERSION
        ):
            stale = True
        if stale:
            if not dry_run:
                path.unlink(missing_ok=True)
            removed.append(path.name)
    if removed and not dry_run:
        incr("cache.gc_removed", len(removed))
    return removed


def audit_store(store_dir: str | Path) -> dict:
    """A JSON-ready health report of an on-disk store, without mutating
    it: entry/debris counts, total bytes, per-kind entry counts, and the
    problem list :func:`verify_store` would report."""
    store = Path(store_dir)
    report = {
        "store": str(store),
        "exists": store.exists(),
        "entries": 0,
        "bytes": 0,
        "kinds": {},
        "corrupt_files": 0,
        "tmp_files": 0,
        "problems": [],
    }
    if not store.exists():
        return report
    kinds: dict[str, int] = {}
    for path in sorted(store.glob("*.json")):
        report["entries"] += 1
        try:
            report["bytes"] += path.stat().st_size
        except OSError:  # pragma: no cover - entry vanished underneath us
            continue
        kind = path.stem.split("-", 1)[0]
        kinds[kind] = kinds.get(kind, 0) + 1
    report["kinds"] = dict(sorted(kinds.items()))
    report["corrupt_files"] = len(list(store.glob("*.corrupt")))
    report["tmp_files"] = len(list(store.glob("*.tmp")))
    report["problems"] = verify_store(store)
    return report
