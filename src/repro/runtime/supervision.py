"""Service-grade run supervision: declarative policies for unattended runs.

The resilience seams grown so far (serial retry, pool fallback, cache
quarantine, checkpoint resume) are hard-coded one-shot recoveries: a cell
that fails its fixed retries kills the whole plan, there is no backoff
between attempts, and nothing preflights the resources a run is about to
consume.  That is fine at the CLI with a human watching; it is not fine
for the unattended regimes the roadmap points at (an always-on
optimization service, multi-host sweeps).

This module makes failure handling *declarative*.  A :class:`RunPolicy`
bundles:

* **retry budgets** (:class:`RetryPolicy`) — per-cell attempt counts with
  deterministic seeded exponential backoff + jitter.  Delays are a pure
  function of ``(seed, cell token, attempt)``, so two runs of the same
  policy sleep identically: retries never reintroduce nondeterminism;
* **deadlines** — a per-cell timeout default and a whole-plan deadline;
* a **failure-rate circuit breaker** — once enough cells have failed
  (``breaker_min_failures``) and the failure rate is past
  ``breaker_threshold``, remaining work fails fast instead of grinding
  through a doomed sweep at full retry cost;
* **partial-run salvage** (``allow_partial``) — the PlanRunner quarantines
  *poisoned* cells (budget exhausted) instead of raising, prunes their
  dependents, and completes with an explicit ``partial`` run report;
* a **degradation ladder** — repeated backend-level failure demotes
  ``workers`` → ``pool`` → serial for the rest of the process, disclosed
  by ``recovery.degraded.*`` counters;
* **resource guards** — a free-disk preflight consulted before every
  cache/checkpoint/state-store write, and a worker RSS watchdog that
  kills over-limit workers and retires their in-flight cells to the
  serial path.

The policy is *process-current* (like the instrumentation object): the
executor, the worker pool, and the PlanRunner all consult
:func:`current_policy` rather than threading a policy argument through
every call.  The default policy reproduces the exact pre-policy behavior
(two attempts, no backoff, no breaker, guards on with a small floor), so
existing callers see bit-identical runs and indistinguishable overhead.

``RunPolicy.parse`` accepts the CLI ``--policy`` mini-language::

    retries=3,backoff=0.05,factor=2,jitter=0.5,cell-timeout=60,
    deadline=3600,breaker=0.5,breaker-min=3,allow-partial,
    degrade-after=2,min-free-mb=16,rss-mb=512,seed=7

See docs/supervision.md for the full schema and semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
import warnings
from contextlib import contextmanager
from dataclasses import dataclass

from repro.runtime.instrumentation import incr

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DEGRADATION_LADDER",
    "PlanDeadlineError",
    "PolicyError",
    "RetryPolicy",
    "RunPolicy",
    "current_breaker",
    "current_policy",
    "degraded_backend",
    "disk_preflight",
    "free_disk_bytes",
    "note_backend_failure",
    "process_rss_bytes",
    "reset_degradations",
    "use_policy",
]


class PolicyError(ValueError):
    """Raised on an invalid policy value or a malformed ``--policy`` spec."""


class CircuitOpenError(RuntimeError):
    """A cell was failed fast because the failure-rate breaker is open."""


class PlanDeadlineError(RuntimeError):
    """The whole-plan deadline elapsed before the plan drained."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry budget with deterministic exponential backoff.

    Attributes:
        max_attempts: Total attempts per cell (first try included);
            ``2`` reproduces the classic one-serial-retry behavior.
        backoff_base: Seconds slept before the first retry (``0`` =
            retry immediately, the classic behavior).
        backoff_factor: Multiplier applied per further retry.
        backoff_max: Ceiling on any single delay.
        jitter: Fraction of the delay randomized (``0.5`` = the delay is
            scaled into ``[0.75, 1.25]``).  The "randomness" is a hash of
            ``(seed, token, attempt)`` — deterministic per run, spread
            across cells, so a thundering herd still de-synchronizes.
        seed: Jitter seed.
    """

    max_attempts: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PolicyError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise PolicyError("backoff durations must be >= 0")
        if self.backoff_factor < 1:
            raise PolicyError("backoff_factor must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise PolicyError("jitter must be in [0, 1]")

    def delay(self, token, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based) of
        the cell identified by ``token``.  Pure and deterministic."""
        if self.backoff_base <= 0 or attempt < 1:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        delay = min(raw, self.backoff_max)
        if self.jitter > 0:
            digest = hashlib.sha256(
                f"{self.seed}|{token!r}|{attempt}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / 2**64
            delay *= 1.0 - self.jitter / 2 + self.jitter * unit
        return delay


@dataclass(frozen=True)
class RunPolicy:
    """Everything the runtime consults about failure handling for a run.

    Attributes:
        retry: The per-cell :class:`RetryPolicy`.
        cell_timeout: Default per-cell budget in seconds (``None`` =
            unbounded); an explicit executor/runner timeout wins.
        plan_deadline: Whole-plan wall-clock budget in seconds; past it
            the PlanRunner stops launching waves (remaining cells are
            poisoned under ``allow_partial``, else
            :class:`PlanDeadlineError`).
        breaker_threshold: Failure-rate fraction past which the circuit
            breaker trips (``None`` = breaker off).
        breaker_min_failures: Minimum failed cells before the breaker
            can trip (a 1-cell run should not open the circuit).
        allow_partial: Quarantine budget-exhausted cells as *poisoned*
            and finish with a ``partial`` run instead of raising.
        degrade_after: Backend-level failures of one backend before the
            degradation ladder demotes it for the rest of the process
            (``None`` = ladder off).
        min_free_bytes: Free-disk floor the write preflight enforces for
            cache/checkpoint/state-store writes (``0`` = guard off).
        max_worker_rss_bytes: Per-worker RSS ceiling policed by the pool
            watchdog (``None`` = watchdog off; Linux ``/proc`` only).
    """

    retry: RetryPolicy = RetryPolicy()
    cell_timeout: float | None = None
    plan_deadline: float | None = None
    breaker_threshold: float | None = None
    breaker_min_failures: int = 3
    allow_partial: bool = False
    degrade_after: int | None = 2
    min_free_bytes: int = 16 * 1024 * 1024
    max_worker_rss_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.breaker_threshold is not None and not (
            0 < self.breaker_threshold <= 1
        ):
            raise PolicyError("breaker_threshold must be in (0, 1]")
        if self.breaker_min_failures < 1:
            raise PolicyError("breaker_min_failures must be >= 1")
        if self.degrade_after is not None and self.degrade_after < 1:
            raise PolicyError("degrade_after must be >= 1 (or None)")
        if self.min_free_bytes < 0:
            raise PolicyError("min_free_bytes must be >= 0")

    def replace(self, **changes) -> "RunPolicy":
        """A copy with ``changes`` applied (frozen-dataclass convenience)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def parse(cls, spec: str) -> "RunPolicy":
        """Parse the ``--policy`` mini-language: comma-separated
        ``key=value`` items plus bare flags (``allow-partial``).

        Keys: ``retries``/``attempts``, ``backoff``, ``factor``,
        ``backoff-max``, ``jitter``, ``seed``, ``cell-timeout``,
        ``deadline``, ``breaker``, ``breaker-min``, ``allow-partial``,
        ``degrade-after`` (``0`` = ladder off), ``min-free-mb``
        (``0`` = guard off), ``rss-mb``.
        """
        retry: dict = {}
        policy: dict = {}

        def number(value: str, key: str) -> float:
            try:
                return float(value)
            except ValueError:
                raise PolicyError(
                    f"bad numeric value {value!r} for policy key {key!r}"
                ) from None

        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key in ("allow-partial", "partial") and not sep:
                policy["allow_partial"] = True
            elif not sep:
                raise PolicyError(f"policy item {raw!r} needs key=value")
            elif key in ("retries", "attempts"):
                retry["max_attempts"] = int(number(value, key))
            elif key == "backoff":
                retry["backoff_base"] = number(value, key)
            elif key in ("factor", "backoff-factor"):
                retry["backoff_factor"] = number(value, key)
            elif key == "backoff-max":
                retry["backoff_max"] = number(value, key)
            elif key == "jitter":
                retry["jitter"] = number(value, key)
            elif key == "seed":
                retry["seed"] = int(number(value, key))
            elif key in ("cell-timeout", "timeout"):
                timeout = number(value, key)
                policy["cell_timeout"] = timeout if timeout > 0 else None
            elif key in ("deadline", "plan-deadline"):
                deadline = number(value, key)
                policy["plan_deadline"] = deadline if deadline > 0 else None
            elif key == "breaker":
                policy["breaker_threshold"] = number(value, key)
            elif key == "breaker-min":
                policy["breaker_min_failures"] = int(number(value, key))
            elif key in ("allow-partial", "partial"):
                policy["allow_partial"] = value.lower() not in (
                    "0", "false", "no", "off"
                )
            elif key == "degrade-after":
                after = int(number(value, key))
                policy["degrade_after"] = after if after > 0 else None
            elif key == "min-free-mb":
                policy["min_free_bytes"] = int(
                    number(value, key) * 1024 * 1024
                )
            elif key in ("rss-mb", "max-rss-mb"):
                rss = number(value, key)
                policy["max_worker_rss_bytes"] = (
                    int(rss * 1024 * 1024) if rss > 0 else None
                )
            else:
                raise PolicyError(f"unknown policy key {key!r} in {raw!r}")
        try:
            return cls(retry=RetryPolicy(**retry), **policy)
        except TypeError as error:  # pragma: no cover - defensive
            raise PolicyError(str(error)) from error


class CircuitBreaker:
    """Failure-rate breaker over per-cell outcomes.

    The executor and worker pool :meth:`record` every final cell outcome
    (after retries); once at least ``min_failures`` cells have failed and
    the failure rate exceeds ``threshold``, the breaker :attr:`tripped`
    flag latches for the rest of the run and cell attempts fail fast with
    :class:`CircuitOpenError` instead of burning the remaining budget.
    """

    def __init__(self, threshold: float, min_failures: int = 3) -> None:
        self.threshold = threshold
        self.min_failures = min_failures
        self.attempted = 0
        self.failed = 0
        self.tripped = False

    def record(self, ok: bool) -> None:
        self.attempted += 1
        if not ok:
            self.failed += 1
        if (
            not self.tripped
            and self.failed >= self.min_failures
            and self.failed / self.attempted > self.threshold
        ):
            self.tripped = True
            incr("recovery.breaker_tripped")

    def describe(self) -> str:
        return (
            f"{self.failed}/{self.attempted} cells failed "
            f"(threshold {self.threshold:.0%})"
        )


# ---------------------------------------------------------------------------
# Process-current policy (mirrors the instrumentation protocol).
# ---------------------------------------------------------------------------

_DEFAULT_POLICY = RunPolicy()
_CURRENT: RunPolicy = _DEFAULT_POLICY
_BREAKER: CircuitBreaker | None = None


def current_policy() -> RunPolicy:
    """The process-current :class:`RunPolicy` (the default when no
    :func:`use_policy` context is active)."""
    return _CURRENT


def current_breaker() -> CircuitBreaker | None:
    """The active run's circuit breaker, or ``None`` (breaker off)."""
    return _BREAKER


@contextmanager
def use_policy(policy: RunPolicy):
    """Make ``policy`` current for the ``with`` body.  A fresh
    :class:`CircuitBreaker` is armed when the policy asks for one."""
    global _CURRENT, _BREAKER
    previous, previous_breaker = _CURRENT, _BREAKER
    _CURRENT = policy
    _BREAKER = (
        CircuitBreaker(policy.breaker_threshold, policy.breaker_min_failures)
        if policy.breaker_threshold is not None
        else None
    )
    try:
        yield policy
    finally:
        _CURRENT, _BREAKER = previous, previous_breaker


# ---------------------------------------------------------------------------
# Degradation ladder: sticky per-process backend demotion.
# ---------------------------------------------------------------------------

#: Backend -> what it demotes to on repeated backend-level failure.
DEGRADATION_LADDER: dict[str, str] = {"workers": "pool", "pool": "serial"}

_BACKEND_FAILURES: dict[str, int] = {}
_DEMOTIONS: dict[str, str] = {}


def note_backend_failure(backend: str) -> None:
    """Account one backend-level failure (pool creation failed, broken
    process pool, all workers lost...).  Past ``degrade_after`` failures
    the backend is demoted one ladder rung for the rest of the process."""
    after = current_policy().degrade_after
    if after is None:
        return
    count = _BACKEND_FAILURES.get(backend, 0) + 1
    _BACKEND_FAILURES[backend] = count
    target = DEGRADATION_LADDER.get(backend)
    if target is None or backend in _DEMOTIONS or count < after:
        return
    _DEMOTIONS[backend] = target
    incr(f"recovery.degraded.{backend}_to_{target}")
    warnings.warn(
        f"sweep backend {backend!r} failed {count} times; degrading to "
        f"{target!r} for the rest of this process",
        RuntimeWarning,
        stacklevel=2,
    )


def degraded_backend(backend: str) -> str:
    """Follow the demotion chain from ``backend`` to what should actually
    run (identity when nothing is demoted)."""
    seen = set()
    while backend in _DEMOTIONS and backend not in seen:
        seen.add(backend)
        backend = _DEMOTIONS[backend]
    return backend


def reset_degradations() -> None:
    """Forget all backend failures and demotions (tests)."""
    _BACKEND_FAILURES.clear()
    _DEMOTIONS.clear()


# ---------------------------------------------------------------------------
# Resource guards.
# ---------------------------------------------------------------------------

_DISK_WARNED: set[str] = set()


def free_disk_bytes(path) -> int | None:
    """Free bytes on the filesystem holding ``path`` (walking up to the
    nearest existing ancestor), or ``None`` when undeterminable."""
    probe = os.fspath(path)
    while probe and not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    try:
        return shutil.disk_usage(probe or os.curdir).free
    except OSError:
        return None


def disk_preflight(path, label: str = "write") -> bool:
    """Whether a write under ``path`` is allowed by the free-disk floor.

    A blocked write increments ``guard.disk_blocked`` (and a per-label
    counter) and warns once per label; callers skip the write — every
    guarded store is an accelerator, never the source of truth, so a
    skipped write costs recompute time, not correctness.
    """
    min_free = current_policy().min_free_bytes
    if min_free <= 0:
        return True
    free = free_disk_bytes(path)
    if free is None or free >= min_free:
        return True
    incr("guard.disk_blocked")
    incr(f"guard.disk_blocked.{label}")
    if label not in _DISK_WARNED:
        _DISK_WARNED.add(label)
        warnings.warn(
            f"skipping {label} write under {os.fspath(path)!r}: only "
            f"{free} bytes free (floor {min_free}); results are kept "
            "in memory and recomputed on the next run",
            RuntimeWarning,
            stacklevel=2,
        )
    return False


def process_rss_bytes(pid: int) -> int | None:
    """Resident set size of ``pid`` in bytes via ``/proc`` (Linux), or
    ``None`` where that is unavailable."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        return None
