"""Process-pool sweep executor with deterministic ordering and fallback.

Experiment sweeps decompose into independent *cells* — one optimizer or
grouping run per parameter combination.  :func:`run_cells` fans a list of
cell specs over a :class:`concurrent.futures.ProcessPoolExecutor` and
returns the results **in input order**, so a parallel sweep is
indistinguishable from a serial one to the caller.

Fault handling, in order of escalation:

* ``jobs <= 1``, a single cell, or a pool that cannot be created (e.g.
  a sandbox without process support) → plain serial execution;
* a cell that raises, times out, returns a result its validator rejects,
  or dies with its worker process → one serial retry in the parent
  process (covers transient faults such as an OOM-killed worker — and a
  hard bug reproduces identically in the parent, where it is debuggable);
* a cell that fails its serial retry → :class:`CellError` carrying the
  cell index, both failures chained (`retry failure from original
  failure`), and the spec.

Workers must be module-level callables and specs picklable; both are
standard :mod:`multiprocessing` constraints.

When a fault plan is active (:mod:`repro.resilience.faults`), the worker
is wrapped with the ``executor.cell`` injection site; with no plan the
wrap is an identity and the hot path is untouched.

Two parallel backends implement the fan-out (``SWEEP_BACKENDS``):

* ``pool`` — the classic one-shot ``ProcessPoolExecutor``: workers are
  created per call and specs are shipped fully materialized.  Right for
  a single phase of heavyweight cells.
* ``workers`` — the work-stealing :class:`repro.runtime.pool.WorkerPool`:
  persistent warm workers, shard queues with stealing and batching,
  dead-worker reassignment, and reference-based specs resolved through
  the warm per-worker state cache.  Right for sweeps of many small cells.

``auto`` resolves to ``workers`` for a parallel multi-cell sweep.  The
default of :func:`run_cells` stays ``pool`` so direct callers keep the
exact pre-existing semantics; sweep harnesses opt into ``auto`` and pass
a shared :class:`~repro.runtime.pool.WorkerPool` spanning their phases.
Either parallel backend degrades to the other and ultimately to serial
execution when processes cannot be spawned, and both return results in
input order, bit-identical to serial.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Sequence

from repro.runtime.instrumentation import incr


class CellError(RuntimeError):
    """A sweep cell failed in the pool *and* in its serial retry."""

    def __init__(self, index: int, spec, cause: BaseException) -> None:
        super().__init__(
            f"sweep cell {index} (spec {spec!r}) failed after parallel "
            f"attempt and serial retry: {cause!r}"
        )
        self.index = index
        self.spec = spec
        self.cause = cause


#: Public name for the structured failure the executor escalates to.
CellFailure = CellError

#: Recognized sweep fan-out backends (see module docstring).
SWEEP_BACKENDS = ("auto", "pool", "workers")


def resolve_sweep_backend(
    backend: str, jobs: int = 2, cells: int = 2
) -> str:
    """Resolve a requested sweep backend to a concrete one.

    ``auto`` picks ``workers`` whenever the sweep actually fans out
    (``jobs > 1`` and more than one cell) — amortized warm-up wins there —
    and ``pool`` otherwise (where ``run_cells`` short-circuits to serial
    anyway).  Explicit names pass through; unknown names raise.
    """
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of "
            f"{', '.join(SWEEP_BACKENDS)}"
        )
    if backend != "auto":
        return backend
    return "workers" if jobs > 1 and cells > 1 else "pool"


def run_cells(
    worker: Callable,
    specs: Sequence,
    jobs: int = 1,
    timeout: float | None = None,
    retry: bool = True,
    validate: Callable | None = None,
    backend: str = "pool",
    pool=None,
    shard_keys: Sequence | None = None,
    warmup: Callable | None = None,
) -> list:
    """Run ``worker(spec)`` for every spec, possibly in parallel.

    Args:
        worker: Module-level callable applied to each spec.
        specs: The cell specs, one per cell.
        jobs: Worker process count; ``<= 1`` means serial in-process.
        timeout: Per-cell budget in seconds to wait for a result once
            submitted (``None`` = unbounded).  A cell that exceeds it is
            abandoned in the pool and retried serially.
        retry: Retry failed/timed-out cells serially in the parent before
            giving up.  With ``retry=False`` the first failure raises.
        validate: Optional result validator; a result it raises on (or
            returns ``False`` for) is treated exactly like a raising
            cell — retried serially, then escalated to
            :class:`CellError`.  Guards against garbage/partial payloads
            from a sick worker process.
        backend: ``"pool"`` (default: classic one-shot process pool),
            ``"workers"`` (persistent work-stealing pool) or ``"auto"``
            (see :func:`resolve_sweep_backend`).
        pool: An already-warm :class:`repro.runtime.pool.WorkerPool` to
            run on (implies the ``workers`` backend); the caller owns its
            lifecycle, so one pool can span several sweep phases.
        shard_keys: Optional per-spec state keys for the ``workers``
            backend — cells sharing a key land on the same worker and
            share its warm state.  Ignored by the classic pool.
        warmup: Optional per-worker warm-up hook for a transient
            ``workers`` pool.  Ignored by the classic pool.

    Returns:
        Results in the order of ``specs``.

    Raises:
        CellError: When a cell fails its serial retry (or, with
            ``retry=False``, its first attempt).
    """
    specs = list(specs)
    resolved_backend = resolve_sweep_backend(
        backend, jobs=jobs, cells=len(specs)
    )
    if not specs:
        return []
    from repro.resilience.faults import wrap_worker

    worker = wrap_worker(worker)
    if pool is None and (jobs <= 1 or len(specs) == 1):
        return _run_serial(worker, specs, retry, validate)

    if pool is not None or resolved_backend == "workers":
        from repro.runtime.pool import PoolUnavailable, run_cells_stolen

        try:
            if pool is not None:
                incr("executor.backend.workers")
                return pool.run(
                    worker, specs, timeout=timeout, retry=retry,
                    validate=validate, shard_keys=shard_keys,
                )
            result = run_cells_stolen(
                worker, specs, jobs=jobs, timeout=timeout, retry=retry,
                validate=validate, warmup=warmup, shard_keys=shard_keys,
            )
        except PoolUnavailable:
            # No persistent workers here; the classic pool below makes its
            # own serial-fallback decision.
            incr("recovery.workers_pool_fallback")
        else:
            incr("executor.backend.workers")
            return result

    incr("executor.backend.pool")
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(specs)))
    except (OSError, ValueError, NotImplementedError):
        # No process support here (restricted sandbox); degrade gracefully.
        incr("executor.serial_fallbacks")
        incr("recovery.pool_serial_fallback")
        return _run_serial(worker, specs, retry, validate)

    results: list = [None] * len(specs)
    needs_retry: list[tuple[int, BaseException]] = []
    pool_broken = False
    timed_out = False
    try:
        futures = [pool.submit(worker, spec) for spec in specs]
        incr("executor.cells_submitted", len(specs))
        for index, future in enumerate(futures):
            try:
                # Once the pool is known dead, only harvest what already
                # finished — never wait on it again.
                results[index] = future.result(
                    timeout=0 if pool_broken else timeout
                )
            except FutureTimeoutError:
                future.cancel()
                timed_out = True
                incr("executor.cell_timeouts")
                needs_retry.append(
                    (index, TimeoutError(f"cell exceeded {timeout}s"))
                )
            except (Exception, CancelledError) as error:
                if _is_pool_death(error):
                    pool_broken = True
                    incr("executor.pool_failures")
                needs_retry.append((index, error))
            else:
                problem = _invalid(validate, results[index])
                if problem is not None:
                    results[index] = None
                    incr("executor.invalid_results")
                    incr("recovery.garbage_results")
                    needs_retry.append((index, problem))
    finally:
        # A timed-out or broken pool may hold hung workers; do not block
        # shutdown on them.
        pool.shutdown(wait=not (timed_out or pool_broken), cancel_futures=True)

    for index, cause in needs_retry:
        if not retry:
            raise CellError(index, specs[index], cause) from cause
        incr("executor.cell_retries")
        try:
            value = worker(specs[index])
            problem = _invalid(validate, value)
            if problem is not None:
                raise problem
        except Exception as error:
            if error.__cause__ is None and error is not cause:
                error.__cause__ = cause
            raise CellError(index, specs[index], error) from error
        results[index] = value
        incr("recovery.cell_retry_ok")
    return results


def _invalid(validate: Callable | None, value) -> Exception | None:
    """The exception describing why ``value`` fails ``validate``, if any."""
    if validate is None:
        return None
    try:
        verdict = validate(value)
    except Exception as error:
        return error
    if verdict is False:
        return ValueError(f"worker returned invalid result {value!r}")
    return None


def _run_serial(
    worker: Callable,
    specs: list,
    retry: bool,
    validate: Callable | None = None,
) -> list:
    results = []
    for index, spec in enumerate(specs):
        try:
            value = worker(spec)
            problem = _invalid(validate, value)
            if problem is not None:
                incr("recovery.garbage_results")
                raise problem
        except Exception as error:
            if not retry:
                raise CellError(index, spec, error) from error
            incr("executor.cell_retries")
            try:
                value = worker(spec)
                problem = _invalid(validate, value)
                if problem is not None:
                    raise problem
            except Exception as second:
                # Chain the retry's failure onto the original so neither
                # traceback is lost in the escalation.
                if second.__cause__ is None and second is not error:
                    second.__cause__ = error
                raise CellError(index, spec, second) from second
            incr("recovery.cell_retry_ok")
        results.append(value)
    return results


def _is_pool_death(error: BaseException) -> bool:
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, BrokenProcessPool)
