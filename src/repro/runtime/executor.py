"""Process-pool sweep executor with deterministic ordering and fallback.

Experiment sweeps decompose into independent *cells* — one optimizer or
grouping run per parameter combination.  :func:`run_cells` fans a list of
cell specs over a :class:`concurrent.futures.ProcessPoolExecutor` and
returns the results **in input order**, so a parallel sweep is
indistinguishable from a serial one to the caller.

Fault handling, in order of escalation:

* ``jobs <= 1``, a single cell, or a pool that cannot be created (e.g.
  a sandbox without process support) → plain serial execution;
* a cell that raises, times out, returns a result its validator rejects,
  or dies with its worker process → one serial retry in the parent
  process (covers transient faults such as an OOM-killed worker — and a
  hard bug reproduces identically in the parent, where it is debuggable);
* a cell that fails its serial retry → :class:`CellError` carrying the
  cell index, both failures chained (`retry failure from original
  failure`), and the spec.

Workers must be module-level callables and specs picklable; both are
standard :mod:`multiprocessing` constraints.

When a fault plan is active (:mod:`repro.resilience.faults`), the worker
is wrapped with the ``executor.cell`` injection site; with no plan the
wrap is an identity and the hot path is untouched.

Two parallel backends implement the fan-out (``SWEEP_BACKENDS``):

* ``pool`` — the classic one-shot ``ProcessPoolExecutor``: workers are
  created per call and specs are shipped fully materialized.  Right for
  a single phase of heavyweight cells.
* ``workers`` — the work-stealing :class:`repro.runtime.pool.WorkerPool`:
  persistent warm workers, shard queues with stealing and batching,
  dead-worker reassignment, and reference-based specs resolved through
  the warm per-worker state cache.  Right for sweeps of many small cells.

``auto`` resolves to ``workers`` for a parallel multi-cell sweep.  The
default of :func:`run_cells` stays ``pool`` so direct callers keep the
exact pre-existing semantics; sweep harnesses opt into ``auto`` and pass
a shared :class:`~repro.runtime.pool.WorkerPool` spanning their phases.
Either parallel backend degrades to the other and ultimately to serial
execution when processes cannot be spawned, and both return results in
input order, bit-identical to serial.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Sequence

from repro.runtime.instrumentation import incr
from repro.runtime.supervision import (
    CircuitOpenError,
    current_breaker,
    current_policy,
    degraded_backend,
    note_backend_failure,
)


class CellError(RuntimeError):
    """A sweep cell failed every attempt its retry budget allowed."""

    def __init__(self, index: int, spec, cause: BaseException) -> None:
        super().__init__(
            f"sweep cell {index} (spec {spec!r}) failed after exhausting "
            f"its retry budget: {cause!r}"
        )
        self.index = index
        self.spec = spec
        self.cause = cause


#: Accepted ``on_error`` modes of :func:`run_cells`.
ON_ERROR_MODES = ("raise", "return")


#: Public name for the structured failure the executor escalates to.
CellFailure = CellError

#: Recognized sweep fan-out backends (see module docstring).
SWEEP_BACKENDS = ("auto", "pool", "workers")


def resolve_sweep_backend(
    backend: str, jobs: int = 2, cells: int = 2
) -> str:
    """Resolve a requested sweep backend to a concrete one.

    ``auto`` picks ``workers`` whenever the sweep actually fans out
    (``jobs > 1`` and more than one cell) — amortized warm-up wins there —
    and ``pool`` otherwise (where ``run_cells`` short-circuits to serial
    anyway).  Explicit names pass through; unknown names raise.
    """
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; expected one of "
            f"{', '.join(SWEEP_BACKENDS)}"
        )
    if backend != "auto":
        return backend
    return "workers" if jobs > 1 and cells > 1 else "pool"


def run_cells(
    worker: Callable,
    specs: Sequence,
    jobs: int = 1,
    timeout: float | None = None,
    retry: bool = True,
    validate: Callable | None = None,
    backend: str = "pool",
    pool=None,
    shard_keys: Sequence | None = None,
    warmup: Callable | None = None,
    on_error: str = "raise",
) -> list:
    """Run ``worker(spec)`` for every spec, possibly in parallel.

    Args:
        worker: Module-level callable applied to each spec.
        specs: The cell specs, one per cell.
        jobs: Worker process count; ``<= 1`` means serial in-process.
        timeout: Per-cell budget in seconds to wait for a result once
            submitted (``None`` = unbounded).  A cell that exceeds it is
            abandoned in the pool and retried serially.
        retry: Retry failed/timed-out cells serially in the parent before
            giving up.  With ``retry=False`` the first failure raises.
        validate: Optional result validator; a result it raises on (or
            returns ``False`` for) is treated exactly like a raising
            cell — retried serially, then escalated to
            :class:`CellError`.  Guards against garbage/partial payloads
            from a sick worker process.
        backend: ``"pool"`` (default: classic one-shot process pool),
            ``"workers"`` (persistent work-stealing pool) or ``"auto"``
            (see :func:`resolve_sweep_backend`).
        pool: An already-warm :class:`repro.runtime.pool.WorkerPool` to
            run on (implies the ``workers`` backend); the caller owns its
            lifecycle, so one pool can span several sweep phases.
        shard_keys: Optional per-spec state keys for the ``workers``
            backend — cells sharing a key land on the same worker and
            share its warm state.  Ignored by the classic pool.
        warmup: Optional per-worker warm-up hook for a transient
            ``workers`` pool.  Ignored by the classic pool.
        on_error: ``"raise"`` (default) escalates the first cell whose
            retry budget is exhausted as :class:`CellError`; ``"return"``
            places the :class:`CellError` *in the results list* at the
            cell's slot and keeps going — the PlanRunner's partial-run
            (poison quarantine) protocol.

    Returns:
        Results in the order of ``specs``.

    Raises:
        CellError: When a cell exhausts its retry budget (the budget is
            :func:`repro.runtime.supervision.current_policy`'s retry
            policy; ``retry=False`` means a single attempt) and
            ``on_error`` is ``"raise"``.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r}; expected one of "
            f"{', '.join(ON_ERROR_MODES)}"
        )
    specs = list(specs)
    resolved_backend = resolve_sweep_backend(
        backend, jobs=jobs, cells=len(specs)
    )
    if pool is None:
        # Repeated backend-level failure demotes a backend for the rest
        # of the process (workers -> pool -> serial); an explicit warm
        # pool is the caller's decision and stays untouched.
        resolved_backend = degraded_backend(resolved_backend)
    if not specs:
        return []
    from repro.resilience.faults import wrap_worker

    worker = wrap_worker(worker)
    if pool is None and (
        jobs <= 1 or len(specs) == 1 or resolved_backend == "serial"
    ):
        return _run_serial(worker, specs, retry, validate, on_error)

    if pool is not None or resolved_backend == "workers":
        from repro.runtime.pool import PoolUnavailable, run_cells_stolen

        try:
            if pool is not None:
                incr("executor.backend.workers")
                return pool.run(
                    worker, specs, timeout=timeout, retry=retry,
                    validate=validate, shard_keys=shard_keys,
                    on_error=on_error,
                )
            result = run_cells_stolen(
                worker, specs, jobs=jobs, timeout=timeout, retry=retry,
                validate=validate, warmup=warmup, shard_keys=shard_keys,
                on_error=on_error,
            )
        except PoolUnavailable:
            # No persistent workers here; the classic pool below makes its
            # own serial-fallback decision.
            incr("recovery.workers_pool_fallback")
            note_backend_failure("workers")
        else:
            incr("executor.backend.workers")
            return result

    incr("executor.backend.pool")
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(specs)))
    except (OSError, ValueError, NotImplementedError):
        # No process support here (restricted sandbox); degrade gracefully.
        incr("executor.serial_fallbacks")
        incr("recovery.pool_serial_fallback")
        note_backend_failure("pool")
        return _run_serial(worker, specs, retry, validate, on_error)

    results: list = [None] * len(specs)
    needs_retry: list[tuple[int, BaseException]] = []
    breaker = current_breaker()
    pool_broken = False
    timed_out = False
    try:
        futures = [pool.submit(worker, spec) for spec in specs]
        incr("executor.cells_submitted", len(specs))
        for index, future in enumerate(futures):
            try:
                # Once the pool is known dead, only harvest what already
                # finished — never wait on it again.
                results[index] = future.result(
                    timeout=0 if pool_broken else timeout
                )
            except FutureTimeoutError:
                future.cancel()
                timed_out = True
                incr("executor.cell_timeouts")
                needs_retry.append(
                    (index, TimeoutError(f"cell exceeded {timeout}s"))
                )
            except (Exception, CancelledError) as error:
                if _is_pool_death(error) and not pool_broken:
                    # One dead pool surfaces on every outstanding future;
                    # count the incident once.
                    pool_broken = True
                    incr("executor.pool_failures")
                    note_backend_failure("pool")
                needs_retry.append((index, error))
            else:
                problem = _invalid(validate, results[index])
                if problem is not None:
                    results[index] = None
                    incr("executor.invalid_results")
                    incr("recovery.garbage_results")
                    needs_retry.append((index, problem))
                elif breaker is not None:
                    breaker.record(True)
    finally:
        # A timed-out or broken pool may hold hung workers; do not block
        # shutdown on them.
        pool.shutdown(wait=not (timed_out or pool_broken), cancel_futures=True)

    for index, cause in needs_retry:
        try:
            results[index] = retry_cell(
                worker, specs[index], index, cause, retry, validate
            )
        except CellError as failure:
            if breaker is not None:
                breaker.record(False)
            if on_error == "return":
                incr("executor.cells_failed")
                results[index] = failure
                continue
            raise
        else:
            if breaker is not None:
                breaker.record(True)
    return results


def _invalid(validate: Callable | None, value) -> Exception | None:
    """The exception describing why ``value`` fails ``validate``, if any."""
    if validate is None:
        return None
    try:
        verdict = validate(value)
    except Exception as error:
        return error
    if verdict is False:
        return ValueError(f"worker returned invalid result {value!r}")
    return None


def _backoff(retry_policy, token, attempt: int) -> None:
    """Sleep the policy's deterministic backoff before retry ``attempt``."""
    delay = retry_policy.delay(token, attempt)
    if delay > 0:
        incr("executor.backoff_sleeps")
        time.sleep(delay)


def bounded_call(worker: Callable, spec, timeout: float | None):
    """Run ``worker(spec)`` under a wall-clock deadline.

    The parent-side serial retry of a *hung* cell must not inherit the
    hang: the call runs on a daemon thread and past ``timeout`` a
    :class:`TimeoutError` is raised.  The abandoned attempt keeps running
    on its thread until process exit; its result is discarded — the same
    at-worst-duplicated-work contract as a killed pool worker.
    """
    if timeout is None:
        return worker(spec)
    import threading

    outcome: list = []

    def target() -> None:
        try:
            outcome.append((True, worker(spec)))
        except BaseException as error:  # ship every failure to the caller
            outcome.append((False, error))

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if not outcome:
        incr("executor.cell_timeouts")
        raise TimeoutError(f"serial retry exceeded {timeout}s")
    ok, value = outcome[0]
    if ok:
        return value
    raise value


def retry_cell(
    worker: Callable,
    spec,
    index: int,
    first_cause: BaseException,
    retry: bool,
    validate: Callable | None = None,
    timeout: float | None = None,
) -> object:
    """Serial retry attempts for a cell whose first attempt failed.

    Runs attempts 2..N of the current policy's retry budget (with its
    deterministic backoff between attempts) and returns the first good
    value; raises :class:`CellError` when the budget is exhausted, the
    breaker is open, or ``retry`` is off.  ``timeout`` bounds each retry
    attempt via :func:`bounded_call` (the parent-takeover deadline).
    """
    cause = first_cause
    if retry:
        retry_policy = current_policy().retry
        breaker = current_breaker()
        for attempt in range(2, retry_policy.max_attempts + 1):
            if breaker is not None and breaker.tripped:
                break
            incr("executor.cell_retries")
            _backoff(retry_policy, index, attempt - 1)
            try:
                value = bounded_call(worker, spec, timeout)
                problem = _invalid(validate, value)
                if problem is not None:
                    raise problem
            except Exception as error:
                if error.__cause__ is None and error is not cause:
                    error.__cause__ = cause
                cause = error
                continue
            incr("recovery.cell_retry_ok")
            return value
    raise CellError(index, spec, cause) from cause


def _run_serial(
    worker: Callable,
    specs: list,
    retry: bool,
    validate: Callable | None = None,
    on_error: str = "raise",
) -> list:
    retry_policy = current_policy().retry
    breaker = current_breaker()
    results = []
    for index, spec in enumerate(specs):
        budget = retry_policy.max_attempts if retry else 1
        cause: BaseException | None = None
        value = None
        for attempt in range(1, budget + 1):
            if breaker is not None and breaker.tripped:
                if cause is None:
                    cause = CircuitOpenError(
                        f"circuit breaker open ({breaker.describe()})"
                    )
                break
            if attempt > 1:
                incr("executor.cell_retries")
                _backoff(retry_policy, index, attempt - 1)
            try:
                value = worker(spec)
                problem = _invalid(validate, value)
                if problem is not None:
                    if attempt == 1:
                        incr("recovery.garbage_results")
                    raise problem
            except Exception as error:
                if (
                    cause is not None
                    and error.__cause__ is None
                    and error is not cause
                ):
                    # Chain the retry's failure onto the original so
                    # neither traceback is lost in the escalation.
                    error.__cause__ = cause
                cause = error
                continue
            if attempt > 1:
                incr("recovery.cell_retry_ok")
            cause = None
            break
        if cause is not None:
            if breaker is not None:
                breaker.record(False)
            failure = CellError(index, spec, cause)
            if on_error == "return":
                incr("executor.cells_failed")
                results.append(failure)
                continue
            raise failure from cause
        if breaker is not None:
            breaker.record(True)
        results.append(value)
    return results


def _is_pool_death(error: BaseException) -> bool:
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, BrokenProcessPool)
