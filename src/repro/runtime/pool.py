"""Work-stealing sweep runtime with persistent warm workers.

The classic :mod:`repro.runtime.executor` pool creates a fresh
``ProcessPoolExecutor`` per ``run_cells`` call, so every sweep phase pays
its warm-up again: worker processes are recreated, the optional C scan
engines are re-resolved, and big cell inputs (the SI pattern set) are
pickled into every single cell.  For overhead-dominated sweeps — many
small cells over modest SOCs, exactly the regime of the cross-architecture
comparison tables — that fixed cost dominates the actual evaluation work.

This module keeps ``jobs`` worker processes alive for the whole sweep:

* each worker initializes **once** (``warmup`` hook: pre-load the C scan
  and move-scan engines, open the shared state store) and then pulls cells
  from per-worker *shard queues*;
* cells are sharded by a deterministic cell hash — or by an explicit
  *state key*, so cells that need the same warm state (e.g. the same
  generated pattern set) land on the same worker and hit its in-process
  memo;
* an idle worker **steals** from the other shards before sleeping, so one
  long shard cannot strand the rest of the pool;
* small cells are **batched** into one queue message to keep queue traffic
  off the critical path;
* every cell start is tracked in the parent; a worker that dies
  (``worker-crash`` fault, OOM kill) has its in-flight cells reassigned to
  a live worker, a worker that hangs past the cell ``timeout``
  (``worker-hang`` fault) is killed and its cell retried serially, and if
  the whole pool is lost the parent finishes the remaining cells itself;
* heavy shared inputs travel as *references* (:class:`PatternsRef`)
  resolved worker-side through :func:`cell_state` — a read-through cache:
  per-process memo first, then the shared on-disk
  :class:`SharedStateStore`, then the deterministic factory.

Results are returned in input order and are bit-identical to a serial
run: cells are pure functions of their specs, references resolve to
deterministic values, and scheduling (sharding, stealing, batching) only
decides *where* a cell runs, never *what* it computes.

Observability counters: ``steal.*``, ``queue.*``, ``pool.*``,
``statecache.*`` and the ``worker.warmup`` timer — see docs/runtime.md.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import zlib
from dataclasses import dataclass

from repro.runtime.instrumentation import (
    Instrumentation,
    absorb_snapshot,
    get_instrumentation,
    incr,
    use_instrumentation,
)
from repro.runtime.supervision import (
    current_breaker,
    current_policy,
    disk_preflight,
    note_backend_failure,
    process_rss_bytes,
)

__all__ = [
    "PatternsRef",
    "PoolUnavailable",
    "SharedStateStore",
    "WorkerPool",
    "cell_state",
    "clear_cell_state",
    "default_warmup",
    "resolve_patterns",
    "run_cells_stolen",
    "warm_engines",
]


class PoolUnavailable(RuntimeError):
    """Persistent workers cannot be started here (no process support)."""


# ---------------------------------------------------------------------------
# Warm per-process cell state: memo + shared on-disk store.
# ---------------------------------------------------------------------------

#: Per-process memo of resolved cell state (pattern sets, warm handles).
#: Lives for the life of the worker process — that is the point.
_MEMO: dict = {}

#: Memo entries can be megabytes (a full pattern set), so cap the memo at
#: a handful of keys; a sweep touches one or two.  FIFO eviction.
_MEMO_LIMIT = 16


def clear_cell_state() -> None:
    """Drop the per-process memo (tests, long-lived parents)."""
    _MEMO.clear()


class SharedStateStore:
    """Read-through on-disk store for shareable warm state.

    One pickle file per key under ``directory``, payload prefixed with its
    sha256 so a torn write is detected, quarantined to ``*.corrupt`` and
    recomputed instead of trusted.  Writes are atomic (tmp + fsync +
    rename), so concurrent workers racing on the same key at worst both
    compute it and the last identical write wins.

    The store holds *derivable* state only (anything a worker can
    recompute from its spec); corruption therefore costs time, never
    correctness.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.state")

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        digest, payload = blob[:32], blob[32:]
        if hashlib.sha256(payload).digest() != digest:
            incr("statecache.corrupt")
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                pass
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            incr("statecache.corrupt")
            return None
        incr("statecache.disk_hits")
        return value

    def put(self, key: str, value) -> None:
        if not disk_preflight(self.directory, "statecache"):
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(hashlib.sha256(payload).digest())
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        incr("statecache.stores")


def cell_state(key: str, factory, store_dir: str | None = None):
    """Resolve warm cell state: memo, then shared store, then ``factory``.

    ``factory`` must be deterministic — the cache is an accelerator, never
    a source of truth, so a hit and a recompute are interchangeable.
    """
    value = _MEMO.get(key)
    if value is not None:
        incr("statecache.memo_hits")
        return value
    store = SharedStateStore(store_dir) if store_dir else None
    if store is not None:
        value = store.get(key)
    if value is None:
        incr("statecache.misses")
        value = factory()
        if store is not None:
            store.put(key, value)
    _MEMO[key] = value
    while len(_MEMO) > _MEMO_LIMIT:
        _MEMO.pop(next(iter(_MEMO)))
        incr("statecache.evictions")
    return value


@dataclass(frozen=True)
class PatternsRef:
    """Reference to a deterministic SI pattern set.

    Travels in cell specs instead of the materialized pattern list, so a
    warm worker generates (or store-loads) the set once per process and
    every later cell naming the same fingerprint gets it for free.

    Attributes:
        count: ``N_r`` — how many patterns to generate.
        seed: Generator seed.
        config: The :class:`~repro.sitest.generator.GeneratorConfig`.
        fingerprint: Content-hash key (SOC structure + generator inputs),
            by convention :func:`repro.runtime.cache.patterns_cache_key`.
        store_dir: Optional :class:`SharedStateStore` directory for
            cross-process sharing of the generated set.
    """

    count: int
    seed: int
    config: object
    fingerprint: str
    store_dir: str | None = None


def resolve_patterns(soc, ref: PatternsRef):
    """Materialize ``ref`` through the warm state cache."""
    from repro.sitest.generator import generate_random_patterns

    def generate():
        incr("statecache.patterns_generated")
        return generate_random_patterns(
            soc, ref.count, seed=ref.seed, config=ref.config
        )

    return cell_state(ref.fingerprint, generate, store_dir=ref.store_dir)


def warm_engines() -> dict:
    """Resolve the optional C engines once, up front.

    Compiling/loading ``_cscan`` and ``_movescan`` inside the first cell
    charges that cell's wall time and, under a per-cell ``timeout``, can
    even push it over budget.  Warm workers pay it during warm-up instead;
    the resolved handles stay cached in the worker process for every
    subsequent cell.
    """
    from repro.compaction import _cscan
    from repro.core import _movescan

    return {"cscan": _cscan.warm(), "movescan": _movescan.warm()}


def default_warmup() -> dict:
    """Standard worker warm-up: pre-load the C engines."""
    return warm_engines()


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------

_IDLE_WAIT = 0.05          # blocking wait on the own shard per idle loop
_HEARTBEAT_EVERY = 0.5     # min seconds between idle heartbeats
_STALL_RESCUE = 5.0        # silence after a worker death before re-enqueueing
_RSS_CHECK_EVERY = 1.0     # min seconds between RSS watchdog sweeps


def _take(queue):
    """Non-blocking take; ``None`` when (apparently) empty."""
    import queue as queue_module

    try:
        return queue.get_nowait()
    except queue_module.Empty:
        return None


def _worker_main(worker_id, warmup, shard_queues, result_queue, done_event):
    """Body of one persistent worker process.

    Loops: own shard first, then steal from the other shards, then block
    briefly on the own shard.  A task is a batch of ``(index, spec,
    worker_fn)`` triples; the worker function travels with the task so one
    pool serves sweep phases with different cell functions.  Exits when
    the parent sets ``done_event`` and no more work is visible.
    """
    import queue as queue_module

    local = Instrumentation()
    jobs = len(shard_queues)
    own = shard_queues[worker_id]
    with use_instrumentation(local):
        try:
            with local.timeit("worker.warmup"):
                if warmup is not None:
                    warmup()
            local.incr("pool.warmups")
        except Exception as error:  # a worker that cannot warm up is useless
            result_queue.put(("fail", worker_id, _shippable_error(error)))
            result_queue.put(("bye", worker_id, local.snapshot()))
            return
        result_queue.put(("up", worker_id))
        last_heartbeat = time.monotonic()
        while True:
            task = _take(own)
            if task is None and jobs > 1:
                local.incr("steal.attempts")
                for offset in range(1, jobs):
                    task = _take(shard_queues[(worker_id + offset) % jobs])
                    if task is not None:
                        local.incr("steal.hits")
                        local.incr("steal.cells_stolen", len(task))
                        break
            if task is None:
                if done_event.is_set():
                    break
                now = time.monotonic()
                if now - last_heartbeat >= _HEARTBEAT_EVERY:
                    result_queue.put(("hb", worker_id))
                    last_heartbeat = now
                try:
                    task = own.get(timeout=_IDLE_WAIT)
                except queue_module.Empty:
                    continue
            result_queue.put(
                ("take", worker_id, [index for index, _, _ in task])
            )
            for index, spec, worker_fn in task:
                result_queue.put(("start", worker_id, index))
                try:
                    value = worker_fn(spec)
                except Exception as error:
                    result_queue.put(
                        ("err", worker_id, index, _shippable_error(error))
                    )
                else:
                    result_queue.put(("ok", worker_id, index, value))
                local.incr("worker.cells")
            last_heartbeat = time.monotonic()
    result_queue.put(("bye", worker_id, local.snapshot()))


def _shippable_error(error: BaseException) -> BaseException:
    """An exception safe to put on an mp queue (picklable or summarized)."""
    try:
        pickle.dumps(error)
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def _shard_of(index: int, spec, shard_key, jobs: int) -> int:
    """Deterministic shard of a cell: its state key when given (affinity —
    same warm state, same worker), else a hash of the spec itself."""
    if shard_key is not None:
        data = repr(shard_key).encode("utf-8", "replace")
    else:
        try:
            data = pickle.dumps((index, spec))
        except Exception:
            data = str(index).encode()
    return zlib.crc32(data) % jobs


class WorkerPool:
    """Persistent warm workers for one sweep.

    Create once per sweep, call :meth:`run` for every cell phase (the
    workers — and their warm state — persist between phases), then
    :meth:`close`.  Usable as a context manager.

    Args:
        jobs: Worker process count (``>= 2`` to be useful).
        warmup: Optional module-level (picklable) zero-arg callable run
            once per worker before it pulls cells.
        timeout: Default per-cell budget in seconds (``None`` =
            unbounded); a cell past it has its worker killed and is
            retried serially in the parent.

    Raises:
        PoolUnavailable: When worker processes cannot be started.
    """

    def __init__(self, jobs: int, warmup=None, timeout: float | None = None):
        import multiprocessing

        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self.timeout = timeout
        self._closed = False
        self._lost: set[int] = set()
        self._workers: list = []
        try:
            context = multiprocessing.get_context()
            self._shard_queues = [context.Queue() for _ in range(jobs)]
            self._result_queue = context.Queue()
            self._done = context.Event()
            for worker_id in range(jobs):
                process = context.Process(
                    target=_worker_main,
                    args=(worker_id, warmup, self._shard_queues,
                          self._result_queue, self._done),
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
        except (OSError, ValueError, NotImplementedError) as error:
            self._abandon()
            raise PoolUnavailable(
                f"cannot start worker pool: {error!r}"
            ) from error
        incr("pool.workers_started", jobs)

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _abandon(self) -> None:
        for process in self._workers:
            if process.is_alive():
                process.terminate()

    def close(self) -> None:
        """Shut the workers down and absorb their loop-level snapshots
        (steal counters, warm-up timers) into the current instrumentation."""
        if self._closed:
            return
        self._closed = True
        self._done.set()
        deadline = time.monotonic() + 5.0
        waiting = {
            wid for wid, process in enumerate(self._workers)
            if process.is_alive() or wid not in self._lost
        }
        while waiting and time.monotonic() < deadline:
            message = self._poll(0.1)
            if message is None:
                waiting = {w for w in waiting if self._workers[w].is_alive()}
                continue
            if message[0] == "bye":
                absorb_snapshot(message[2])
                waiting.discard(message[1])
            elif message[0] == "hb":
                incr("pool.heartbeats")
        for process in self._workers:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
        for queue in (*self._shard_queues, self._result_queue):
            queue.close()
            queue.cancel_join_thread()

    def _poll(self, wait: float):
        import queue as queue_module

        try:
            if wait <= 0:
                return self._result_queue.get_nowait()
            return self._result_queue.get(timeout=wait)
        except queue_module.Empty:
            return None

    # -- running a phase --------------------------------------------------

    def run(
        self,
        worker,
        specs,
        timeout: float | None = None,
        retry: bool = True,
        validate=None,
        shard_keys=None,
        on_error: str = "raise",
    ) -> list:
        """Run ``worker(spec)`` for every spec on the warm workers.

        Same contract as :func:`repro.runtime.executor.run_cells`:
        results in input order; a failed, hung, crashed-with-its-worker or
        invalid cell is retried serially in the parent under the current
        :class:`~repro.runtime.supervision.RunPolicy`'s retry budget, then
        escalated to :class:`~repro.runtime.executor.CellError` (or, with
        ``on_error="return"``, placed in the results list).  Parent-side
        retries are bounded by the same cell ``timeout`` the workers
        enforce, and counted under ``pool.parent_takeover``.
        ``shard_keys`` (parallel to ``specs``) route cells sharing warm
        state to the same worker.
        """
        from repro.runtime.executor import CellError, _invalid, retry_cell

        if self._closed:
            raise RuntimeError("worker pool is closed")
        specs = list(specs)
        if not specs:
            return []
        policy = current_policy()
        breaker = current_breaker()
        if timeout is None:
            timeout = self.timeout
        if timeout is None:
            timeout = policy.cell_timeout
        max_rss = policy.max_worker_rss_bytes
        next_rss_check = time.monotonic()

        batches = self._plan_batches(specs, shard_keys, worker)
        incr("executor.cells_submitted", len(specs))
        incr("queue.enqueued", len(specs))
        incr("queue.batches", len(batches))
        counters = get_instrumentation().counters
        counters["queue.max_depth"] = max(
            counters.get("queue.max_depth", 0), len(specs)
        )
        for shard, batch in batches:
            self._shard_queues[shard].put(batch)

        results: list = [None] * len(specs)
        resolved = [False] * len(specs)
        needs_retry: list[tuple[int, BaseException]] = []
        scheduled_retry: set[int] = set()
        reassigned: set[int] = set()
        assigned: dict[int, set[int]] = {}    # worker -> taken cell indices
        deadlines: dict[int, float] = {}      # cell index -> hang deadline
        outstanding = len(specs)

        def settle(index: int) -> None:
            nonlocal outstanding
            if not resolved[index]:
                resolved[index] = True
                outstanding -= 1
                deadlines.pop(index, None)
                for taken in assigned.values():
                    taken.discard(index)

        def fail(index: int, cause: BaseException) -> None:
            if resolved[index] or index in scheduled_retry:
                return
            scheduled_retry.add(index)
            needs_retry.append((index, cause))
            settle(index)

        def reassign(index: int, cause: BaseException) -> None:
            """Second chance on a live worker, else the serial-retry path."""
            if resolved[index] or index in scheduled_retry:
                return
            live = [
                wid for wid, process in enumerate(self._workers)
                if process.is_alive()
            ]
            if live and index not in reassigned:
                reassigned.add(index)
                incr("pool.reassignments")
                incr("queue.reassigned")
                shard = live[_shard_of(index, specs[index], None, len(live))]
                self._shard_queues[shard].put([(index, specs[index], worker)])
            else:
                fail(index, cause)

        last_message = time.monotonic()
        while outstanding > 0:
            message = self._poll(_IDLE_WAIT)
            if message is not None:
                last_message = time.monotonic()
                kind = message[0]
                if kind == "ok":
                    _, worker_id, index, value = message
                    if not resolved[index]:
                        problem = _invalid(validate, value)
                        if problem is not None:
                            incr("executor.invalid_results")
                            incr("recovery.garbage_results")
                            fail(index, problem)
                        else:
                            results[index] = value
                            settle(index)
                elif kind == "err":
                    _, worker_id, index, error = message
                    fail(index, error)
                elif kind == "take":
                    _, worker_id, indices = message
                    assigned.setdefault(worker_id, set()).update(
                        index for index in indices if not resolved[index]
                    )
                elif kind == "start":
                    _, worker_id, index = message
                    if timeout is not None and not resolved[index]:
                        deadlines[index] = time.monotonic() + timeout
                elif kind == "hb":
                    incr("pool.heartbeats")
                elif kind == "fail":
                    _, worker_id, error = message
                    incr("pool.warmup_failures")
                    self._note_lost(
                        worker_id, assigned, reassign, error, len(specs)
                    )
                elif kind == "bye":
                    absorb_snapshot(message[2])
                continue

            # Queue idle: police cell deadlines, worker RSS and liveness.
            now = time.monotonic()
            if max_rss is not None and now >= next_rss_check:
                next_rss_check = now + _RSS_CHECK_EVERY
                for worker_id, process in enumerate(self._workers):
                    if worker_id in self._lost or not process.is_alive():
                        continue
                    rss = process_rss_bytes(process.pid)
                    if rss is None or rss <= max_rss:
                        continue
                    incr("guard.rss_over_limit")
                    cause = MemoryError(
                        f"worker {worker_id} RSS {rss} bytes exceeds "
                        f"the {max_rss}-byte policy limit"
                    )
                    # Retire the over-limit worker's in-flight cells to
                    # the parent's serial path (re-running them on
                    # another worker would likely blow the same limit),
                    # then kill it and rescue the rest of its shard.
                    for index in sorted(assigned.get(worker_id, ())):
                        if not resolved[index]:
                            incr("recovery.rss_retired_serial")
                            fail(index, cause)
                    process.kill()
                    self._note_lost(
                        worker_id, assigned, reassign, cause, len(specs)
                    )
            for index, deadline in list(deadlines.items()):
                if now >= deadline and not resolved[index]:
                    incr("executor.cell_timeouts")
                    cause = TimeoutError(f"cell exceeded {timeout}s")
                    owner = next(
                        (wid for wid, taken in assigned.items()
                         if index in taken and self._workers[wid].is_alive()),
                        None,
                    )
                    fail(index, cause)
                    if owner is not None:
                        # The worker is stuck inside this cell; reclaim the
                        # process so the rest of its work can be rescued.
                        self._workers[owner].kill()
                        self._note_lost(
                            owner, assigned, reassign, cause, len(specs)
                        )
            for worker_id, process in enumerate(self._workers):
                if worker_id not in self._lost and not process.is_alive():
                    self._note_lost(
                        worker_id, assigned, reassign,
                        RuntimeError(
                            f"worker {worker_id} died "
                            f"(exitcode {process.exitcode})"
                        ),
                        len(specs),
                    )
            if outstanding > 0 and not any(
                process.is_alive() for process in self._workers
            ):
                note_backend_failure("workers")
                self._parent_takeover(
                    specs, results, resolved, settle, fail, worker, timeout
                )
            elif (
                outstanding > 0
                and self._lost
                and now - last_message > _STALL_RESCUE
            ):
                # A worker died and nothing has arrived for a while: a
                # batch may have been dequeued in the instant before the
                # death, never announced, and so be tracked by nobody.
                # Re-enqueue every unresolved cell no live worker owns;
                # duplicate execution is deterministic and ignored.
                live = [
                    wid for wid, process in enumerate(self._workers)
                    if process.is_alive()
                ]
                owned = set()
                for wid in live:
                    owned |= assigned.get(wid, set())
                for index in range(len(specs)):
                    if not resolved[index] and index not in owned:
                        incr("pool.stall_rescues")
                        shard = live[
                            _shard_of(index, specs[index], None, len(live))
                        ]
                        self._shard_queues[shard].put(
                            [(index, specs[index], worker)]
                        )
                last_message = time.monotonic()

        self._drain_pending_messages(results, resolved)

        if breaker is not None:
            for index in range(len(specs)):
                if index not in scheduled_retry:
                    breaker.record(True)
        needs_retry.sort(key=lambda item: item[0])
        for index, cause in needs_retry:
            # Parent takeover of one cell: the retry runs in the parent
            # under the same cell deadline the workers enforce, so a
            # deterministic hang cannot stall the whole sweep here.
            incr("pool.parent_takeover")
            try:
                results[index] = retry_cell(
                    worker, specs[index], index, cause, retry, validate,
                    timeout=timeout,
                )
            except CellError as failure:
                if breaker is not None:
                    breaker.record(False)
                if on_error == "return":
                    incr("executor.cells_failed")
                    results[index] = failure
                    continue
                raise
            else:
                if breaker is not None:
                    breaker.record(True)
        return results

    # -- internals --------------------------------------------------------

    def _plan_batches(self, specs, shard_keys, worker):
        """Deterministic ``(shard, [(index, spec, worker)...])`` batches.

        Cells sharing a state key stay on one shard and are split into at
        most ``effective`` batches — one per plausibly-concurrent worker —
        so affinity survives batching without serializing a multi-core
        pool behind one shard.  Unkeyed cells hash-shard individually and
        ride one batch per shard.
        """
        keys = (
            list(shard_keys) if shard_keys is not None
            else [None] * len(specs)
        )
        if len(keys) != len(specs):
            raise ValueError("shard_keys must parallel specs")
        effective = max(1, min(self.jobs, os.cpu_count() or 1))
        by_shard: dict[int, list[int]] = {}
        for index, (spec, key) in enumerate(zip(specs, keys)):
            shard = _shard_of(index, spec, key, self.jobs)
            by_shard.setdefault(shard, []).append(index)
        batches = []
        for shard in sorted(by_shard):
            indices = by_shard[shard]
            size = max(1, -(-len(indices) // effective))
            for at in range(0, len(indices), size):
                batch = [
                    (index, specs[index], worker)
                    for index in indices[at:at + size]
                ]
                batches.append((shard, batch))
        return batches

    def _note_lost(self, worker_id, assigned, reassign, cause,
                   total) -> None:
        """Account a dead worker and rescue every cell it might hold.

        A crashed process loses whatever its queue feeder had not flushed,
        including the ``take`` announcements — so the parent cannot trust
        its ownership map for the dead worker.  Rescue every unresolved
        cell not owned by a *live* worker: cells still sitting in healthy
        shard queues get duplicated at worst, and duplicates are
        deterministic and ignored.
        """
        if worker_id in self._lost:
            return
        self._lost.add(worker_id)
        incr("pool.workers_lost")
        incr("recovery.worker_reassigned")
        assigned.pop(worker_id, None)
        owned = set()
        for wid, taken in assigned.items():
            if self._workers[wid].is_alive():
                owned |= taken
        for index in range(total):
            if index not in owned:
                reassign(index, cause)

    def _parent_takeover(self, specs, results, resolved, settle, fail,
                         worker, timeout=None) -> None:
        """Every worker is gone: drain the queues and finish serially.

        A result that was in flight when its worker died may be recomputed
        here; duplicates are ignored upstream, so that costs time only.
        Each cell runs under the same ``timeout`` the workers enforced
        (:func:`~repro.runtime.executor.bounded_call`), so a
        deterministically hanging cell cannot turn the takeover into a
        hang of the parent itself.
        """
        from repro.runtime.executor import bounded_call

        incr("pool.parent_takeover")
        for queue in self._shard_queues:
            while _take(queue) is not None:
                pass
        for index in range(len(specs)):
            if resolved[index]:
                continue
            try:
                value = bounded_call(worker, specs[index], timeout)
            except Exception as error:
                fail(index, error)
            else:
                results[index] = value
                settle(index)

    def _drain_pending_messages(self, results, resolved) -> None:
        """Harvest results already queued (e.g. sent just before a crash,
        or racing a takeover) so no completed work is recomputed."""
        while True:
            message = self._poll(0)
            if message is None:
                return
            if message[0] == "ok":
                _, _, index, value = message
                if not resolved[index]:
                    results[index] = value
                    resolved[index] = True
            elif message[0] == "bye":
                absorb_snapshot(message[2])
            elif message[0] == "hb":
                incr("pool.heartbeats")


def run_cells_stolen(
    worker,
    specs,
    jobs: int = 2,
    timeout: float | None = None,
    retry: bool = True,
    validate=None,
    warmup=None,
    shard_keys=None,
    on_error: str = "raise",
) -> list:
    """One-shot convenience: a transient :class:`WorkerPool` for one phase.

    Raises:
        PoolUnavailable: When workers cannot be started (callers fall back
            to the classic pool).
    """
    specs = list(specs)
    with WorkerPool(
        max(1, min(jobs, len(specs) or 1)), warmup=warmup, timeout=timeout
    ) as pool:
        return pool.run(
            worker, specs, timeout=timeout, retry=retry,
            validate=validate, shard_keys=shard_keys, on_error=on_error,
        )
