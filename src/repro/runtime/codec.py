"""Exact JSON round-trips for the objects held by the evaluation cache.

Unlike :mod:`repro.tam.serialize` (a one-way, human-oriented summary),
these codecs reconstruct results *exactly*: a cache hit loaded from disk
compares equal to the object a cold run would have produced, which is the
invariant the runtime test suite pins down.

``GroupingResult`` is stored in reduced form: the per-group vertical
compaction details (the merged patterns themselves) are dropped because
they are large and nothing downstream of the experiment harness reads
them.  A grouping restored from cache therefore carries an empty
``compactions`` tuple — its ``groups``, ``part_of_core`` and
``cut_patterns`` round-trip exactly.
"""

from __future__ import annotations

from repro.compaction.groups import SITestGroup
from repro.compaction.horizontal import GroupingResult
from repro.core.optimizer import OptimizationResult
from repro.core.scheduling import Evaluation, RailStats, SIScheduleEntry
from repro.tam.testrail import TestRail, TestRailArchitecture


def group_to_dict(group: SITestGroup) -> dict:
    return {
        "group_id": group.group_id,
        "cores": sorted(group.cores),
        "patterns": group.patterns,
        "original_patterns": group.original_patterns,
        "is_residual": group.is_residual,
    }


def group_from_dict(data: dict) -> SITestGroup:
    return SITestGroup(
        group_id=data["group_id"],
        cores=frozenset(data["cores"]),
        patterns=data["patterns"],
        original_patterns=data["original_patterns"],
        is_residual=data["is_residual"],
    )


def groups_to_list(groups: tuple[SITestGroup, ...]) -> list[dict]:
    return [group_to_dict(group) for group in groups]


def groups_from_list(data: list[dict]) -> tuple[SITestGroup, ...]:
    return tuple(group_from_dict(entry) for entry in data)


def grouping_to_dict(grouping: GroupingResult) -> dict:
    return {
        "groups": groups_to_list(grouping.groups),
        "part_of_core": {
            str(core_id): part
            for core_id, part in sorted(grouping.part_of_core.items())
        },
        "cut_patterns": grouping.cut_patterns,
    }


def grouping_from_dict(data: dict) -> GroupingResult:
    return GroupingResult(
        groups=groups_from_list(data["groups"]),
        part_of_core={
            int(core_id): part
            for core_id, part in data["part_of_core"].items()
        },
        cut_patterns=data["cut_patterns"],
        compactions=(),
    )


def architecture_to_dict(architecture: TestRailArchitecture) -> dict:
    return {
        "rails": [
            {"cores": list(rail.cores), "width": rail.width}
            for rail in architecture.rails
        ]
    }


def architecture_from_dict(data: dict) -> TestRailArchitecture:
    return TestRailArchitecture(
        rails=tuple(
            TestRail(cores=tuple(entry["cores"]), width=entry["width"])
            for entry in data["rails"]
        )
    )


def evaluation_to_dict(evaluation: Evaluation) -> dict:
    return {
        "t_in": evaluation.t_in,
        "t_si": evaluation.t_si,
        "schedule": [
            {
                "group_id": entry.group_id,
                "time_si": entry.time_si,
                "rails": sorted(entry.rails),
                "bottleneck_rail": entry.bottleneck_rail,
                "begin": entry.begin,
                "end": entry.end,
            }
            for entry in evaluation.schedule
        ],
        "rail_stats": [
            {
                "time_in": stats.time_in,
                "si_depths": list(stats.si_depths),
                "time_si": stats.time_si,
            }
            for stats in evaluation.rail_stats
        ],
    }


def evaluation_from_dict(data: dict) -> Evaluation:
    return Evaluation(
        t_in=data["t_in"],
        t_si=data["t_si"],
        schedule=tuple(
            SIScheduleEntry(
                group_id=entry["group_id"],
                time_si=entry["time_si"],
                rails=frozenset(entry["rails"]),
                bottleneck_rail=entry["bottleneck_rail"],
                begin=entry["begin"],
                end=entry["end"],
            )
            for entry in data["schedule"]
        ),
        rail_stats=tuple(
            RailStats(
                time_in=stats["time_in"],
                si_depths=tuple(stats["si_depths"]),
                time_si=stats["time_si"],
            )
            for stats in data["rail_stats"]
        ),
    )


def optimization_to_dict(result: OptimizationResult) -> dict:
    return {
        "architecture": architecture_to_dict(result.architecture),
        "evaluation": evaluation_to_dict(result.evaluation),
        "w_max": result.w_max,
    }


def optimization_from_dict(data: dict) -> OptimizationResult:
    return OptimizationResult(
        architecture=architecture_from_dict(data["architecture"]),
        evaluation=evaluation_from_dict(data["evaluation"]),
        w_max=data["w_max"],
    )
