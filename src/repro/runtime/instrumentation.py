"""Run instrumentation: counters, wall/CPU timers and the JSON run report.

A single :class:`Instrumentation` object is *current* per process at any
time (module global, swapped with :func:`use_instrumentation`).  Hot paths
call :func:`incr` — one dict increment, cheap relative to the evaluation
work they count — so the optimizer, the compactor and the schedulers are
always observable without a recompile or a flag.

Parallel sweep workers run in their own processes; each wraps its cell in
:func:`call_with_instrumentation`, ships the resulting snapshot back with
the cell value, and the parent folds it into its own current object with
:func:`absorb_snapshot`.  Counter totals are therefore identical whether a
sweep ran serially or fanned out (timer totals sum worker wall time and
thus exceed elapsed wall time under parallelism — that is the point).

Counter names are dotted: ``evaluator.evaluations``,
``optimizer.merges_tried``, ``compaction.patterns_in``,
``scheduler.greedy_runs``, ``cache.hits`` and so on; see docs/runtime.md
for the full vocabulary.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

REPORT_FORMAT = "repro-run-report"
REPORT_VERSION = 1


class Instrumentation:
    """A bag of named counters and accumulated wall/CPU timers."""

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, dict[str, float]] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def timeit(self, name: str):
        """Accumulate wall and CPU seconds of the ``with`` body under
        ``name``; one timer may be entered many times."""
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            self._add_time(
                name,
                time.perf_counter() - wall_start,
                time.process_time() - cpu_start,
            )

    def _add_time(self, name: str, wall: float, cpu: float) -> None:
        entry = self.timers.setdefault(
            name, {"wall_seconds": 0.0, "cpu_seconds": 0.0, "calls": 0}
        )
        entry["wall_seconds"] += wall
        entry["cpu_seconds"] += cpu
        entry["calls"] += 1

    def snapshot(self) -> dict:
        """JSON-ready copy of the current counters and timers."""
        return {
            "counters": dict(self.counters),
            "timers": {name: dict(entry) for name, entry in self.timers.items()},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        object; counters and timer accumulations add up."""
        for name, amount in snapshot.get("counters", {}).items():
            self.incr(name, amount)
        for name, entry in snapshot.get("timers", {}).items():
            target = self.timers.setdefault(
                name, {"wall_seconds": 0.0, "cpu_seconds": 0.0, "calls": 0}
            )
            target["wall_seconds"] += entry.get("wall_seconds", 0.0)
            target["cpu_seconds"] += entry.get("cpu_seconds", 0.0)
            target["calls"] += entry.get("calls", 0)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()


#: The per-process current instrumentation; always a live object so hot
#: paths never need a None check.
_CURRENT = Instrumentation()


def get_instrumentation() -> Instrumentation:
    """The process-current :class:`Instrumentation`."""
    return _CURRENT


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the current instrumentation."""
    counters = _CURRENT.counters
    counters[name] = counters.get(name, 0) + amount


@contextmanager
def use_instrumentation(instrumentation: Instrumentation):
    """Make ``instrumentation`` current for the ``with`` body."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = instrumentation
    try:
        yield instrumentation
    finally:
        _CURRENT = previous


def call_with_instrumentation(function, /, *args, **kwargs) -> tuple:
    """Run ``function`` under a fresh instrumentation object.

    Returns ``(value, snapshot)``.  This is the worker-side half of the
    parallel accounting protocol; the parent passes the snapshot to
    :func:`absorb_snapshot`.
    """
    instrumentation = Instrumentation()
    with use_instrumentation(instrumentation):
        value = function(*args, **kwargs)
    return value, instrumentation.snapshot()


def absorb_snapshot(snapshot: dict) -> None:
    """Fold a worker snapshot into the current instrumentation."""
    _CURRENT.merge(snapshot)


@dataclass
class RunReport:
    """Structured summary of one experiment run.

    Attributes:
        command: What ran (e.g. ``"table"``, ``"run_experiments"``).
        arguments: The run's parameters (SOC, seed, widths, jobs, ...).
        wall_seconds: End-to-end elapsed time of the run.
        counters: Counter totals (serial-equivalent, see module docstring).
        timers: Accumulated timer figures.
        cache: Cache statistics (hits/misses/...), empty when no cache.
        plan: Executed-plan block (name, fingerprint, backend, cell
            counts) for plan-driven runs; empty otherwise.  See
            :func:`repro.experiments.reporting.experiment_report`.
    """

    command: str
    arguments: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    plan: dict = field(default_factory=dict)

    @staticmethod
    def build(
        command: str,
        arguments: dict,
        wall_seconds: float,
        instrumentation: Instrumentation | None = None,
        cache=None,
        plan: dict | None = None,
    ) -> "RunReport":
        """Assemble a report from the run's instrumentation and cache."""
        snapshot = (instrumentation or _CURRENT).snapshot()
        return RunReport(
            command=command,
            arguments=arguments,
            wall_seconds=wall_seconds,
            counters=snapshot["counters"],
            timers=snapshot["timers"],
            cache=cache.stats() if cache is not None else {},
            plan=dict(plan) if plan else {},
        )

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "command": self.command,
            "arguments": self.arguments,
            "wall_seconds": round(self.wall_seconds, 6),
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {
                    "wall_seconds": round(entry["wall_seconds"], 6),
                    "cpu_seconds": round(entry["cpu_seconds"], 6),
                    "calls": entry["calls"],
                }
                for name, entry in sorted(self.timers.items())
            },
            "cache": self.cache,
            "plan": self.plan,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def summary(self) -> str:
        """One-paragraph human rendering for ``--profile`` console output."""
        lines = [f"run report: {self.command} ({self.wall_seconds:.2f}s wall)"]
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name:<34} {value}")
        for name, entry in sorted(self.timers.items()):
            lines.append(
                f"  {name:<34} {entry['wall_seconds']:.2f}s wall / "
                f"{entry['cpu_seconds']:.2f}s cpu / {entry['calls']} calls"
            )
        if self.cache:
            stats = ", ".join(
                f"{key}={value}" for key, value in sorted(self.cache.items())
            )
            lines.append(f"  cache: {stats}")
        return "\n".join(lines)
