"""The unified run-status vocabulary shared by the CLI and the service.

Every way of running an experiment — a one-shot CLI command, a plan
submitted to the :mod:`repro.service` job server — reports its outcome
in the same three words:

* ``ok`` — the run completed and a report was assembled;
* ``partial`` — an ``allow_partial`` policy salvaged the run after
  quarantining poisoned cells; no report was assembled, the checkpoint
  keeps the completed cells for a later resume;
* ``failed`` — the run raised (validation error, exhausted cell,
  verification violation, ...).

The CLI maps the vocabulary onto process exit codes (``repro submit``
mirrors the job's terminal state the same way):

==========  =========  =============================================
status      exit code  meaning
==========  =========  =============================================
``ok``      0          complete report on stdout
``partial`` 3          partial-run banner; retry with ``--resume``
``failed``  1          diagnostic on stderr
==========  =========  =============================================

Exit code 2 stays argparse's usage-error code, and
:data:`repro.resilience.faults.ABORT_EXIT_CODE` (87) stays the injected
hard-abort marker, so neither can be mistaken for an experiment outcome.
"""

from __future__ import annotations

STATUS_OK = "ok"
STATUS_PARTIAL = "partial"
STATUS_FAILED = "failed"

#: Every terminal run status, in severity order.
RUN_STATUSES = (STATUS_OK, STATUS_PARTIAL, STATUS_FAILED)

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_PARTIAL = 3

_EXIT_OF = {
    STATUS_OK: EXIT_OK,
    STATUS_PARTIAL: EXIT_PARTIAL,
    STATUS_FAILED: EXIT_FAILED,
}


def run_status(run) -> str:
    """The vocabulary word for a finished :class:`PlanRun`."""
    return STATUS_PARTIAL if run.status == "partial" else STATUS_OK


def exit_code(status: str) -> int:
    """Process exit code for a terminal run/job status.

    Raises:
        ValueError: On a word outside the vocabulary.
    """
    try:
        return _EXIT_OF[status]
    except KeyError:
        raise ValueError(
            f"unknown run status {status!r}; expected one of "
            f"{', '.join(RUN_STATUSES)}"
        ) from None
