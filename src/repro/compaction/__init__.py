"""Two-dimensional SI test set compaction."""

from repro.compaction.groups import SITestGroup
from repro.compaction.horizontal import GroupingResult, build_si_test_groups
from repro.compaction.kernel import (
    KernelMismatchError,
    PackedPatternSet,
    color_compact_bitset,
    greedy_compact_bitset,
)
from repro.compaction.vertical import (
    BACKENDS,
    CompactionResult,
    color_compact,
    greedy_compact,
)

__all__ = [
    "BACKENDS",
    "CompactionResult",
    "GroupingResult",
    "KernelMismatchError",
    "PackedPatternSet",
    "SITestGroup",
    "build_si_test_groups",
    "color_compact",
    "color_compact_bitset",
    "greedy_compact",
    "greedy_compact_bitset",
]
