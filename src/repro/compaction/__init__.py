"""Two-dimensional SI test set compaction."""

from repro.compaction.groups import SITestGroup
from repro.compaction.horizontal import GroupingResult, build_si_test_groups
from repro.compaction.vertical import (
    CompactionResult,
    color_compact,
    greedy_compact,
)

__all__ = [
    "CompactionResult",
    "GroupingResult",
    "SITestGroup",
    "build_si_test_groups",
    "color_compact",
    "greedy_compact",
]
