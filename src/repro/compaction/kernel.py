"""Packed-bitset vertical compaction kernel.

The reference compactors in :mod:`repro.compaction.vertical` walk Python
dicts per candidate pair, which is O(n · cares) *per merge cycle* and
dominates experiment wall time beyond a few thousand patterns.  This module
re-encodes a pattern list densely so the same algorithms run on arbitrary-
width Python ints:

* **Bit space.**  Pattern ``i`` of ``n`` owns bit ``n - 1 - i`` ("reversed"
  order).  The *lowest-index remaining pattern* — what the greedy scan asks
  for constantly — is then the **top** set bit, found in O(1) with
  ``int.bit_length()``; masks of later candidates shrink as the scan
  advances, so big-int ops get cheaper over a run instead of staying
  full-width.
* **Terminal planes** (:class:`PackedPatternSet`).  Per terminal, a *care
  mask* (bit set ⇔ the pattern assigns the terminal) plus two *symbol
  bit-planes* holding the low/high bit of the symbol id (``0``→0, ``1``→1,
  ``R``→2, ``F``→3).  A pattern's symbol at a terminal is recoverable from
  two bit tests; the per-symbol occupancy masks are disjoint slices of the
  care mask.
* **Bus claims** are packed per ``(line, driver)`` the same way, with a
  per-line total mask.
* **Conflict index.**  From the planes, each ``(terminal, symbol)`` key gets
  the mask of patterns caring that terminal with a *different* symbol, and
  each ``(line, driver)`` claim the mask of patterns claiming the line from
  a different core.  Candidate-versus-merge compatibility then costs a
  handful of big-int AND/XOR/sub ops instead of a dict walk per candidate —
  and the greedy pass never visits a conflicting candidate at all.

:func:`greedy_compact_bitset` and :func:`color_compact_bitset` reproduce
the reference implementations **bit-identically** (same
:class:`~repro.compaction.vertical.CompactionResult`, including member
partition and ordering); ``verify=True`` cross-checks against the reference
at full cost.  Dispatch between backends lives in
:func:`repro.compaction.vertical.greedy_compact` /
:func:`~repro.compaction.vertical.color_compact` via their ``backend``
argument.
"""

from __future__ import annotations

from collections import defaultdict

from repro.runtime.instrumentation import incr
from repro.sitest.patterns import SIPattern, Terminal

#: Symbol id per care symbol; bit 0 / bit 1 land in plane0 / plane1.
SYMBOL_IDS = {"0": 0, "1": 1, "R": 2, "F": 3}

#: ``backend="auto"`` picks the bitset kernel at or above these pattern
#: counts.  Below them the packed index costs more than it saves; the
#: crossovers were measured on the bundled ITC'02 SOCs (see
#: ``benchmarks/bench_compaction.py``).
GREEDY_AUTO_THRESHOLD = 2048
COLOR_AUTO_THRESHOLD = 64


class KernelMismatchError(AssertionError):
    """The bitset kernel disagreed with the reference implementation."""


class PackedPatternSet:
    """Dense big-int encoding of an :class:`SIPattern` list.

    Pattern ``i`` of ``size`` owns bit ``size - 1 - i`` in every mask (see
    module docstring for why the order is reversed).

    Attributes:
        size: Number of encoded patterns.
        terminal_ids: Dense id per terminal, in first-seen order.
        care: Per terminal id, the mask of patterns assigning the terminal.
        plane0: Per terminal id, the mask of patterns whose symbol id there
            has bit 0 set (``1`` or ``F``).  Subset of ``care``.
        plane1: Same for bit 1 (``R`` or ``F``).  Subset of ``care``.
        bus_total: Per bus line, the mask of patterns claiming the line.
        bus_claim: Per ``(line, driver)``, the mask of patterns claiming
            the line from that core boundary.  The claims of one line are
            disjoint and OR to ``bus_total[line]``.
    """

    __slots__ = (
        "size", "terminal_ids", "care", "plane0", "plane1",
        "bus_total", "bus_claim",
    )

    def __init__(self, size, terminal_ids, care, plane0, plane1,
                 bus_total, bus_claim):
        self.size = size
        self.terminal_ids: dict[Terminal, int] = terminal_ids
        self.care: list[int] = care
        self.plane0: list[int] = plane0
        self.plane1: list[int] = plane1
        self.bus_total: dict[int, int] = bus_total
        self.bus_claim: dict[tuple[int, int], int] = bus_claim

    @classmethod
    def from_patterns(cls, patterns: list[SIPattern]) -> "PackedPatternSet":
        """Encode ``patterns`` into terminal planes and bus claim masks."""
        n = len(patterns)
        top = n - 1
        terminal_ids: dict[Terminal, int] = {}
        # occurrence lists of reversed indices, keyed tid * 4 + symbol id
        occ: defaultdict[int, list[int]] = defaultdict(list)
        occ_bus: defaultdict[tuple[int, int], list[int]] = defaultdict(list)
        symbol_ids = SYMBOL_IDS
        tid_get = terminal_ids.get
        rev = n
        for pattern in patterns:
            rev -= 1
            for terminal, symbol in pattern.cares.items():
                tid = tid_get(terminal)
                if tid is None:
                    tid = terminal_ids[terminal] = len(terminal_ids)
                occ[tid * 4 + symbol_ids[symbol]].append(rev)
            for claim in pattern.bus_claims.items():
                occ_bus[claim].append(rev)

        scratch = bytearray((n >> 3) + 1)

        def to_int(indices: list[int]) -> int:
            for i in indices:
                scratch[i >> 3] |= 1 << (i & 7)
            value = int.from_bytes(scratch, "little")
            for i in indices:
                scratch[i >> 3] = 0
            return value

        count = len(terminal_ids)
        care = [0] * count
        plane0 = [0] * count
        plane1 = [0] * count
        for tid in range(count):
            base = tid * 4
            slices = [occ.get(base + sid) for sid in range(4)]
            present = [sid for sid in range(4) if slices[sid]]
            if len(present) == 1:
                sid = present[0]
                mask = to_int(slices[sid])
                care[tid] = mask
                if sid & 1:
                    plane0[tid] = mask
                if sid & 2:
                    plane1[tid] = mask
                continue
            everything: list[int] = []
            low: list[int] = []
            high: list[int] = []
            for sid in present:
                everything.extend(slices[sid])
                if sid & 1:
                    low.extend(slices[sid])
                if sid & 2:
                    high.extend(slices[sid])
            care[tid] = to_int(everything)
            plane0[tid] = to_int(low) if low else 0
            plane1[tid] = to_int(high) if high else 0

        bus_claim = {claim: to_int(ix) for claim, ix in occ_bus.items()}
        bus_total: dict[int, int] = {}
        for (line, _driver), mask in bus_claim.items():
            # claims of one line are disjoint (one driver per pattern)
            bus_total[line] = bus_total.get(line, 0) + mask
        return cls(n, terminal_ids, care, plane0, plane1,
                   bus_total, bus_claim)

    def bit(self, index: int) -> int:
        """The mask bit owned by pattern ``index``."""
        return 1 << (self.size - 1 - index)

    def pattern_indices(self, mask: int) -> list[int]:
        """Decode ``mask`` into ascending original pattern indices."""
        top = self.size - 1
        indices = []
        while mask:
            rev = mask.bit_length() - 1
            indices.append(top - rev)
            mask -= 1 << rev
        return indices

    def symbol_mask(self, terminal: Terminal, symbol: str) -> int:
        """Mask of patterns assigning ``symbol`` to ``terminal``."""
        tid = self.terminal_ids.get(terminal)
        if tid is None:
            return 0
        sid = SYMBOL_IDS[symbol]
        plane0, plane1, care = self.plane0[tid], self.plane1[tid], self.care[tid]
        mask = plane0 if sid & 1 else care - plane0
        return mask & plane1 if sid & 2 else mask - (mask & plane1)

    def conflict_masks(self) -> tuple[dict[int, int],
                                      dict[tuple[int, int], int]]:
        """Build the conflict index from the planes.

        Returns ``(symbol_conflicts, bus_conflicts)``: for every present
        ``tid * 4 + symbol_id`` key, the mask of patterns caring that
        terminal with a *different* symbol; for every ``(line, driver)``
        claim, the mask of patterns claiming the line from another core.
        Masks may be zero (no conflict); keys never seen in the input are
        absent.
        """
        conflicts: dict[int, int] = {}
        for tid, total in enumerate(self.care):
            plane0 = self.plane0[tid]
            plane1 = self.plane1[tid]
            both = plane0 & plane1
            either = plane0 | plane1
            base = tid * 4
            # per-symbol occupancy masks are disjoint slices of `total`,
            # so each conflict mask is an exact subtraction
            for sid, mask in enumerate(
                (total - either, plane0 - both, plane1 - both, both)
            ):
                if mask:
                    conflicts[base + sid] = total - mask
        bus_conflicts = {
            claim: self.bus_total[claim[0]] - mask
            for claim, mask in self.bus_claim.items()
        }
        return conflicts, bus_conflicts


def _greedy_conflict_index(patterns: list[SIPattern]):
    """Conflict index plus per-pattern flat key lists for the greedy scan.

    The greedy kernel only consumes conflict masks, never the symbol
    planes, so this skips :class:`PackedPatternSet`'s plane composition:
    each present ``(terminal, symbol)`` occurrence list packs straight
    into its occupancy mask, the per-terminal care total is the exact sum
    of its (disjoint) symbol slices, and ``conflict = total - mask``.

    The same pass records each pattern's cares as a flat list of int keys
    (``tid * 4 + symbol_id``), so the hot scan needs no tuple hashing at
    all: terminal-level dedup is ``key >> 2`` against a set of ints, and
    the conflict lookup is one int-keyed dict probe.

    Returns ``(care_keys, conflicts, bus_conflicts)``.
    """
    n = len(patterns)
    terminal_ids: dict[Terminal, int] = {}
    occ: defaultdict[int, list[int]] = defaultdict(list)
    occ_bus: defaultdict[tuple[int, int], list[int]] = defaultdict(list)
    care_keys: list[list[int]] = []
    symbol_ids = SYMBOL_IDS
    tid_get = terminal_ids.get
    rev = n
    for pattern in patterns:
        rev -= 1
        keys = []
        append = keys.append
        for terminal, symbol in pattern.cares.items():
            tid = tid_get(terminal)
            if tid is None:
                tid = terminal_ids[terminal] = len(terminal_ids)
            key = tid * 4 + symbol_ids[symbol]
            occ[key].append(rev)
            append(key)
        care_keys.append(keys)
        for claim in pattern.bus_claims.items():
            occ_bus[claim].append(rev)

    scratch = bytearray((n >> 3) + 1)

    def to_int(indices: list[int]) -> int:
        for i in indices:
            scratch[i >> 3] |= 1 << (i & 7)
        value = int.from_bytes(scratch, "little")
        for i in indices:
            scratch[i >> 3] = 0
        return value

    masks = {key: to_int(indices) for key, indices in occ.items()}
    totals = [0] * len(terminal_ids)
    for key, mask in masks.items():
        # a terminal's per-symbol occupancy masks are disjoint, so plain
        # addition composes the exact care total
        totals[key >> 2] += mask
    conflicts = {key: totals[key >> 2] - mask for key, mask in masks.items()}

    bus_claim = {claim: to_int(indices) for claim, indices in occ_bus.items()}
    bus_total: dict[int, int] = {}
    for (line, _driver), mask in bus_claim.items():
        # claims of one line are disjoint (one driver per pattern)
        bus_total[line] = bus_total.get(line, 0) + mask
    bus_conflicts = {
        claim: bus_total[claim[0]] - mask
        for claim, mask in bus_claim.items()
    }
    return care_keys, conflicts, bus_conflicts


def greedy_compact_bitset(patterns: list[SIPattern], *, verify: bool = False):
    """Greedy clique-cover compaction on the packed encoding.

    Bit-identical to :func:`repro.compaction.vertical.greedy_compact` with
    ``backend="reference"``: in each cycle the lowest remaining pattern
    seeds a merge, then absorbs every later pattern compatible with the
    merge so far, in index order.  The kernel keeps an ``eligible`` mask of
    candidates compatible with the running merge — seeded from ``avail``
    and pruned by the conflict masks of every symbol/claim the merge
    acquires — so conflicting candidates are never visited at all.
    Equivalence holds because a pattern incompatible with the merge stays
    incompatible for the rest of the cycle (merges only gain cares) and
    the top-bit extraction yields exactly the reference's visit order.

    Args:
        patterns: The patterns to compact.
        verify: Re-run the reference implementation and raise
            :class:`KernelMismatchError` on any difference (debugging aid;
            costs the full reference runtime).

    Emits ``compaction.bitset.candidates_pruned`` (candidate visits the
    reference would have made that the kernel skipped) and
    ``compaction.bitset.words_compared`` (approximate 64-bit words touched
    by conflict-mask operations).
    """
    from repro.compaction import _cscan
    from repro.compaction.vertical import CompactionResult

    n = len(patterns)
    scanned = _cscan.greedy_scan(patterns)
    if scanned is not None:
        incr("compaction.bitset.cscan")
        member_lists, pruned, words = scanned
    else:
        member_lists, pruned, words = _greedy_scan_python(patterns)
    incr("compaction.bitset.candidates_pruned", pruned)
    incr("compaction.bitset.words_compared", words)

    compacted: list[SIPattern] = []
    members: list[tuple[int, ...]] = []
    for absorbed in member_lists:
        # rebuild the merged dicts at C speed: update() keeps first-seen
        # key order and compatible merges only re-store equal values, so
        # this reproduces the reference's incremental dicts exactly
        seed = patterns[absorbed[0]]
        cares = dict(seed.cares)
        bus_claims = dict(seed.bus_claims)
        for index in absorbed[1:]:
            follower = patterns[index]
            cares.update(follower.cares)
            bus_claims.update(follower.bus_claims)
        compacted.append(SIPattern(cares=cares, bus_claims=bus_claims))
        members.append(tuple(absorbed))
    result = CompactionResult(
        compacted=tuple(compacted),
        members=tuple(members),
        original_count=n,
    )
    if verify:
        _check_against_reference("greedy", patterns, result)
    return result


def _greedy_scan_python(patterns: list[SIPattern]):
    """Pure-Python greedy scan on big-int bitsets.

    The fallback engine when :mod:`repro.compaction._cscan` has no C
    compiler to work with — same cycles, same counters (``words`` is an
    approximation in both engines and counts slightly differently).
    Returns ``(member_lists, pruned, words)``.
    """
    n = len(patterns)
    care_keys, conflicts, bus_conflicts = _greedy_conflict_index(patterns)
    top = n - 1
    member_lists: list[list[int]] = []
    scratch = bytearray((n >> 3) + 1)
    avail = (1 << n) - 1 if n else 0
    pruned = 0
    words = 0
    while avail:
        high = avail.bit_length() - 1
        start = top - high
        avail -= 1 << high
        candidates = avail.bit_count()
        merged_tids = set()
        tid_add = merged_tids.add
        merged_lines = set()
        line_add = merged_lines.add
        absorbed = [start]
        eligible = avail
        newconf = 0
        for key in care_keys[start]:
            tid_add(key >> 2)
            conflict = conflicts[key]
            if conflict:
                # first mask binds by reference: `0 | mask` would copy
                # the full width for nothing
                if newconf:
                    newconf |= conflict
                else:
                    newconf = conflict
        for claim in patterns[start].bus_claims.items():
            line_add(claim[0])
            conflict = bus_conflicts[claim]
            if conflict:
                if newconf:
                    newconf |= conflict
                else:
                    newconf = conflict
        if newconf:
            words += (newconf.bit_length() >> 6) + 1
            hit = eligible & newconf
            if hit:
                eligible -= hit
        while eligible:
            rev = eligible.bit_length() - 1
            bit = 1 << rev
            # absorbed bits are batch-cleared from `avail` at cycle end;
            # the inner loop only reads `eligible`
            scratch[rev >> 3] |= 1 << (rev & 7)
            index = top - rev
            absorbed.append(index)
            newconf = 0
            for key in care_keys[index]:
                tid = key >> 2
                if tid not in merged_tids:
                    tid_add(tid)
                    conflict = conflicts[key]
                    if conflict:
                        if newconf:
                            newconf |= conflict
                        else:
                            newconf = conflict
            for claim in patterns[index].bus_claims.items():
                if claim[0] not in merged_lines:
                    line_add(claim[0])
                    conflict = bus_conflicts[claim]
                    if conflict:
                        if newconf:
                            newconf |= conflict
                        else:
                            newconf = conflict
            if newconf:
                words += (newconf.bit_length() >> 6) + 1
                # a pattern never conflicts with its own cares, so `bit`
                # is disjoint from the hit set: clear both in one pass
                eligible -= (eligible & newconf) + bit
            else:
                eligible -= bit
        if len(absorbed) > 1:
            avail -= int.from_bytes(scratch, "little")
            for index in absorbed[1:]:
                scratch[(top - index) >> 3] = 0
        pruned += candidates - (len(absorbed) - 1)
        member_lists.append(absorbed)
    return member_lists, pruned, words


def color_compact_bitset(patterns: list[SIPattern], *, verify: bool = False):
    """Welsh–Powell conflict-graph coloring on the packed encoding.

    Bit-identical to :func:`repro.compaction.vertical.color_compact` with
    ``backend="reference"``.  Instead of the reference's O(n²) pairwise
    compatibility matrix, each vertex gets a conflict mask (OR of the
    conflict masks of its cares and claims — never including itself), its
    degree is the mask's popcount, and a color is forbidden exactly when
    the vertex mask intersects the color class's member mask.  The
    degree sort is stable, so tie order matches the reference.

    Stores one n-bit mask per pattern (O(n²/64) words); meant for the
    moderate pattern counts coloring is used at.
    """
    from repro.compaction.vertical import CompactionResult

    n = len(patterns)
    packed = PackedPatternSet.from_patterns(patterns)
    conflicts, bus_conflicts = packed.conflict_masks()
    base_of = {t: tid * 4 for t, tid in packed.terminal_ids.items()}
    symbol_ids = SYMBOL_IDS
    top = n - 1
    words = 0

    vertex_masks: list[int] = []
    for pattern in patterns:
        mask = 0
        for terminal, symbol in pattern.cares.items():
            conflict = conflicts[base_of[terminal] + symbol_ids[symbol]]
            if conflict:
                words += (conflict.bit_length() >> 6) + 1
                mask |= conflict
        for claim in pattern.bus_claims.items():
            conflict = bus_conflicts[claim]
            if conflict:
                words += (conflict.bit_length() >> 6) + 1
                mask |= conflict
        vertex_masks.append(mask)

    order = sorted(range(n), key=lambda v: -vertex_masks[v].bit_count())
    class_masks: list[int] = []
    classes: list[list[int]] = []
    merged_cares: list[dict] = []
    merged_bus: list[dict] = []
    for vertex in order:
        vertex_mask = vertex_masks[vertex]
        chosen = -1
        for color, class_mask in enumerate(class_masks):
            if class_mask & vertex_mask:
                words += (class_mask.bit_length() >> 6) + 1
                continue
            chosen = color
            break
        if chosen == -1:
            chosen = len(class_masks)
            class_masks.append(0)
            classes.append([])
            merged_cares.append({})
            merged_bus.append({})
        class_masks[chosen] |= 1 << (top - vertex)
        classes[chosen].append(vertex)
        merged_cares[chosen].update(patterns[vertex].cares)
        merged_bus[chosen].update(patterns[vertex].bus_claims)

    incr("compaction.bitset.words_compared", words)
    result = CompactionResult(
        compacted=tuple(
            SIPattern(cares=merged_cares[c], bus_claims=merged_bus[c])
            for c in range(len(classes))
        ),
        members=tuple(tuple(sorted(members)) for members in classes),
        original_count=n,
    )
    if verify:
        _check_against_reference("color", patterns, result)
    return result


def _check_against_reference(algorithm: str, patterns, result) -> None:
    from repro.compaction import vertical

    reference_impl = {
        "greedy": vertical._greedy_reference,
        "color": vertical._color_reference,
    }[algorithm]
    expected = reference_impl(patterns)
    if result != expected:
        raise KernelMismatchError(
            f"bitset {algorithm} kernel diverged from the reference on "
            f"{len(patterns)} patterns: {result.compacted_count} vs "
            f"{expected.compacted_count} compacted"
        )
