"""Optional C scan engine for the greedy bitset kernel.

:func:`repro.compaction.kernel.greedy_compact_bitset` spends its time in
two bit-parallel inner loops: building the conflict index and pruning the
candidate bitset as the merge acquires cares.  Both are pure word-level
AND/OR sweeps, so this module carries a small, dependency-free C
translation of the scan (same algorithm, same visit order, same dedup
rules — see the kernel docstring for the equivalence argument) that is
compiled on demand with whatever ``cc``/``gcc``/``clang`` the host
provides and loaded through :mod:`ctypes`.

The engine is strictly optional: if no compiler is present, compilation
fails, the smoke check fails, or ``REPRO_COMPACTION_CSCAN=0`` is set, the
kernel silently falls back to its pure-Python big-int scan.  Compiled
objects are cached in the system temp directory keyed by a hash of the C
source, so the (sub-second) compile happens once per source revision per
machine, not once per process.

The C side works on flattened integer streams only — pattern cares as
dense ``(terminal, symbol)`` ids in CSR layout, bus claims likewise — and
returns the merge cycles as a flat member array plus cycle offsets.  All
symbol/terminal semantics stay in Python; the C code never sees a pattern
object.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array

__all__ = ["available", "greedy_scan", "warm"]

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Greedy clique-cover scan over packed bitsets.
 *
 * Pattern i owns bit i.  Per cycle the lowest remaining pattern seeds the
 * merge, then candidates are absorbed in ascending index order; whenever
 * the merge acquires a care (terminal, symbol) or bus claim it has not
 * seen this cycle, that key's conflict mask is cleared out of the
 * eligible set.  Conflict masks are derived in place from the occupancy
 * masks: conflict = (OR of the terminal's symbol slices) & ~own slice.
 *
 * Masks are sparse, so build passes skip zero words: untouched words
 * stay on the OS zero page and the scan reads them at cache speed.
 */
int64_t repro_greedy_scan(
    int64_t n,
    const int32_t *care_flat, const int64_t *care_off,
    const int32_t *tid_of, int64_t n_care_ids, int64_t n_tids,
    const int32_t *bus_flat, const int64_t *bus_off,
    const int32_t *line_of, int64_t n_bus_ids, int64_t n_lines,
    int32_t *members_out, int64_t *cycle_off_out, int64_t *stats_out)
{
    stats_out[0] = 0;
    stats_out[1] = 0;
    cycle_off_out[0] = 0;
    if (n == 0)
        return 0;
    const int64_t W = (n + 63) >> 6;
    uint64_t *masks = calloc((size_t)(n_care_ids + n_bus_ids) * W, 8);
    uint64_t *totals = calloc((size_t)(n_tids + n_lines) * W, 8);
    uint64_t *avail = malloc((size_t)W * 8);
    uint64_t *eligible = malloc((size_t)W * 8);
    uint32_t *epochs = calloc((size_t)(n_tids + n_lines) + 1, 4);
    if (!masks || !totals || !avail || !eligible || !epochs) {
        free(masks); free(totals); free(avail); free(eligible); free(epochs);
        return -1;
    }
    uint64_t *bus_masks = masks + (size_t)n_care_ids * W;
    uint64_t *line_totals = totals + (size_t)n_tids * W;
    uint32_t *tid_epoch = epochs;
    uint32_t *line_epoch = epochs + n_tids;

    /* occupancy fill from the CSR streams */
    for (int64_t i = 0; i < n; i++) {
        const uint64_t word = 1ULL << (i & 63);
        const int64_t w = i >> 6;
        for (int64_t k = care_off[i]; k < care_off[i + 1]; k++)
            masks[(size_t)care_flat[k] * W + w] |= word;
        for (int64_t k = bus_off[i]; k < bus_off[i + 1]; k++)
            bus_masks[(size_t)bus_flat[k] * W + w] |= word;
    }
    /* per-terminal / per-line totals (symbol slices are disjoint) */
    for (int64_t c = 0; c < n_care_ids; c++) {
        uint64_t *t = totals + (size_t)tid_of[c] * W;
        const uint64_t *m = masks + (size_t)c * W;
        for (int64_t w = 0; w < W; w++) {
            const uint64_t mw = m[w];
            if (mw) t[w] |= mw;
        }
    }
    for (int64_t b = 0; b < n_bus_ids; b++) {
        uint64_t *t = line_totals + (size_t)line_of[b] * W;
        const uint64_t *m = bus_masks + (size_t)b * W;
        for (int64_t w = 0; w < W; w++) {
            const uint64_t mw = m[w];
            if (mw) t[w] |= mw;
        }
    }
    /* occupancy -> conflict masks, in place (mask is a subset of total) */
    for (int64_t c = 0; c < n_care_ids; c++) {
        const uint64_t *t = totals + (size_t)tid_of[c] * W;
        uint64_t *m = masks + (size_t)c * W;
        for (int64_t w = 0; w < W; w++) {
            const uint64_t tw = t[w];
            if (tw) m[w] = tw & ~m[w];
        }
    }
    for (int64_t b = 0; b < n_bus_ids; b++) {
        const uint64_t *t = line_totals + (size_t)line_of[b] * W;
        uint64_t *m = bus_masks + (size_t)b * W;
        for (int64_t w = 0; w < W; w++) {
            const uint64_t tw = t[w];
            if (tw) m[w] = tw & ~m[w];
        }
    }

    memset(avail, 0xff, (size_t)W * 8);
    if (n & 63)
        avail[W - 1] = (1ULL << (n & 63)) - 1;

    int64_t pruned = 0, words = 0, m_count = 0, cycles = 0;
    int64_t cursor = 0;  /* lowest possibly-nonzero avail word */
    int64_t live = n;    /* popcount of avail */
    uint32_t epoch = 0;
    while (live) {
        while (!avail[cursor]) cursor++;
        const int64_t seed =
            (cursor << 6) + (int64_t)__builtin_ctzll(avail[cursor]);
        avail[cursor] &= avail[cursor] - 1;  /* clear lowest set bit */
        live--;
        const int64_t candidates = live;
        int64_t absorbed = 1;
        members_out[m_count++] = (int32_t)seed;
        epoch++;
        memset(eligible, 0, (size_t)cursor * 8);
        memcpy(eligible + cursor, avail + cursor, (size_t)(W - cursor) * 8);
        for (int64_t k = care_off[seed]; k < care_off[seed + 1]; k++) {
            const int32_t cid = care_flat[k];
            const int32_t tid = tid_of[cid];
            if (tid_epoch[tid] != epoch) {
                tid_epoch[tid] = epoch;
                const uint64_t *c = masks + (size_t)cid * W;
                for (int64_t w = cursor; w < W; w++) eligible[w] &= ~c[w];
                words += W - cursor;
            }
        }
        for (int64_t k = bus_off[seed]; k < bus_off[seed + 1]; k++) {
            const int32_t bid = bus_flat[k];
            const int32_t line = line_of[bid];
            if (line_epoch[line] != epoch) {
                line_epoch[line] = epoch;
                const uint64_t *c = bus_masks + (size_t)bid * W;
                for (int64_t w = cursor; w < W; w++) eligible[w] &= ~c[w];
                words += W - cursor;
            }
        }
        for (int64_t jw = cursor; jw < W; ) {
            const uint64_t wval = eligible[jw];
            if (!wval) { jw++; continue; }
            const int64_t j = (jw << 6) + (int64_t)__builtin_ctzll(wval);
            eligible[jw] = wval & (wval - 1);
            avail[jw] &= ~(1ULL << (j & 63));
            live--;
            absorbed++;
            members_out[m_count++] = (int32_t)j;
            for (int64_t k = care_off[j]; k < care_off[j + 1]; k++) {
                const int32_t cid = care_flat[k];
                const int32_t tid = tid_of[cid];
                if (tid_epoch[tid] != epoch) {
                    tid_epoch[tid] = epoch;
                    const uint64_t *c = masks + (size_t)cid * W;
                    /* bits at or below j are already decided: prune from
                     * the current word up only */
                    for (int64_t w = jw; w < W; w++) eligible[w] &= ~c[w];
                    words += W - jw;
                }
            }
            for (int64_t k = bus_off[j]; k < bus_off[j + 1]; k++) {
                const int32_t bid = bus_flat[k];
                const int32_t line = line_of[bid];
                if (line_epoch[line] != epoch) {
                    line_epoch[line] = epoch;
                    const uint64_t *c = bus_masks + (size_t)bid * W;
                    for (int64_t w = jw; w < W; w++) eligible[w] &= ~c[w];
                    words += W - jw;
                }
            }
        }
        pruned += candidates - (absorbed - 1);
        cycle_off_out[++cycles] = m_count;
    }
    free(masks); free(totals); free(avail); free(eligible); free(epochs);
    stats_out[0] = pruned;
    stats_out[1] = words;
    return cycles;
}
"""

_DISABLE_VALUES = ("0", "off", "no", "false")

#: Cached load result: ``None`` = not attempted, ``False`` = unavailable.
_engine = None


def _compile() -> str | None:
    """Compile the C source into a cached shared object; return its path."""
    compiler = (shutil.which("cc") or shutil.which("gcc")
                or shutil.which("clang"))
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(tempfile.gettempdir(),
                           f"repro-cscan-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        with tempfile.TemporaryDirectory() as workdir:
            source = os.path.join(workdir, "cscan.c")
            with open(source, "w", encoding="ascii") as handle:
                handle.write(_SOURCE)
            built = os.path.join(workdir, "cscan.so")
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", built, source],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(built, so_path)
    except (OSError, subprocess.SubprocessError):
        return None
    return so_path


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.repro_greedy_scan
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64,                    # n
        ctypes.c_void_p, ctypes.c_void_p,  # care_flat, care_off
        ctypes.c_void_p,                   # tid_of
        ctypes.c_int64, ctypes.c_int64,    # n_care_ids, n_tids
        ctypes.c_void_p, ctypes.c_void_p,  # bus_flat, bus_off
        ctypes.c_void_p,                   # line_of
        ctypes.c_int64, ctypes.c_int64,    # n_bus_ids, n_lines
        ctypes.c_void_p, ctypes.c_void_p,  # members_out, cycle_off_out
        ctypes.c_void_p,                   # stats_out
    ]
    return fn


def _addr(buffer: array) -> int:
    return buffer.buffer_info()[0]


def _run(fn, n, care_flat, care_off, tid_of, n_care_ids, n_tids,
         bus_flat, bus_off, line_of, n_bus_ids, n_lines):
    members = array("i", bytes(4 * n))
    cycle_off = array("q", bytes(8 * (n + 1)))
    stats = array("q", (0, 0))
    cycles = fn(
        n, _addr(care_flat), _addr(care_off), _addr(tid_of),
        n_care_ids, n_tids,
        _addr(bus_flat), _addr(bus_off), _addr(line_of),
        n_bus_ids, n_lines,
        _addr(members), _addr(cycle_off), _addr(stats),
    )
    if cycles < 0:
        return None
    member_lists = [
        list(members[cycle_off[c]:cycle_off[c + 1]]) for c in range(cycles)
    ]
    return member_lists, stats[0], stats[1]


def _smoke(fn) -> bool:
    """One hand-rolled call guarding against ABI/layout mishaps.

    Three patterns on one terminal: 0 and 1 assign different symbols
    (mutual conflict), 2 assigns nothing.  The greedy scan must merge
    {0, 2} and leave {1}, pruning pattern 1 from cycle 0.
    """
    out = _run(
        fn, 3,
        array("i", (0, 1)), array("q", (0, 1, 2, 2)),   # care CSR
        array("i", (0, 0)), 2, 1,                        # tid_of
        array("i"), array("q", (0, 0, 0, 0)),            # bus CSR (empty)
        array("i"), 0, 0,
    )
    return out == ([[0, 2], [1]], 1, 2)


def available() -> bool:
    """Whether the C scan engine compiled, loaded, and passed its smoke."""
    global _engine
    if _engine is None:
        _engine = False
        toggle = os.environ.get("REPRO_COMPACTION_CSCAN", "").strip().lower()
        if toggle not in _DISABLE_VALUES and not _load_fault_injected():
            so_path = _compile()
            if so_path is not None:
                try:
                    fn = _bind(so_path)
                except OSError:
                    fn = None
                if fn is not None and _smoke(fn):
                    _engine = fn
            if _engine is False:
                # The engine was wanted but would not resolve on this
                # host (no compiler, bad .so, failed smoke): disclose
                # the pure-Python degradation once per process.
                from repro.runtime.instrumentation import incr

                incr("recovery.degraded.cscan")
    return _engine is not False


def warm() -> bool:
    """Resolve the engine now, instead of lazily inside the first scan.

    The resolved handle is cached for the life of the process (module
    global), so a persistent sweep worker that calls this during warm-up
    pays the compile/load/smoke cost exactly once, outside any cell's
    wall clock — later cells reuse the handle with a dict lookup.
    """
    return available()


def _load_fault_injected() -> bool:
    """``cscan.load`` injection site: a due ``cscan-compile-fail`` fault
    makes the engine unavailable, exactly like a host with no compiler;
    the kernel then takes its pure-Python fallback."""
    from repro.resilience.faults import check_fault
    from repro.runtime.instrumentation import incr

    if check_fault("cscan.load") is None:
        return False
    incr("recovery.cscan_fallback")
    return True


def greedy_scan(patterns):
    """Run the greedy scan in C; ``None`` when the engine is unavailable.

    Returns ``(member_lists, pruned, words)``: the merge cycles as lists
    of original pattern indices in absorption order, plus the two
    instrumentation totals (candidates pruned, 64-bit words touched).
    """
    if not available():
        return None
    n = len(patterns)
    if n == 0:
        return [], 0, 0
    from repro.compaction.kernel import SYMBOL_IDS

    symbol_ids = SYMBOL_IDS
    terminal_ids: dict = {}
    care_ids: dict[int, int] = {}
    bus_ids: dict[tuple[int, int], int] = {}
    line_ids: dict[int, int] = {}
    tid_get = terminal_ids.get
    cid_get = care_ids.get
    bid_get = bus_ids.get
    care_flat = array("i")
    care_off = array("q", (0,))
    bus_flat = array("i")
    bus_off = array("q", (0,))
    tid_of = array("i")
    line_of = array("i")
    care_append = care_flat.append
    bus_append = bus_flat.append
    for pattern in patterns:
        for terminal, symbol in pattern.cares.items():
            tid = tid_get(terminal)
            if tid is None:
                tid = terminal_ids[terminal] = len(terminal_ids)
            key = tid * 4 + symbol_ids[symbol]
            cid = cid_get(key)
            if cid is None:
                cid = care_ids[key] = len(care_ids)
                tid_of.append(tid)
            care_append(cid)
        care_off.append(len(care_flat))
        for claim in pattern.bus_claims.items():
            bid = bid_get(claim)
            if bid is None:
                bid = bus_ids[claim] = len(bus_ids)
                line = claim[0]
                lid = line_ids.get(line)
                if lid is None:
                    lid = line_ids[line] = len(line_ids)
                line_of.append(lid)
            bus_append(bid)
        bus_off.append(len(bus_flat))
    return _run(
        _engine, n,
        care_flat, care_off, tid_of, len(care_ids), len(terminal_ids),
        bus_flat, bus_off, line_of, len(bus_ids), len(line_ids),
    )
