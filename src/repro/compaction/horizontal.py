"""Horizontal SI test compaction: pattern-length reduction via core grouping.

Following Section 3 of the paper, cores are partitioned into ``parts``
groups by hypergraph partitioning (Fig. 2): vertices are cores weighted by
their wrapper-output-cell counts, hyperedges are the distinct care-core sets
of the SI patterns weighted by how many patterns share that care set.
Patterns whose care cores all fall into one part only need to shift that
part's WOCs; the rest form a *residual* group whose patterns keep the full
length (all cores).  Vertical compaction then runs inside every group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compaction.groups import SITestGroup
from repro.compaction.vertical import CompactionResult, greedy_compact
from repro.hypergraph.hypergraph import build_hypergraph
from repro.hypergraph.multilevel import partition
from repro.runtime.executor import run_cells
from repro.runtime.instrumentation import (
    absorb_snapshot,
    call_with_instrumentation,
    get_instrumentation,
    incr,
)
from repro.sitest.patterns import SIPattern
from repro.soc.model import Soc


@dataclass(frozen=True)
class GroupingResult:
    """Outcome of two-dimensional compaction.

    Attributes:
        groups: The SI test groups (part groups first, residual last); empty
            groups are dropped.
        part_of_core: Part index per core id (cores without output cells
            are absent).
        cut_patterns: Number of original patterns that landed in the
            residual group.
        compactions: Per-group vertical compaction details, parallel to
            ``groups``.
    """

    groups: tuple[SITestGroup, ...]
    part_of_core: dict[int, int]
    cut_patterns: int
    compactions: tuple[CompactionResult, ...]

    @property
    def total_compacted_patterns(self) -> int:
        return sum(group.patterns for group in self.groups)


def _vertical_cell(spec):
    """Sweep cell: vertical compaction of one group's pattern bucket."""
    bucket, backend = spec
    return call_with_instrumentation(greedy_compact, bucket, backend=backend)


def build_si_test_groups(
    soc: Soc,
    patterns: list[SIPattern],
    parts: int,
    epsilon: float = 0.10,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
) -> GroupingResult:
    """Run two-dimensional compaction: partition cores, split the pattern
    set, and vertically compact each group.

    Args:
        soc: The SOC the patterns belong to.
        patterns: Uncompacted SI patterns.
        parts: Number of core groups (``i`` in the paper's ``T_g_i``);
            ``parts=1`` degenerates to one-dimensional (vertical only)
            compaction over all cores.
        epsilon: Partitioner balance tolerance.
        seed: Partitioner seed.
        backend: Vertical compaction backend, forwarded to
            :func:`repro.compaction.vertical.greedy_compact`.
        jobs: Worker processes for the per-group compactions; groups are
            independent, so fanning out never changes the result.

    Raises:
        ValueError: If ``parts`` is not positive or exceeds the number of
            cores with output cells.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    with get_instrumentation().timeit("compaction.build_si_test_groups"):
        return _build_si_test_groups(soc, patterns, parts, epsilon, seed,
                                     backend, jobs)


def _build_si_test_groups(
    soc: Soc,
    patterns: list[SIPattern],
    parts: int,
    epsilon: float,
    seed: int,
    backend: str,
    jobs: int,
) -> GroupingResult:
    host_ids = [core.core_id for core in soc if core.woc_count > 0]
    if parts > len(host_ids):
        raise ValueError(
            f"cannot form {parts} core groups from {len(host_ids)} cores "
            "with output cells"
        )

    if parts == 1:
        part_of_core = {core_id: 0 for core_id in host_ids}
    else:
        part_of_core = _partition_cores(soc, patterns, host_ids, parts,
                                        epsilon, seed)

    # Route each pattern to its part, or to the residual bucket.
    buckets: list[list[SIPattern]] = [[] for _ in range(parts)]
    residual: list[SIPattern] = []
    for pattern in patterns:
        pattern_parts = {part_of_core[core_id] for core_id in pattern.care_cores}
        if len(pattern_parts) == 1:
            buckets[next(iter(pattern_parts))].append(pattern)
        else:
            residual.append(pattern)

    # One cell per non-empty bucket (part groups in order, residual last);
    # groups are independent, so they fan out over worker processes.
    cells: list[tuple[list[SIPattern], frozenset[int], bool]] = []
    for part in range(parts):
        bucket = buckets[part]
        if not bucket:
            continue
        cores = frozenset(
            core_id for core_id, assigned in part_of_core.items()
            if assigned == part
        )
        cells.append((bucket, cores, False))
    if residual:
        cells.append((residual, frozenset(host_ids), True))

    outcomes = run_cells(
        _vertical_cell,
        [(bucket, backend) for bucket, _cores, _is_residual in cells],
        jobs=jobs,
    )

    groups: list[SITestGroup] = []
    compactions: list[CompactionResult] = []
    for (bucket, cores, is_residual), (compaction, snapshot) in zip(
        cells, outcomes
    ):
        absorb_snapshot(snapshot)
        groups.append(
            SITestGroup(
                group_id=len(groups),
                cores=cores,
                patterns=compaction.compacted_count,
                original_patterns=len(bucket),
                is_residual=is_residual,
            )
        )
        compactions.append(compaction)

    incr("compaction.groupings")
    incr("compaction.patterns_in", len(patterns))
    incr("compaction.patterns_out",
         sum(group.patterns for group in groups))
    incr("compaction.residual_patterns", len(residual))
    return GroupingResult(
        groups=tuple(groups),
        part_of_core=part_of_core,
        cut_patterns=len(residual),
        compactions=tuple(compactions),
    )


def _partition_cores(
    soc: Soc,
    patterns: list[SIPattern],
    host_ids: list[int],
    parts: int,
    epsilon: float,
    seed: int,
) -> dict[int, int]:
    """Partition the cores with output cells into ``parts`` balanced groups
    minimizing the weight of cut care-core sets (Fig. 2)."""
    index_of = {core_id: index for index, core_id in enumerate(host_ids)}
    vertex_weights = [soc.core_by_id(core_id).woc_count for core_id in host_ids]

    weighted_edges: dict[frozenset[int], int] = {}
    for pattern in patterns:
        care = frozenset(index_of[core_id] for core_id in pattern.care_cores)
        if len(care) >= 2:
            weighted_edges[care] = weighted_edges.get(care, 0) + 1

    graph = build_hypergraph(vertex_weights, weighted_edges)
    result = partition(graph, parts, epsilon=epsilon, seed=seed)
    return {
        core_id: result.assignment[index_of[core_id]] for core_id in host_ids
    }
