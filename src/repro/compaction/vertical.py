"""Vertical SI test compaction: pattern-count reduction.

Finding the minimum number of merged patterns is the clique-cover problem on
the compatibility graph (NP-complete); equivalently, graph coloring of the
*conflict* graph, since compatibility is pairwise-sufficient for SI symbol
vectors.  Two algorithms are provided:

* :func:`greedy_compact` — the paper's heuristic: take the first uncompacted
  pattern and merge every following compatible pattern into it, repeat.
  Linear-ish in practice and the one used by the experiments.
* :func:`color_compact` — a Welsh–Powell-style greedy coloring of the
  conflict graph, the classical approximation the paper compares against.
  Builds the O(n²) conflict graph, so intended for moderate pattern counts.

Both take a ``backend`` argument: ``"reference"`` runs the plain dict-walk
implementation in this module, ``"bitset"`` the packed big-int kernel from
:mod:`repro.compaction.kernel`, and ``"auto"`` (the default) picks the
kernel at or above its measured break-even pattern count.  The two backends
return bit-identical :class:`CompactionResult` objects; the choice only
affects speed, and is recorded in the ``compaction.backend.*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.instrumentation import incr
from repro.sitest.patterns import SIPattern

BACKENDS = ("auto", "reference", "bitset")


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of a vertical compaction run.

    Attributes:
        compacted: The merged patterns.
        members: For each merged pattern, indices (into the input list) of
            the original patterns it absorbed.
        original_count: Number of input patterns.
    """

    compacted: tuple[SIPattern, ...]
    members: tuple[tuple[int, ...], ...]
    original_count: int

    @property
    def compacted_count(self) -> int:
        return len(self.compacted)

    @property
    def ratio(self) -> float:
        """Compaction ratio ``original / compacted`` (1.0 for empty input)."""
        if not self.compacted:
            return 1.0
        return self.original_count / len(self.compacted)


def _resolve_backend(backend: str, count: int, threshold: int) -> str:
    """Map a ``backend`` argument to ``"reference"`` or ``"bitset"``."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown compaction backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "bitset" if count >= threshold else "reference"
    return backend


def greedy_compact(
    patterns: list[SIPattern], backend: str = "auto"
) -> CompactionResult:
    """Compact ``patterns`` with the paper's greedy clique-cover heuristic.

    In each cycle the first uncompacted pattern seeds a merged pattern,
    which then absorbs every following pattern compatible with the merge
    accumulated so far.  Compatibility respects both symbol intersection
    and the shared-bus-line driver rule.

    Args:
        patterns: The patterns to compact.
        backend: ``"reference"``, ``"bitset"``, or ``"auto"`` (bitset at or
            above :data:`repro.compaction.kernel.GREEDY_AUTO_THRESHOLD`
            patterns).  Both backends produce identical results.
    """
    from repro.compaction import kernel

    chosen = _resolve_backend(backend, len(patterns),
                              kernel.GREEDY_AUTO_THRESHOLD)
    incr(f"compaction.backend.{chosen}")
    if chosen == "bitset":
        result = kernel.greedy_compact_bitset(patterns)
    else:
        result = _greedy_reference(patterns)
    incr("compaction.greedy_runs")
    incr("compaction.patterns_merged_away",
         result.original_count - result.compacted_count)
    return result


def _greedy_reference(patterns: list[SIPattern]) -> CompactionResult:
    n = len(patterns)
    used = bytearray(n)
    compacted: list[SIPattern] = []
    members: list[tuple[int, ...]] = []

    for start in range(n):
        if used[start]:
            continue
        used[start] = 1
        seed = patterns[start]
        cares = dict(seed.cares)
        bus_claims = dict(seed.bus_claims)
        absorbed = [start]
        cares_get = cares.get
        bus_get = bus_claims.get
        for candidate_index in range(start + 1, n):
            if used[candidate_index]:
                continue
            candidate = patterns[candidate_index]
            compatible = True
            for terminal, symbol in candidate.cares.items():
                existing = cares_get(terminal)
                if existing is not None and existing != symbol:
                    compatible = False
                    break
            if compatible and candidate.bus_claims:
                for line, driver in candidate.bus_claims.items():
                    existing = bus_get(line)
                    if existing is not None and existing != driver:
                        compatible = False
                        break
            if not compatible:
                continue
            used[candidate_index] = 1
            cares.update(candidate.cares)
            bus_claims.update(candidate.bus_claims)
            absorbed.append(candidate_index)
        compacted.append(SIPattern(cares=cares, bus_claims=bus_claims))
        members.append(tuple(absorbed))

    return CompactionResult(
        compacted=tuple(compacted),
        members=tuple(members),
        original_count=n,
    )


def color_compact(
    patterns: list[SIPattern], backend: str = "auto"
) -> CompactionResult:
    """Compact via greedy coloring of the conflict graph (Welsh–Powell).

    Vertices in non-increasing conflict-degree order each take the smallest
    color whose class they are compatible with; every color class becomes
    one merged pattern.  The reference backend builds the O(n²) pairwise
    conflict graph; the bitset backend derives per-vertex conflict masks
    from the packed conflict index and is the ``"auto"`` choice from
    :data:`repro.compaction.kernel.COLOR_AUTO_THRESHOLD` patterns up.
    """
    from repro.compaction import kernel

    chosen = _resolve_backend(backend, len(patterns),
                              kernel.COLOR_AUTO_THRESHOLD)
    incr(f"compaction.backend.{chosen}")
    if chosen == "bitset":
        result = kernel.color_compact_bitset(patterns)
    else:
        result = _color_reference(patterns)
    incr("compaction.color_runs")
    incr("compaction.patterns_merged_away",
         result.original_count - result.compacted_count)
    return result


def _color_reference(patterns: list[SIPattern]) -> CompactionResult:
    n = len(patterns)
    conflicts: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        pattern_i = patterns[i]
        for j in range(i + 1, n):
            if not pattern_i.is_compatible(patterns[j]):
                conflicts[i].append(j)
                conflicts[j].append(i)

    order = sorted(range(n), key=lambda v: -len(conflicts[v]))
    color_of = [-1] * n
    classes: list[list[int]] = []
    merged_cares: list[dict] = []
    merged_bus: list[dict] = []

    for vertex in order:
        forbidden = {color_of[u] for u in conflicts[vertex] if color_of[u] != -1}
        pattern = patterns[vertex]
        chosen = -1
        for color in range(len(classes)):
            if color in forbidden:
                continue
            # Conflict-graph coloring already guarantees pairwise
            # compatibility with every member of the class, which is
            # sufficient for a non-empty intersection.
            chosen = color
            break
        if chosen == -1:
            chosen = len(classes)
            classes.append([])
            merged_cares.append({})
            merged_bus.append({})
        color_of[vertex] = chosen
        classes[chosen].append(vertex)
        merged_cares[chosen].update(pattern.cares)
        merged_bus[chosen].update(pattern.bus_claims)

    compacted = tuple(
        SIPattern(cares=merged_cares[c], bus_claims=merged_bus[c])
        for c in range(len(classes))
    )
    return CompactionResult(
        compacted=compacted,
        members=tuple(tuple(sorted(members)) for members in classes),
        original_count=n,
    )
