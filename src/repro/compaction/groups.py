"""SI test groups: the unit handed to the test-architecture optimizer.

After two-dimensional compaction the SI test set is a small collection of
groups.  Each group ``s`` carries the set of cores whose wrapper output
cells its patterns shift (``C(s)`` in the paper's Fig. 4 data structure) and
its compacted pattern count (``pattern(s)``).  Patterns whose care cores
span several parts of the horizontal partition end up in the *residual*
group, which involves every core.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SITestGroup:
    """One group of compacted SI test patterns.

    Attributes:
        group_id: Stable index of the group within its grouping.
        cores: ``C(s)`` — ids of the cores whose WOCs the group's patterns
            are shifted through.
        patterns: ``pattern(s)`` — compacted pattern count.
        original_patterns: Pattern count before vertical compaction.
        is_residual: True for the group of patterns spanning multiple parts.
    """

    group_id: int
    cores: frozenset[int]
    patterns: int
    original_patterns: int = 0
    is_residual: bool = False

    def __post_init__(self) -> None:
        if self.patterns < 0:
            raise ValueError("pattern count must be non-negative")
        if self.patterns and not self.cores:
            raise ValueError("a non-empty SI test group must involve cores")

    @property
    def is_empty(self) -> bool:
        return self.patterns == 0
