"""Abort-on-fail core ordering within a TestRail (extension).

Production testers abort a die at the first failing core, so the order in
which a rail tests its cores changes the *expected* test time even though
it cannot change the worst case.  With per-core pass probabilities the
classical result applies: ordering cores by increasing
``time / (1 - pass_probability)`` ratio minimizes the expected session
length (exchange argument — identical to weighted shortest-job-first).

This module computes expected times under a yield model and produces the
optimal intra-rail order; the architecture itself is untouched (ordering
is free — it is just the test schedule within the rail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.model import Soc
from repro.tam.testrail import TestRail, TestRailArchitecture
from repro.wrapper.timing import core_test_time


@dataclass(frozen=True)
class YieldModel:
    """Per-core pass probabilities.

    Attributes:
        pass_probability: Mapping ``core_id -> P(core passes)``; absent
            cores use ``default``.
        default: Fallback pass probability.
    """

    pass_probability: dict[int, float] = field(default_factory=dict)
    default: float = 0.99

    def __post_init__(self) -> None:
        for core_id, probability in self.pass_probability.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"core {core_id}: pass probability {probability} "
                    "outside [0, 1]"
                )
        if not 0.0 <= self.default <= 1.0:
            raise ValueError("default pass probability outside [0, 1]")

    def of(self, core_id: int) -> float:
        return self.pass_probability.get(core_id, self.default)


def expected_rail_time(
    soc: Soc,
    rail: TestRail,
    order: tuple[int, ...],
    yields: YieldModel,
) -> float:
    """Expected abort-on-fail test time of ``rail`` under ``order``.

    The session runs core by core; it continues past a core only when the
    core passes.  ``E[T] = Σ_k T_k · Π_{j<k} p_j``.

    Raises:
        ValueError: If ``order`` is not a permutation of the rail's cores.
    """
    if tuple(sorted(order)) != rail.cores:
        raise ValueError("order must be a permutation of the rail's cores")
    expected = 0.0
    survival = 1.0
    for core_id in order:
        expected += survival * core_test_time(
            soc.core_by_id(core_id), rail.width
        )
        survival *= yields.of(core_id)
    return expected


def optimal_rail_order(
    soc: Soc,
    rail: TestRail,
    yields: YieldModel,
) -> tuple[int, ...]:
    """Order minimizing the expected abort-on-fail time.

    Sorts by the ratio ``T_c / (1 - p_c)`` ascending (cores certain to
    pass — ``p_c = 1`` — go last, longest of them first is irrelevant to
    the expectation, so they tie-break by id for determinism).
    """
    def key(core_id: int) -> tuple[float, int]:
        time = core_test_time(soc.core_by_id(core_id), rail.width)
        fail = 1.0 - yields.of(core_id)
        ratio = time / fail if fail > 0 else float("inf")
        return (ratio, core_id)

    return tuple(sorted(rail.cores, key=key))


@dataclass(frozen=True)
class OrderingReport:
    """Expected-time gains of optimal ordering for one architecture."""

    naive_expected: float
    optimal_expected: float
    orders: tuple[tuple[int, ...], ...]

    @property
    def gain_pct(self) -> float:
        if self.naive_expected == 0:
            return 0.0
        return (
            (self.naive_expected - self.optimal_expected)
            / self.naive_expected
            * 100.0
        )


def order_architecture(
    soc: Soc,
    architecture: TestRailArchitecture,
    yields: YieldModel,
) -> OrderingReport:
    """Optimally order every rail; compare against id-order expectation.

    Rails run concurrently, so the SOC-level expectation reported is the
    sum of rail expectations (tester occupancy), the quantity abort-on-
    fail economics care about.
    """
    naive = 0.0
    optimal = 0.0
    orders = []
    for rail in architecture.rails:
        naive += expected_rail_time(soc, rail, rail.cores, yields)
        best = optimal_rail_order(soc, rail, yields)
        optimal += expected_rail_time(soc, rail, best, yields)
        orders.append(best)
    return OrderingReport(
        naive_expected=naive,
        optimal_expected=optimal,
        orders=tuple(orders),
    )
