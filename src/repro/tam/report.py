"""Utilization reporting for TestRail architectures.

`time_used(r)` drives the optimizer's merge ordering, but system
integrators also want to *see* where the TAM wires sit idle.  This module
derives per-rail utilization statistics from an evaluation: InTest
occupancy, SI occupancy, idle time within the makespan, and the
wire-cycles wasted — and renders them as a text report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture

if TYPE_CHECKING:
    from repro.core.scheduling import Evaluation


@dataclass(frozen=True)
class RailUtilization:
    """Occupancy figures of one rail over the whole test session.

    Attributes:
        rail_index: Index of the rail in the architecture.
        width: TAM wires of the rail.
        in_busy: Cycles the rail spends applying InTest.
        si_busy: Cycles the rail spends shifting SI tests.
        makespan: Total SOC test length (`T_soc`).
    """

    rail_index: int
    width: int
    in_busy: int
    si_busy: int
    makespan: int

    @property
    def busy(self) -> int:
        return self.in_busy + self.si_busy

    @property
    def idle(self) -> int:
        return max(0, self.makespan - self.busy)

    @property
    def utilization(self) -> float:
        """Fraction of the makespan the rail is actually in use."""
        if self.makespan == 0:
            return 0.0
        return min(1.0, self.busy / self.makespan)

    @property
    def idle_wire_cycles(self) -> int:
        """Wire-cycles this rail wastes — idle time times its width."""
        return self.idle * self.width


def rail_utilizations(
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
) -> tuple[RailUtilization, ...]:
    """Compute per-rail utilization from an evaluation.

    The rail's SI occupancy is its *own* shift time per group
    (``time_si(r)`` from the paper's Fig. 4 data structure), not the group
    durations — a rail can sit idle inside a group window while a slower
    bottleneck rail finishes.
    """
    makespan = evaluation.t_total
    return tuple(
        RailUtilization(
            rail_index=index,
            width=rail.width,
            in_busy=stats.time_in,
            si_busy=stats.time_si,
            makespan=makespan,
        )
        for index, (rail, stats) in enumerate(
            zip(architecture.rails, evaluation.rail_stats)
        )
    )


def format_utilization_report(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
) -> str:
    """Text report of per-rail and overall TAM utilization."""
    rows = rail_utilizations(architecture, evaluation)
    lines = [
        f"SOC {soc.name}: makespan {evaluation.t_total} cc "
        f"over {architecture.total_width} wires"
    ]
    lines.append(
        f"{'rail':>5} {'width':>5} {'InTest':>9} {'SI':>9} {'idle':>9} "
        f"{'util':>7} {'idle wire-cc':>13}"
    )
    for row in rows:
        lines.append(
            f"{row.rail_index:>5} {row.width:>5} {row.in_busy:>9} "
            f"{row.si_busy:>9} {row.idle:>9} {row.utilization:>6.1%} "
            f"{row.idle_wire_cycles:>13}"
        )
    total_wire_cycles = evaluation.t_total * architecture.total_width
    busy_wire_cycles = sum(row.busy * row.width for row in rows)
    overall = busy_wire_cycles / total_wire_cycles if total_wire_cycles else 0
    lines.append(
        f"overall wire utilization: {overall:.1%} "
        f"({busy_wire_cycles}/{total_wire_cycles} wire-cycles)"
    )
    return "\n".join(lines)
