"""SVG export of SOC test schedules (a publication-quality Fig. 3).

Pure-stdlib SVG assembly: one horizontal lane per TestRail; InTest
segments per core, then the SI phase with one box per SI group spanning
the rails it occupies.  Colors distinguish phases; labels carry core and
group ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING
from xml.sax.saxutils import escape

from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture
from repro.wrapper.timing import core_test_time

if TYPE_CHECKING:
    from repro.core.scheduling import Evaluation

_LANE_HEIGHT = 28
_LANE_GAP = 8
_LEFT_MARGIN = 90
_TOP_MARGIN = 34
_WIDTH = 860

_INTEST_FILL = "#4c78a8"
_SI_FILLS = ("#f58518", "#54a24b", "#b279a2", "#e45756", "#72b7b2",
             "#eeca3b", "#9d755d", "#bab0ac")


def render_schedule_svg(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
) -> str:
    """Render the combined schedule as an SVG document string."""
    t_total = max(evaluation.t_total, 1)
    plot_width = _WIDTH - _LEFT_MARGIN - 10
    scale = plot_width / t_total
    height = (
        _TOP_MARGIN
        + len(architecture.rails) * (_LANE_HEIGHT + _LANE_GAP)
        + 30
    )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{_LEFT_MARGIN}" y="16" font-size="13">'
        f"SOC {escape(soc.name)}: T_in={evaluation.t_in} cc, "
        f"T_si={evaluation.t_si} cc, T_total={evaluation.t_total} cc</text>",
    ]

    def lane_y(rail_index: int) -> int:
        return _TOP_MARGIN + rail_index * (_LANE_HEIGHT + _LANE_GAP)

    def x_of(cycles: float) -> float:
        return _LEFT_MARGIN + cycles * scale

    for rail_index, rail in enumerate(architecture.rails):
        y = lane_y(rail_index)
        parts.append(
            f'<text x="4" y="{y + _LANE_HEIGHT / 2 + 4}">'
            f"TAM{rail_index} (w={rail.width})</text>"
        )
        parts.append(
            f'<rect x="{_LEFT_MARGIN}" y="{y}" width="{plot_width}" '
            f'height="{_LANE_HEIGHT}" fill="#f4f4f4" stroke="#cccccc"/>'
        )
        cursor = 0
        for core_id in rail.cores:
            duration = core_test_time(soc.core_by_id(core_id), rail.width)
            if duration == 0:
                continue
            x = x_of(cursor)
            w = max(duration * scale, 1.0)
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 2}" width="{w:.1f}" '
                f'height="{_LANE_HEIGHT - 4}" fill="{_INTEST_FILL}" '
                f'fill-opacity="0.85" stroke="white"/>'
            )
            if w > 22:
                parts.append(
                    f'<text x="{x + 3:.1f}" y="{y + _LANE_HEIGHT / 2 + 4}" '
                    f'fill="white">c{core_id}</text>'
                )
            cursor += duration

    for entry in evaluation.schedule:
        fill = _SI_FILLS[entry.group_id % len(_SI_FILLS)]
        for rail_index in sorted(entry.rails):
            y = lane_y(rail_index)
            x = x_of(evaluation.t_in + entry.begin)
            w = max(entry.time_si * scale, 1.0)
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 2}" width="{w:.1f}" '
                f'height="{_LANE_HEIGHT - 4}" fill="{fill}" '
                f'fill-opacity="0.85" stroke="white"/>'
            )
            if w > 22:
                parts.append(
                    f'<text x="{x + 3:.1f}" y="{y + _LANE_HEIGHT / 2 + 4}" '
                    f'fill="white">s{entry.group_id}</text>'
                )

    # Phase divider.
    divider_x = x_of(evaluation.t_in)
    bottom = lane_y(len(architecture.rails))
    parts.append(
        f'<line x1="{divider_x:.1f}" y1="{_TOP_MARGIN - 6}" '
        f'x2="{divider_x:.1f}" y2="{bottom}" stroke="#333333" '
        f'stroke-dasharray="4 3"/>'
    )
    parts.append(
        f'<text x="{divider_x + 4:.1f}" y="{bottom + 16}">InTest | SI</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def write_schedule_svg(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
    path: str | Path,
) -> None:
    """Write the schedule SVG to disk."""
    Path(path).write_text(render_schedule_svg(soc, architecture, evaluation))
