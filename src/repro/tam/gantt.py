"""ASCII Gantt rendering of SOC test schedules (paper, Fig. 3 style).

Renders one row per TestRail.  The InTest phase shows each core's internal
test as a labelled segment (cores on a rail are tested serially, in core-id
order); the SI phase shows each SI group's occupancy on every rail it
involves.  Time is scaled to a fixed character budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.soc.model import Soc
from repro.tam.testrail import TestRailArchitecture
from repro.wrapper.timing import core_test_time

if TYPE_CHECKING:  # avoid a runtime cycle with repro.core.scheduling
    from repro.core.scheduling import Evaluation


def render_schedule(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: "Evaluation",
    columns: int = 72,
) -> str:
    """Render the combined InTest + SI schedule as fixed-width text.

    Args:
        soc: The SOC (for per-core InTest times).
        architecture: The TestRail architecture being visualized.
        evaluation: Its evaluation (provides the SI schedule).
        columns: Character budget for the time axis.

    Returns:
        A multi-line string; one row per rail, ``|`` separates the InTest
        phase from the SI phase.
    """
    t_total = evaluation.t_total
    if t_total == 0:
        return "(empty schedule)"
    scale = columns / t_total

    def span(begin: int, end: int) -> tuple[int, int]:
        return int(begin * scale), max(int(begin * scale) + 1, int(end * scale))

    lines = [
        f"SOC {soc.name}: T_in={evaluation.t_in} cc, "
        f"T_si={evaluation.t_si} cc, T_total={t_total} cc"
    ]
    for rail_index, rail in enumerate(architecture.rails):
        row = [" "] * columns
        cursor = 0
        for core_id in rail.cores:
            duration = core_test_time(soc.core_by_id(core_id), rail.width)
            if duration == 0:
                continue
            start_col, end_col = span(cursor, cursor + duration)
            _paint(row, start_col, end_col, f"c{core_id}")
            cursor += duration
        in_col = int(evaluation.t_in * scale)
        if 0 <= in_col < columns:
            row[in_col] = "|"
        for entry in evaluation.schedule:
            if rail_index not in entry.rails:
                continue
            start_col, end_col = span(
                evaluation.t_in + entry.begin, evaluation.t_in + entry.end
            )
            _paint(row, start_col, end_col, f"s{entry.group_id}")
        label = f"TAM{rail_index} (w={rail.width:>2})"
        lines.append(f"{label:<14}[{''.join(row)}]")
    lines.append(
        f"{'':14} InTest phase ends at '|'; s<i> = SI test group i"
    )
    return "\n".join(lines)


def _paint(row: list[str], start: int, end: int, label: str) -> None:
    """Fill ``row[start:end)`` with '=' and overlay the label if it fits."""
    end = min(end, len(row))
    for column in range(start, end):
        row[column] = "="
    if end - start >= len(label) + 1:
        for offset, char in enumerate(label):
            row[start + offset] = char
