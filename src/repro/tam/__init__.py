"""TestRail architectures, the TR-Architect baseline, and visualization."""

from repro.tam.gantt import render_schedule
from repro.tam.ordering import (
    OrderingReport,
    YieldModel,
    expected_rail_time,
    optimal_rail_order,
    order_architecture,
)
from repro.tam.rectangles import (
    PlacedRectangle,
    RectangleSchedule,
    format_rectangle_schedule,
    schedule_rectangles,
)
from repro.tam.report import (
    RailUtilization,
    format_utilization_report,
    rail_utilizations,
)
from repro.tam.serialize import (
    architecture_from_dict,
    architecture_to_dict,
    load_architecture,
    save_architecture,
)
from repro.tam.svg import render_schedule_svg, write_schedule_svg
from repro.tam.testrail import (
    TestRail,
    TestRailArchitecture,
    initial_architecture,
)
from repro.tam.tr_architect import si_oblivious_total, tr_architect

__all__ = [
    "TestBusEvaluator",
    "OrderingReport",
    "PlacedRectangle",
    "RectangleSchedule",
    "format_rectangle_schedule",
    "schedule_rectangles",
    "RailUtilization",
    "YieldModel",
    "expected_rail_time",
    "optimal_rail_order",
    "order_architecture",
    "TestRail",
    "architecture_from_dict",
    "architecture_to_dict",
    "format_utilization_report",
    "load_architecture",
    "rail_utilizations",
    "save_architecture",
    "optimize_testbus",
    "render_schedule_svg",
    "write_schedule_svg",
    "TestRailArchitecture",
    "initial_architecture",
    "render_schedule",
    "si_oblivious_total",
    "tr_architect",
]


_LAZY = {"TestBusEvaluator", "optimize_testbus"}


def __getattr__(name):
    # repro.tam.testbus subclasses the evaluator from repro.core, which in
    # turn depends on repro.tam.testrail; loading it lazily keeps the
    # package import acyclic.
    if name in _LAZY:
        from repro.tam import testbus

        return getattr(testbus, name)
    raise AttributeError(f"module 'repro.tam' has no attribute {name!r}")
