"""TR-Architect baseline [Goel & Marinissen, ITC 2002].

TR-Architect optimizes a TestRail architecture for core-internal test time
only.  The paper's ``TAM_Optimization`` (Algorithm 2) generalizes exactly
this procedure to the combined InTest + SI objective, so the baseline is
obtained by running the generalized optimizer with an empty SI group set:
``time_si(r) = 0`` for every rail, ``time_used(r) = time_in(r)``, and
``T_soc = T_soc_in`` — which is precisely TR-Architect's behaviour.

This module also prices the *SI-oblivious* flow used for the tables'
``T_[8]`` column: optimize for InTest only, then pay for the SI tests on
the resulting (SI-unaware) architecture.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compaction.groups import SITestGroup
from repro.soc.model import Soc

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.optimizer import OptimizationResult
    from repro.core.scheduling import Evaluation


def tr_architect(soc: Soc, w_max: int) -> "OptimizationResult":
    """Optimize the TestRail architecture for InTest time only."""
    from repro.core.optimizer import optimize_tam

    return optimize_tam(soc, w_max, groups=())


def si_oblivious_total(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...],
    capture_cycles: int = 1,
) -> "Evaluation":
    """Total test time of the SI-oblivious flow (``T_[8]`` in the tables).

    The architecture is designed by TR-Architect without any knowledge of
    the SI tests; the SI tests are then scheduled on it after the fact.
    """
    from repro.core.optimizer import evaluate_architecture

    baseline = tr_architect(soc, w_max)
    return evaluate_architecture(
        soc, baseline.architecture, groups, capture_cycles=capture_cycles
    )
