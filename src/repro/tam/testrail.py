"""TestRail architecture data structures (paper, Fig. 4).

A :class:`TestRail` is an ordered set of cores daisy-chained on ``width``
TAM wires; a :class:`TestRailArchitecture` is a set of rails that together
use at most the SOC pin budget ``W_max``.  Both are immutable; the
optimizers construct modified copies via the ``with_*``/``merged`` helpers,
which keeps memoized per-rail statistics valid across candidate
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TestRail:
    """One TAM partition: cores sharing ``width`` dedicated wires.

    (The ``Test`` prefix is domain vocabulary, not a pytest marker.)

    Attributes:
        cores: Ids of the cores on the rail, sorted (order on a rail does
            not affect any test time in this model).
        width: Number of TAM wires of the rail.
    """

    __test__ = False  # keep pytest from collecting this dataclass

    cores: tuple[int, ...]
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"rail width must be positive, got {self.width}")
        if not self.cores:
            raise ValueError("a rail must carry at least one core")
        if tuple(sorted(self.cores)) != self.cores:
            raise ValueError("rail cores must be sorted")
        if len(set(self.cores)) != len(self.cores):
            raise ValueError("rail cores must be distinct")

    @staticmethod
    def of(cores, width: int) -> "TestRail":
        """Build a rail from any iterable of core ids."""
        return TestRail(cores=tuple(sorted(cores)), width=width)

    def widened(self, extra: int) -> "TestRail":
        """The same rail with ``extra`` additional wires."""
        return TestRail(cores=self.cores, width=self.width + extra)

    def merged_with(self, other: "TestRail", width: int) -> "TestRail":
        """Merge two rails onto ``width`` wires."""
        return TestRail.of(self.cores + other.cores, width)


@dataclass(frozen=True)
class TestRailArchitecture:
    """A complete TestRail TAM design for an SOC."""

    __test__ = False  # keep pytest from collecting this dataclass

    rails: tuple[TestRail, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for rail in self.rails:
            for core_id in rail.cores:
                if core_id in seen:
                    raise ValueError(f"core {core_id} appears on several rails")
                seen.add(core_id)

    def __len__(self) -> int:
        return len(self.rails)

    def __iter__(self):
        return iter(self.rails)

    @property
    def total_width(self) -> int:
        """Sum of rail widths — must not exceed the SOC's ``W_max``."""
        return sum(rail.width for rail in self.rails)

    @property
    def core_ids(self) -> frozenset[int]:
        return frozenset(
            core_id for rail in self.rails for core_id in rail.cores
        )

    def rail_index_of(self, core_id: int) -> int:
        """Index of the rail carrying ``core_id``."""
        for index, rail in enumerate(self.rails):
            if core_id in rail.cores:
                return index
        raise KeyError(f"core {core_id} is not on any rail")

    def with_rail(self, index: int, rail: TestRail) -> "TestRailArchitecture":
        """Replace the rail at ``index``."""
        rails = list(self.rails)
        rails[index] = rail
        return TestRailArchitecture(rails=tuple(rails))

    def without_rail(self, index: int) -> "TestRailArchitecture":
        rails = list(self.rails)
        del rails[index]
        return TestRailArchitecture(rails=tuple(rails))

    def merged(self, first: int, second: int, width: int) -> "TestRailArchitecture":
        """Merge the rails at the two indices onto ``width`` wires.

        The merged rail takes the position of ``first``.
        """
        if first == second:
            raise ValueError("cannot merge a rail with itself")
        merged_rail = self.rails[first].merged_with(self.rails[second], width)
        rails = tuple(
            merged_rail if index == first else rail
            for index, rail in enumerate(self.rails)
            if index != second
        )
        return TestRailArchitecture(rails=rails)

    def with_core_moved(
        self, core_id: int, source: int, destination: int
    ) -> "TestRailArchitecture":
        """Move ``core_id`` from rail ``source`` to rail ``destination``.

        Raises:
            ValueError: If the move would leave the source rail empty (its
                wires would dangle) or the core is not on the source rail.
        """
        source_rail = self.rails[source]
        if core_id not in source_rail.cores:
            raise ValueError(f"core {core_id} is not on rail {source}")
        if len(source_rail.cores) == 1:
            raise ValueError("cannot empty a rail by moving its last core")
        remaining = tuple(c for c in source_rail.cores if c != core_id)
        rails = list(self.rails)
        rails[source] = TestRail(cores=remaining, width=source_rail.width)
        rails[destination] = TestRail.of(
            rails[destination].cores + (core_id,), rails[destination].width
        )
        return TestRailArchitecture(rails=tuple(rails))


def initial_architecture(core_ids, width_per_rail: int = 1) -> TestRailArchitecture:
    """The TR-Architect start solution: one rail per core."""
    return TestRailArchitecture(
        rails=tuple(
            TestRail(cores=(core_id,), width=width_per_rail)
            for core_id in core_ids
        )
    )
