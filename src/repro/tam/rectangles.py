"""Rectangle-based TAM scheduling (the Test-Bus-family comparator).

The other classical formulation of SOC test scheduling [Iyengar,
Chakrabarty, Marinissen] views each core as a *malleable rectangle*: at
TAM width ``w`` it occupies ``w`` wires for ``T(w)`` cycles, and only the
Pareto-optimal widths are worth considering.  Scheduling packs one
rectangle per core into the ``W_max × time`` plane without overlap,
minimizing the makespan.

This module implements the standard list-scheduling heuristic for that
model: cores in descending order of minimum test area pick, among their
Pareto widths, the placement finishing earliest (earliest-finish-time on
the current wire-availability profile).  Wires are interchangeable, so a
placement just reserves the ``w`` earliest-free wires.

It optimizes InTest only — exactly the scope of that literature — and
serves as a second baseline alongside TR-Architect; the comparison bench
shows all three (rectangles, TR-Architect, Algorithm 2) on equal InTest
footing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.soc.model import Soc
from repro.wrapper.timing import core_test_time, pareto_widths


@dataclass(frozen=True)
class PlacedRectangle:
    """One core's placement in the (wires × time) plane.

    Attributes:
        core_id: The placed core.
        width: Chosen TAM width.
        begin: Start time (cycles).
        end: Completion time (cycles).
        wires: Indices of the reserved wires.
    """

    core_id: int
    width: int
    begin: int
    end: int
    wires: tuple[int, ...]

    @property
    def duration(self) -> int:
        return self.end - self.begin

    @property
    def area(self) -> int:
        return self.width * self.duration


@dataclass(frozen=True)
class RectangleSchedule:
    """A complete rectangle packing for one SOC.

    Attributes:
        w_max: Pin budget.
        placements: One rectangle per core.
    """

    w_max: int
    placements: tuple[PlacedRectangle, ...]

    @property
    def makespan(self) -> int:
        return max((p.end for p in self.placements), default=0)

    @property
    def utilization(self) -> float:
        """Used area over the bounding ``W_max × makespan`` box."""
        box = self.w_max * self.makespan
        if box == 0:
            return 0.0
        return sum(p.area for p in self.placements) / box

    def validate(self) -> None:
        """Check the packing is overlap-free; raise ``ValueError`` if not."""
        for first in self.placements:
            if len(first.wires) != first.width:
                raise ValueError(
                    f"core {first.core_id}: reserved {len(first.wires)} "
                    f"wires for width {first.width}"
                )
            if any(not 0 <= wire < self.w_max for wire in first.wires):
                raise ValueError(f"core {first.core_id}: wire out of range")
            for second in self.placements:
                if first.core_id >= second.core_id:
                    continue
                time_overlap = (
                    first.begin < second.end and second.begin < first.end
                )
                if time_overlap and set(first.wires) & set(second.wires):
                    raise ValueError(
                        f"cores {first.core_id} and {second.core_id} "
                        "overlap in the schedule"
                    )


def _earliest_gap_start(
    busy: list[list[tuple[int, int]]],
    width: int,
    duration: int,
) -> tuple[int, tuple[int, ...]]:
    """Earliest start at which ``width`` wires are simultaneously free for
    ``duration`` cycles, given per-wire sorted busy intervals.

    Candidate starts are 0 and every interval end; the first candidate
    with enough free wires wins.  Returns ``(start, wires)``.
    """
    candidates = {0}
    for intervals in busy:
        for _, end in intervals:
            candidates.add(end)

    def free_during(wire: int, begin: int, finish: int) -> bool:
        for interval_begin, interval_end in busy[wire]:
            if interval_begin < finish and begin < interval_end:
                return False
        return True

    for start in sorted(candidates):
        finish = start + duration
        free_wires = [
            wire for wire in range(len(busy))
            if free_during(wire, start, finish)
        ]
        if len(free_wires) >= width:
            return start, tuple(free_wires[:width])
    raise RuntimeError("unreachable: the empty tail is always free")


def schedule_rectangles(
    soc: Soc, w_max: int, backfill: bool = False
) -> RectangleSchedule:
    """Pack every core's best rectangle with earliest-finish placement.

    Cores are processed in descending order of their minimum test area
    (a strong proxy for "hard to place"); for each, every Pareto width is
    tried against the current wire-availability profile and the
    earliest-finishing choice wins (ties prefer narrower rectangles,
    which keep wires free for others).

    Args:
        soc: The SOC to schedule.
        w_max: Pin budget.
        backfill: With ``False`` (the plain list scheduler) a wire is only
            free after everything placed on it; with ``True`` rectangles
            may slot into earlier idle gaps, which typically tightens the
            packing at mid-size budgets.

    Raises:
        ValueError: On a non-positive budget or an empty SOC.
    """
    if w_max <= 0:
        raise ValueError(f"W_max must be positive, got {w_max}")
    if not len(soc):
        raise ValueError(f"SOC {soc.name} has no cores")

    def min_area(core) -> int:
        return min(
            width * core_test_time(core, width)
            for width in pareto_widths(core, w_max)
        )

    order = sorted(soc, key=min_area, reverse=True)
    free_at = [0] * w_max  # per-wire availability (plain mode)
    busy: list[list[tuple[int, int]]] = [[] for _ in range(w_max)]

    placements = []
    for core in order:
        best = None
        for width in pareto_widths(core, w_max):
            duration = core_test_time(core, width)
            if backfill:
                begin, wires = _earliest_gap_start(busy, width, duration)
            else:
                wires = tuple(sorted(heapq.nsmallest(
                    width, range(w_max),
                    key=lambda wire: (free_at[wire], wire),
                )))
                begin = max(free_at[wire] for wire in wires)
            finish = begin + duration
            key = (finish, width)
            if best is None or key < best[0]:
                best = (key, width, begin, wires)
        assert best is not None
        _, width, begin, wires = best
        end = begin + core_test_time(core, width)
        for wire in wires:
            free_at[wire] = max(free_at[wire], end)
            busy[wire].append((begin, end))
        placements.append(
            PlacedRectangle(
                core_id=core.core_id,
                width=width,
                begin=begin,
                end=end,
                wires=wires,
            )
        )

    schedule = RectangleSchedule(w_max=w_max, placements=tuple(placements))
    schedule.validate()
    return schedule


def format_rectangle_schedule(schedule: RectangleSchedule) -> str:
    """Text summary of a rectangle packing."""
    lines = [
        f"rectangle schedule: makespan {schedule.makespan} cc on "
        f"{schedule.w_max} wires ({schedule.utilization:.1%} packed)"
    ]
    for placement in sorted(schedule.placements, key=lambda p: p.begin):
        lines.append(
            f"  core {placement.core_id:>3}: w={placement.width:>2} "
            f"[{placement.begin:>8} .. {placement.end:>8})"
        )
    return "\n".join(lines)
