"""JSON persistence of TestRail architectures and optimization results.

A test architecture is a design artifact that outlives the optimization
run that produced it (it gets committed, reviewed, re-evaluated against
new test sets).  This module round-trips architectures — and, one-way,
full optimization results with their schedules — through plain JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.tam.testrail import TestRail, TestRailArchitecture

if TYPE_CHECKING:
    from repro.core.optimizer import OptimizationResult

_FORMAT = "repro-testrail-architecture"
_VERSION = 1


def architecture_to_dict(architecture: TestRailArchitecture) -> dict:
    """JSON-ready representation of an architecture."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "rails": [
            {"cores": list(rail.cores), "width": rail.width}
            for rail in architecture.rails
        ],
    }


def architecture_from_dict(data: dict) -> TestRailArchitecture:
    """Rebuild an architecture from :func:`architecture_to_dict` output.

    Raises:
        ValueError: On an unrecognized payload or a structurally invalid
            architecture.
    """
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a TestRail architecture payload (format="
            f"{data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    rails = []
    for entry in data.get("rails", []):
        rails.append(TestRail.of(entry["cores"], entry["width"]))
    return TestRailArchitecture(rails=tuple(rails))


def save_architecture(
    architecture: TestRailArchitecture, path: str | Path
) -> None:
    """Write an architecture to a JSON file."""
    Path(path).write_text(
        json.dumps(architecture_to_dict(architecture), indent=2) + "\n"
    )


def load_architecture(path: str | Path) -> TestRailArchitecture:
    """Read an architecture from a JSON file."""
    return architecture_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: "OptimizationResult") -> dict:
    """One-way JSON summary of an optimization result (architecture plus
    evaluation and SI schedule)."""
    evaluation = result.evaluation
    return {
        "architecture": architecture_to_dict(result.architecture),
        "w_max": result.w_max,
        "t_in": evaluation.t_in,
        "t_si": evaluation.t_si,
        "t_total": evaluation.t_total,
        "schedule": [
            {
                "group_id": entry.group_id,
                "begin": entry.begin,
                "end": entry.end,
                "rails": sorted(entry.rails),
                "bottleneck_rail": entry.bottleneck_rail,
            }
            for entry in evaluation.schedule
        ],
    }
