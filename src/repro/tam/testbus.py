"""Test Bus architecture model [Varma & Bhatia, ITC 1998] — the ablation
the paper motivates its TestRail choice with.

A Test Bus multiplexes exactly one core onto each bus at a time.  For
core-internal test this behaves like a TestRail (cores tested serially per
bus, each at the bus width).  For core-*external* SI test the mux is the
problem: an SI test spanning several buses needs every involved bus at
once, and because the buses cannot hold other external tests half-applied
behind a mux, SI tests are applied back-to-back — there is no Algorithm 1
style packing of disjoint-rail tests into the same time window.  (This is
what the paper means by "the TestRail architecture ... naturally supports
parallel external testing, in contrast to the Test Bus architecture".)

:class:`TestBusEvaluator` prices exactly that: identical InTest and
per-group SI times, but a strictly serial SI phase.  ``optimize_testbus``
runs Algorithm 2 under this cost model, so the TestRail-vs-TestBus
comparison isolates the scheduling freedom rather than the optimizer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compaction.groups import SITestGroup
from repro.core.scheduling import SIScheduleEntry, TamEvaluator
from repro.soc.model import Soc

if TYPE_CHECKING:
    from repro.core.optimizer import OptimizationResult


class TestBusEvaluator(TamEvaluator):
    """TestRail cost model with the Test Bus's serial external test phase."""

    __test__ = False  # keep pytest from collecting this class

    def schedule(
        self, entries: list[SIScheduleEntry]
    ) -> tuple[tuple[SIScheduleEntry, ...], int]:
        """Apply SI tests back-to-back, longest first (order is irrelevant
        to the total, which is simply the sum)."""
        ordered = sorted(entries, key=lambda e: (-e.time_si, e.group_id))
        scheduled = []
        clock = 0
        for entry in ordered:
            scheduled.append(
                SIScheduleEntry(
                    group_id=entry.group_id,
                    time_si=entry.time_si,
                    rails=entry.rails,
                    bottleneck_rail=entry.bottleneck_rail,
                    begin=clock,
                    end=clock + entry.time_si,
                )
            )
            clock += entry.time_si
        return tuple(scheduled), clock


def optimize_testbus(
    soc: Soc,
    w_max: int,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> "OptimizationResult":
    """Optimize a Test Bus architecture (Algorithm 2 under the serial
    external-test cost model)."""
    from repro.core.optimizer import optimize_tam

    evaluator = TestBusEvaluator(soc, groups, capture_cycles=capture_cycles)
    return optimize_tam(
        soc, w_max, groups=groups, capture_cycles=capture_cycles,
        evaluator=evaluator,
    )
