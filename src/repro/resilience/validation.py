"""Strict input validation with actionable diagnostics.

A malformed benchmark file or pattern set should fail *at load time*
with a message naming the file, the line and the field — never as a
``KeyError`` three layers deep, forty minutes into a sweep.  This module
provides the shared :class:`ValidationError` diagnostic type and the
schema checks used by the ITC'02 SOC parser
(:mod:`repro.soc.itc02`) and the SI pattern/topology loaders
(:mod:`repro.sitest.io`, :mod:`repro.sitest.topology_io`).

:class:`ValidationError` subclasses :class:`ValueError`, so existing
callers catching ``ValueError`` keep working; new callers can catch the
richer type and read ``path`` / ``line`` / ``field`` directly.

The checkers here deliberately take duck-typed objects and import
nothing from the model packages, so any loader can use them without
import cycles.
"""

from __future__ import annotations

__all__ = [
    "ValidationError",
    "validate_soc",
    "validate_topology_shape",
]


class ValidationError(ValueError):
    """An input failed schema validation.

    Attributes:
        path: Source file, when known.
        line: 1-based line (or record index) within the source.
        field: The offending field or keyword.
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        line: int | None = None,
        field: str | None = None,
    ) -> None:
        self.path = path
        self.line = line
        self.field = field
        self.bare_message = message
        super().__init__(self._compose())

    def _compose(self) -> str:
        prefix = ""
        if self.path is not None:
            prefix += f"{self.path}: "
        if self.line is not None:
            prefix += f"line {self.line}: "
        if self.field is not None:
            prefix += f"{self.field}: "
        return prefix + self.bare_message

    def with_source(self, path: str) -> "ValidationError":
        """Attach (or replace) the source path; returns ``self``."""
        self.path = path
        self.args = (self._compose(),)
        return self


def validate_soc(soc, path: str | None = None,
                 lines: dict[int, int] | None = None) -> None:
    """Schema checks on a parsed SOC beyond the model's own invariants.

    The model (:mod:`repro.soc.model`) already rejects duplicate core
    ids, negative terminal counts and non-positive scan chain lengths at
    construction.  This adds the file-level checks a parser cannot
    express per-core: duplicate core *names*, dangling ``Parent``
    references, and cores declaring no tests at all.

    Args:
        soc: The parsed :class:`~repro.soc.model.Soc` (duck-typed).
        path: Source file for diagnostics.
        lines: Optional ``core_id -> line`` map for diagnostics.

    Raises:
        ValidationError: On the first violation.
    """
    lines = lines or {}
    ids = {core.core_id for core in soc.cores}
    seen_names: dict[str, int] = {}
    for core in soc.cores:
        line = lines.get(core.core_id)
        if core.name in seen_names:
            raise ValidationError(
                f"duplicate core name {core.name!r} "
                f"(already used by module {seen_names[core.name]})",
                path=path, line=line, field="Module",
            )
        seen_names[core.name] = core.core_id
        if core.parent is not None and core.parent not in ids:
            raise ValidationError(
                f"module {core.core_id} names unknown parent {core.parent}",
                path=path, line=line, field="Parent",
            )
        if core.parent == core.core_id:
            raise ValidationError(
                f"module {core.core_id} is its own parent",
                path=path, line=line, field="Parent",
            )
        if not core.tests:
            raise ValidationError(
                f"module {core.core_id} ({core.name}) declares no tests",
                path=path, line=line, field="TotalTests",
            )


def validate_topology_shape(topology, path: str | None = None) -> None:
    """Structural checks on an interconnect topology (no SOC needed).

    Catches dangling interconnect endpoints that
    :meth:`InterconnectTopology.validate` (which needs an SOC) cannot be
    asked about at load time: duplicate net ids, nets with no receivers,
    neighborhoods referencing unknown nets, and a non-positive bus width.

    Raises:
        ValidationError: On the first violation.
    """
    seen: set[int] = set()
    for net in topology.nets:
        if net.net_id in seen:
            raise ValidationError(
                f"duplicate net id {net.net_id}", path=path, field="nets"
            )
        seen.add(net.net_id)
        if not net.receivers:
            raise ValidationError(
                f"net {net.net_id} has no receivers (dangling interconnect)",
                path=path, field="nets",
            )
    if topology.bus is not None and topology.bus.width <= 0:
        raise ValidationError(
            f"bus width must be positive, got {topology.bus.width}",
            path=path, field="bus",
        )
    for net_id, neighbors in topology.neighborhoods.items():
        if net_id not in seen:
            raise ValidationError(
                f"neighborhood declared for unknown net {net_id}",
                path=path, field="neighborhoods",
            )
        for neighbor in neighbors:
            if neighbor not in seen:
                raise ValidationError(
                    f"net {net_id} couples to unknown net {neighbor} "
                    "(dangling endpoint)",
                    path=path, field="neighborhoods",
                )
