"""Crash-safe checkpoint/resume for experiment sweeps.

A full Table 2/3 sweep is hours of work; a crash at hour three should
not cost the first three hours.  :class:`SweepCheckpoint` persists every
completed sweep cell — keyed by the same content-hash keys the
evaluation cache uses, with values encoded by the same exact codecs — to
a single JSON file that is rewritten *atomically* (temp file + ``fsync``
+ ``os.replace``) after each cell.  At any instant the file on disk is
either the previous complete checkpoint or the new complete checkpoint,
never a torn write.

``run_experiments.py --resume`` loads the checkpoint and the sweep
skips every recorded cell; because both the keys and the codecs are
exact, a resumed run is bit-identical to an uninterrupted one.  A
checkpoint file that fails its own checksum (machine died mid-``fsync``,
disk corruption) is quarantined to ``*.corrupt`` and the sweep restarts
from scratch rather than resuming from lies.

Version 2 adds a ``poisoned`` section: cells quarantined by the run
supervisor (:mod:`repro.runtime.supervision`) after exhausting their
retry budget are recorded with their failure reason, so an operator can
audit a partial sweep from the file alone.  A resumed run *re-attempts*
poisoned cells — :meth:`SweepCheckpoint.record` pops the key from the
poisoned section when the cell finally completes.  Version-1 files load
unchanged (empty poisoned section).

The :func:`~repro.resilience.faults.check_fault` site
``checkpoint.record`` runs just *after* a cell is recorded, so a
``sweep-abort`` fault kills the process at a precise, deterministic
point mid-sweep — the chaos tests use it to prove resume equivalence
without racing timers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runtime.cache import (
    default_codecs,
    stable_hash,
)
from repro.runtime.instrumentation import incr
from repro.runtime.supervision import disk_preflight

CHECKPOINT_FORMAT = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 2
#: Versions :meth:`SweepCheckpoint._load` accepts (v1 = no poisoned section).
CHECKPOINT_COMPAT_VERSIONS = (1, 2)

__all__ = [
    "CHECKPOINT_COMPAT_VERSIONS",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "atomic_write_text",
]


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The temp file lives next to the target (same filesystem, so
    ``os.replace`` is atomic) with a suffix no store glob matches.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class SweepCheckpoint:
    """Atomic on-disk record of completed sweep cells.

    Args:
        path: Checkpoint file; created on first :meth:`record`.
        codec_of: Key-prefix -> ``(encode, decode)`` map; defaults to the
            evaluation cache's exact codecs.
    """

    def __init__(self, path: str | Path, codec_of: dict | None = None) -> None:
        self.path = Path(path)
        self._codec_of = codec_of if codec_of is not None else default_codecs()
        self._cells: dict[str, object] = {}
        self._poisoned: dict[str, str] = {}
        self.resumed_from_disk = False
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.is_file():
            return
        problem: str | None = None
        try:
            entry = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            problem = f"unreadable ({error})"
            entry = None
        if problem is None:
            problem = self._entry_problem(entry)
        if problem is not None:
            self._quarantine(problem)
            return
        self._cells = dict(entry["cells"])
        self._poisoned = dict(entry.get("poisoned") or {})
        self.resumed_from_disk = True
        incr("checkpoint.loaded_cells", len(self._cells))

    @staticmethod
    def _entry_problem(entry) -> str | None:
        if not isinstance(entry, dict):
            return "not a JSON object"
        if entry.get("format") != CHECKPOINT_FORMAT:
            return f"unexpected format {entry.get('format')!r}"
        version = entry.get("version")
        if version not in CHECKPOINT_COMPAT_VERSIONS:
            return f"unsupported version {version!r}"
        cells = entry.get("cells")
        if not isinstance(cells, dict):
            return "missing cells"
        poisoned = entry.get("poisoned") or {}
        if not isinstance(poisoned, dict):
            return "malformed poisoned section"
        if version == 1:
            expected = stable_hash(cells)
        else:
            expected = stable_hash({"cells": cells, "poisoned": poisoned})
        if entry.get("checksum") != expected:
            return "cells checksum mismatch"
        return None

    def _quarantine(self, problem: str) -> None:
        quarantined = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, quarantined)
        except OSError:  # pragma: no cover - racing deletion
            quarantined = None
        incr("recovery.checkpoint_quarantined")
        import warnings

        where = f" (moved to {quarantined.name})" if quarantined else ""
        warnings.warn(
            f"checkpoint {self.path} is corrupt: {problem}{where}; "
            "starting fresh",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- recording / lookup ----------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    @property
    def keys(self) -> frozenset:
        return frozenset(self._cells)

    def _codec(self, key: str):
        return self._codec_of.get(key.split("-", 1)[0])

    def record(self, key: str, value) -> None:
        """Persist a completed cell and flush the checkpoint atomically.

        Cells already recorded (e.g. found again on a resumed pass) are
        not rewritten — the flush is skipped, keeping resumed replays
        cheap.
        """
        codec = self._codec(key)
        if codec is None or key in self._cells:
            return
        encode, _ = codec
        self._cells[key] = encode(value)
        # A poisoned cell that finally completed has recovered — drop
        # the quarantine record with the same flush.
        self._poisoned.pop(key, None)
        self._flush()
        incr("checkpoint.cells_recorded")
        from repro.resilience import faults

        fault = faults.check_fault("checkpoint.record")
        if fault is not None:
            faults.perform(fault)

    def fetch(self, key: str):
        """The recorded value for ``key`` decoded back to a live object,
        or ``None`` when the cell is not in the checkpoint."""
        if key not in self._cells:
            return None
        codec = self._codec(key)
        if codec is None:
            return None
        _, decode = codec
        incr("checkpoint.cells_resumed")
        return decode(self._cells[key])

    @property
    def poisoned(self) -> dict[str, str]:
        """Key -> reason for every cell quarantined by the supervisor."""
        return dict(self._poisoned)

    def poison(self, key: str, reason: str) -> None:
        """Record ``key`` as poisoned (budget exhausted) with ``reason``.

        The cell stays out of :meth:`fetch`/``in`` — a resumed run
        re-attempts it — but the quarantine survives the process, so a
        partial sweep is auditable from the checkpoint file alone.
        """
        if self._poisoned.get(key) == reason:
            return
        self._poisoned[key] = reason
        self._flush()
        incr("checkpoint.cells_poisoned")

    def _flush(self) -> None:
        if not disk_preflight(self.path.parent, "checkpoint"):
            return
        entry = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "cells": self._cells,
            "poisoned": self._poisoned,
            "checksum": stable_hash(
                {"cells": self._cells, "poisoned": self._poisoned}
            ),
        }
        atomic_write_text(self.path, json.dumps(entry, sort_keys=True) + "\n")

    def clear(self) -> None:
        """Delete the checkpoint file and forget all recorded cells."""
        self._cells.clear()
        self._poisoned.clear()
        self.resumed_from_disk = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
