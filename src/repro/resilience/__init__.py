"""Resilience subsystem: fault injection, validation, verification,
checkpoint/resume.

Four layers, threaded through the runtime and experiment stack:

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (``REPRO_FAULT_PLAN``) at the executor/cache/C-engine/checkpoint
  seams, for chaos-testing the documented recoveries;
* :mod:`repro.resilience.validation` — :class:`ValidationError`
  (path/line/field context) and schema checks used by the ITC'02 parser
  and the SI pattern/topology loaders;
* :mod:`repro.resilience.verify` — independent post-condition checks on
  optimized schedules (``--verify``);
* :mod:`repro.resilience.checkpoint` — atomic sweep checkpoints backing
  ``run_experiments.py --resume``.

Attributes resolve lazily (PEP 562): the validation layer is imported by
leaf parsers (:mod:`repro.soc.itc02`, :mod:`repro.sitest.io`), so the
package must be importable mid-way through ``repro``'s own package
initialization without dragging the model stack in.

See ``docs/resilience.md`` for the fault taxonomy and recovery matrix.
"""

from __future__ import annotations

import importlib

#: export name -> defining submodule.
_SUBMODULE_OF = {
    "FAULT_KINDS": "faults",
    "Fault": "faults",
    "FaultPlan": "faults",
    "FaultPlanError": "faults",
    "GarbageResult": "faults",
    "InjectedCellError": "faults",
    "check_fault": "faults",
    "fault_injection_active": "faults",
    "inject": "faults",
    "wrap_worker": "faults",
    "ValidationError": "validation",
    "validate_soc": "validation",
    "validate_topology_shape": "validation",
    "ScheduleVerificationError": "verify",
    "assert_valid_schedule": "verify",
    "verify_optimization": "verify",
    "verify_schedule": "verify",
    "SweepCheckpoint": "checkpoint",
    "atomic_write_text": "checkpoint",
}

__all__ = sorted(_SUBMODULE_OF)


def __getattr__(name: str):
    submodule = _SUBMODULE_OF.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(f"{__name__}.{submodule}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBMODULE_OF))
