"""Independent post-condition checks on ``TAM_Optimization`` output.

The optimizer and its evaluator share a lot of code; a bug there could
produce a schedule that *looks* cheap because it is illegal (overlapping
SI tests on a shared rail, a rail budget overrun, an unscheduled group).
:func:`verify_schedule` re-derives every feasibility condition of the
paper's problem statement from first principles — the SOC, the wrapper
timing primitive and the reported schedule only, never the evaluator's
memoized state — and reports all violations:

* the architecture uses at most ``W_max`` wires and covers every core
  of the SOC exactly once;
* every non-empty SI group whose cores are present is scheduled exactly
  once, on exactly the rails its cores occupy;
* each group's testing time equals the recomputed bottleneck-rail time
  ``pattern(s) * (depth(r) + capture)``, and its schedule slot has that
  length;
* no two groups sharing a rail overlap in time;
* ``T_soc_si`` equals the recomputed makespan and ``T_soc_in`` the
  recomputed InTest maximum, so the reported ``T_soc`` is reproducible
  from the schedule alone.

``verify_schedule`` returns the violations as strings (empty = valid);
:func:`assert_valid_schedule` raises :class:`ScheduleVerificationError`
listing them.  The experiment harness runs it under ``--verify`` and the
test suite runs it on every benchmark SOC across the paper's width
sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.wrapper.timing import core_test_time

if TYPE_CHECKING:  # annotation-only: keeps this module cycle-free when
    # imported mid-way through the model packages' own initialization.
    from repro.compaction.groups import SITestGroup
    from repro.core.scheduling import Evaluation
    from repro.soc.model import Soc
    from repro.tam.testrail import TestRailArchitecture

__all__ = [
    "ScheduleVerificationError",
    "assert_valid_schedule",
    "verify_optimization",
    "verify_schedule",
]


class ScheduleVerificationError(ValueError):
    """An optimized schedule violated a feasibility post-condition."""

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        summary = "; ".join(self.violations[:3])
        if len(self.violations) > 3:
            summary += f"; ... ({len(self.violations)} violations)"
        super().__init__(f"schedule verification failed: {summary}")


def verify_schedule(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: Evaluation,
    groups: tuple[SITestGroup, ...] = (),
    w_max: int | None = None,
    capture_cycles: int = 1,
) -> list[str]:
    """All feasibility violations of an evaluated architecture (empty list
    = the schedule is valid).

    Args:
        soc: The SOC the architecture was optimized for.
        architecture: The reported TestRail architecture.
        evaluation: The reported evaluation (schedule + totals).
        groups: The SI test groups the evaluation priced.
        w_max: Pin budget; pass ``None`` to skip the width check (e.g.
            when re-pricing a saved architecture of unknown budget).
        capture_cycles: Launch/capture cycles charged per SI pattern.
    """
    violations: list[str] = []

    # --- Architecture shape: width budget, full disjoint core cover. -----
    total_width = sum(rail.width for rail in architecture.rails)
    if w_max is not None and total_width > w_max:
        violations.append(
            f"TAM wires overrun: sum of rail widths {total_width} > "
            f"W_max {w_max}"
        )
    soc_cores = set(soc.core_ids)
    placed: list[int] = [
        core_id for rail in architecture.rails for core_id in rail.cores
    ]
    placed_set = set(placed)
    if len(placed) != len(placed_set):
        violations.append("a core appears on several rails")
    missing = soc_cores - placed_set
    if missing:
        violations.append(f"cores unscheduled (on no rail): {sorted(missing)}")
    foreign = placed_set - soc_cores
    if foreign:
        violations.append(f"rails carry unknown cores: {sorted(foreign)}")

    # --- InTest time recomputed from the wrapper timing primitive. -------
    core_of = {core.core_id: core for core in soc}
    rail_time_in = []
    for rail in architecture.rails:
        time_in = sum(
            core_test_time(core_of[core_id], rail.width)
            for core_id in rail.cores
            if core_id in core_of
        )
        rail_time_in.append(time_in)
    expected_t_in = max(rail_time_in, default=0)
    if evaluation.t_in != expected_t_in:
        violations.append(
            f"T_soc_in mismatch: reported {evaluation.t_in}, "
            f"recomputed {expected_t_in}"
        )

    # --- Per-group involvement, bottleneck time and slot length. ---------
    woc_of = {core.core_id: core.woc_count for core in soc}
    entries_of: dict[int, list] = {}
    for entry in evaluation.schedule:
        entries_of.setdefault(entry.group_id, []).append(entry)

    scheduled_group_ids = set()
    for group in groups:
        if group.is_empty:
            continue
        rail_times: dict[int, int] = {}
        for rail_index, rail in enumerate(architecture.rails):
            depth = 0
            for core_id in rail.cores:
                if core_id in group.cores:
                    woc = woc_of.get(core_id, 0)
                    if woc:
                        depth += -(-woc // rail.width)
            if depth:
                rail_times[rail_index] = group.patterns * (
                    depth + capture_cycles
                )
        if not rail_times:
            # No involved rail (cores absent): legitimately unscheduled.
            continue
        scheduled_group_ids.add(group.group_id)
        entries = entries_of.get(group.group_id, [])
        if not entries:
            violations.append(f"SI group {group.group_id} unscheduled")
            continue
        if len(entries) > 1:
            violations.append(
                f"SI group {group.group_id} scheduled {len(entries)} times"
            )
        entry = entries[0]
        expected_time = max(rail_times.values())
        if entry.rails != frozenset(rail_times):
            violations.append(
                f"SI group {group.group_id}: involved rails "
                f"{sorted(entry.rails)} != recomputed {sorted(rail_times)}"
            )
        if entry.time_si != expected_time:
            violations.append(
                f"SI group {group.group_id}: time_si {entry.time_si} != "
                f"recomputed bottleneck time {expected_time}"
            )
        if rail_times.get(entry.bottleneck_rail) != expected_time:
            violations.append(
                f"SI group {group.group_id}: rail {entry.bottleneck_rail} "
                "is not a bottleneck rail"
            )
        if entry.begin < 0 or entry.end - entry.begin != entry.time_si:
            violations.append(
                f"SI group {group.group_id}: slot [{entry.begin}, "
                f"{entry.end}) does not span time_si {entry.time_si}"
            )

    phantom = set(entries_of) - {group.group_id for group in groups}
    if phantom:
        violations.append(
            f"schedule contains unknown SI groups: {sorted(phantom)}"
        )

    # --- No time overlap on shared rails. --------------------------------
    for rail_index in range(len(architecture.rails)):
        slots = sorted(
            (entry.begin, entry.end, entry.group_id)
            for entry in evaluation.schedule
            if rail_index in entry.rails
        )
        for (begin_a, end_a, group_a), (begin_b, end_b, group_b) in zip(
            slots, slots[1:]
        ):
            if begin_b < end_a:
                violations.append(
                    f"rail {rail_index}: SI groups {group_a} and {group_b} "
                    f"overlap in time ([{begin_a},{end_a}) vs "
                    f"[{begin_b},{end_b}))"
                )

    # --- Totals reproducible from the schedule. --------------------------
    expected_t_si = max(
        (entry.end for entry in evaluation.schedule), default=0
    )
    if evaluation.t_si != expected_t_si:
        violations.append(
            f"T_soc_si mismatch: reported {evaluation.t_si}, schedule "
            f"makespan {expected_t_si}"
        )
    if evaluation.t_total != evaluation.t_in + evaluation.t_si:
        violations.append(
            f"T_soc mismatch: {evaluation.t_total} != "
            f"{evaluation.t_in} + {evaluation.t_si}"
        )
    return violations


def verify_optimization(
    soc: Soc,
    result,
    groups: tuple[SITestGroup, ...] = (),
    capture_cycles: int = 1,
) -> list[str]:
    """:func:`verify_schedule` on an ``OptimizationResult`` (its own
    ``w_max`` is the budget)."""
    return verify_schedule(
        soc,
        result.architecture,
        result.evaluation,
        groups,
        w_max=result.w_max,
        capture_cycles=capture_cycles,
    )


def assert_valid_schedule(
    soc: Soc,
    architecture: TestRailArchitecture,
    evaluation: Evaluation,
    groups: tuple[SITestGroup, ...] = (),
    w_max: int | None = None,
    capture_cycles: int = 1,
) -> None:
    """Raise :class:`ScheduleVerificationError` on any violation."""
    violations = verify_schedule(
        soc, architecture, evaluation, groups,
        w_max=w_max, capture_cycles=capture_cycles,
    )
    if violations:
        raise ScheduleVerificationError(violations)
