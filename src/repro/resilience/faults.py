"""Deterministic fault injection for the experiment runtime.

Hours-long sweeps die in boring ways: a worker process is OOM-killed, a
worker hangs past its budget, a cell ships back a garbage payload, a
cache entry is truncated by a crash mid-write, or the optional C scan
engine fails to compile on a new host.  The runtime layer has recovery
seams for all of these (serial retry, pool fallback, cache quarantine,
pure-Python scan) — this module makes each failure *reproducible on
demand* so those seams can be exercised by tests instead of waiting for
production to exercise them (the SBFI fault-injection methodology,
applied to the harness itself).

A :class:`FaultPlan` is a deterministic schedule of named faults.  Each
fault names a *kind* (one of :data:`FAULT_KINDS`), the zero-based
occurrence index ``at`` of its injection *site* at which it fires, an
optional numeric ``arg`` (e.g. hang seconds) and a *scope* restricting
it to pool worker processes or the parent.  Sites are fixed counters
threaded through the stack:

========================  ====================================================
site                      hooked where
========================  ====================================================
``executor.cell``         :func:`repro.runtime.executor.run_cells` worker
                          boundary (kinds ``worker-crash``, ``worker-hang``,
                          ``garbage-result``, ``cell-error``)
``cache.store.write``     :meth:`repro.runtime.cache.EvaluationCache` disk
                          writes (kinds ``cache-truncate``, ``cache-bitflip``,
                          ``codec-mismatch``)
``cscan.load``            :func:`repro.compaction._cscan.available` (kind
                          ``cscan-compile-fail``)
``movescan.load``         :func:`repro.core._movescan.available` (kind
                          ``movescan-compile-fail``)
``checkpoint.record``     :meth:`repro.resilience.checkpoint.SweepCheckpoint`
                          (kind ``sweep-abort`` — hard process kill)
========================  ====================================================

Activation is explicit only: :func:`activate` / :func:`inject` with a
plan object, or the ``REPRO_FAULT_PLAN`` environment variable (specs
like ``"worker-hang@1:0.5,cache-bitflip@0"``; prefix a spec with
``worker:`` or ``parent:`` to scope it).  When nothing is active every
hook is a single module-global ``None`` check — zero overhead.

Each fault fires **at most once per process** — except ``cell-error``,
whose ``arg`` is a *repeat count*: it raises
:class:`InjectedCellError` on ``arg`` consecutive site occurrences
starting at ``at`` (``arg`` omitted = every occurrence from ``at`` on,
i.e. a cell that can never succeed — the poison-quarantine trigger).
Occurrence counters are per-process, so a plan activated through the
environment behaves identically in pool workers (which inherit the
variable) and in the parent.  :func:`FaultPlan.seeded` derives a randomized-but-reproducible
plan from a seed for chaos fuzzing.

Every injection increments ``faults.injected`` and
``faults.injected.<kind>`` on the current instrumentation, so a run
report always discloses that faults were active.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.runtime.instrumentation import incr

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "GarbageResult",
    "InjectedCellError",
    "activate",
    "check_fault",
    "deactivate",
    "fault_injection_active",
    "inject",
    "perform",
    "wrap_worker",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: kind -> injection site.
FAULT_KINDS: dict[str, str] = {
    "worker-crash": "executor.cell",
    "worker-hang": "executor.cell",
    "garbage-result": "executor.cell",
    "cell-error": "executor.cell",
    "cache-truncate": "cache.store.write",
    "cache-bitflip": "cache.store.write",
    "codec-mismatch": "cache.store.write",
    "cscan-compile-fail": "cscan.load",
    "movescan-compile-fail": "movescan.load",
    "sweep-abort": "checkpoint.record",
}

_SCOPES = ("any", "worker", "parent")

#: Exit codes of the hard-kill faults, distinguishable in wait statuses.
CRASH_EXIT_CODE = 86
ABORT_EXIT_CODE = 87


class FaultPlanError(ValueError):
    """Raised on a malformed fault plan specification."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes:
        kind: Fault class, a key of :data:`FAULT_KINDS`.
        at: Zero-based occurrence index of the kind's site at which the
            fault fires (per process).
        arg: Optional numeric parameter (hang seconds, flip position...).
        scope: ``"any"``, ``"worker"`` (pool worker processes only) or
            ``"parent"`` (the main process only).
    """

    kind: str
    at: int = 0
    arg: float | None = None
    scope: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(sorted(FAULT_KINDS))})"
            )
        if self.at < 0:
            raise FaultPlanError(f"fault occurrence index must be >= 0, got {self.at}")
        if self.scope not in _SCOPES:
            raise FaultPlanError(f"unknown fault scope {self.scope!r}")

    @property
    def site(self) -> str:
        return FAULT_KINDS[self.kind]

    @property
    def repeats(self) -> float:
        """How many consecutive site occurrences (from ``at``) this fault
        fires on: 1 for every kind except ``cell-error``, whose ``arg``
        is the repeat count (``None`` = unbounded)."""
        if self.kind != "cell-error":
            return 1
        if self.arg is None:
            return float("inf")
        return max(1, int(self.arg))

    def to_spec(self) -> str:
        spec = f"{self.kind}@{self.at}"
        if self.arg is not None:
            arg = self.arg
            spec += f":{int(arg) if float(arg).is_integer() else arg}"
        if self.scope != "any":
            spec = f"{self.scope}:{spec}"
        return spec


class FaultPlan:
    """A deterministic schedule of faults, indexed by injection site."""

    def __init__(self, faults: list[Fault] | tuple[Fault, ...]) -> None:
        self.faults = tuple(faults)
        self._by_site: dict[str, list[Fault]] = {}
        for fault in self.faults:
            self._by_site.setdefault(fault.site, []).append(fault)

    def __len__(self) -> int:
        return len(self.faults)

    def faults_at(self, site: str, index: int) -> list[Fault]:
        """Faults of ``site`` whose firing window covers occurrence
        ``index`` (``at <= index < at + repeats``)."""
        return [
            f
            for f in self._by_site.get(site, ())
            if f.at <= index < f.at + f.repeats
        ]

    def to_spec(self) -> str:
        """Round-trippable textual form (the ``REPRO_FAULT_PLAN`` syntax)."""
        return ",".join(fault.to_spec() for fault in self.faults)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan spec: comma-separated ``[scope:]kind@at[:arg]``."""
        faults = []
        for raw in text.split(","):
            item = raw.strip()
            if not item:
                continue
            scope = "any"
            for prefix in ("worker", "parent"):
                if item.startswith(prefix + ":"):
                    scope = prefix
                    item = item[len(prefix) + 1:]
                    break
            kind, _, tail = item.partition("@")
            at, arg = 0, None
            if tail:
                at_text, _, arg_text = tail.partition(":")
                try:
                    at = int(at_text)
                except ValueError:
                    raise FaultPlanError(
                        f"bad occurrence index in fault spec {raw!r}"
                    ) from None
                if arg_text:
                    try:
                        arg = float(arg_text)
                    except ValueError:
                        raise FaultPlanError(
                            f"bad argument in fault spec {raw!r}"
                        ) from None
            faults.append(Fault(kind=kind, at=at, arg=arg, scope=scope))
        return cls(faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: tuple[str, ...] = ("worker-hang", "garbage-result",
                                  "cache-truncate", "cache-bitflip"),
        count: int = 3,
        horizon: int = 8,
        args: dict[str, float] | None = None,
    ) -> "FaultPlan":
        """A randomized-but-reproducible plan: ``count`` faults drawn from
        ``kinds`` with occurrence indices below ``horizon``.

        The draw uses a dedicated :class:`random.Random`, so the same seed
        always yields the same plan on every platform.  Hard-kill kinds
        (``worker-crash``, ``sweep-abort``) are only included when asked
        for explicitly.  ``args`` maps a kind to the ``arg`` every drawn
        fault of that kind carries (e.g. short hang seconds, or a
        bounded ``cell-error`` repeat count for chaos fuzzing).
        """
        import random

        rng = random.Random(seed)
        args = args or {}
        faults = []
        for _ in range(count):
            kind = rng.choice(kinds)
            faults.append(
                Fault(kind=kind, at=rng.randrange(horizon), arg=args.get(kind))
            )
        return cls(faults)


class InjectedCellError(RuntimeError):
    """The exception a ``cell-error`` fault raises in place of the cell
    body — a stand-in for any deterministic in-cell failure (bad data,
    numeric blowup, assertion) that survives serial retries."""


class GarbageResult:
    """Stands in for a corrupted or partial cell payload.

    Deliberately unusable: it is not the ``(value, snapshot)`` tuple the
    harness cells produce, so any result validator must reject it.
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<garbage cell result>"


# ---------------------------------------------------------------------------
# Per-process activation state.
#
# ``_PLAN`` is None until first use (environment not yet consulted),
# False when injection is off, or the active FaultPlan.  Hot paths pay
# one global load + truthiness check when off.
# ---------------------------------------------------------------------------

_PLAN: FaultPlan | bool | None = None
_COUNTS: dict[str, int] = {}
_SPENT: dict[Fault, int] = {}  # fault -> times fired (capped at repeats)


def _in_worker() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def _init_from_env() -> FaultPlan | bool:
    global _PLAN
    spec = os.environ.get(ENV_VAR, "").strip()
    _PLAN = FaultPlan.parse(spec) if spec else False
    return _PLAN


def activate(plan: FaultPlan) -> None:
    """Make ``plan`` the process-current fault plan (counters reset)."""
    global _PLAN
    _PLAN = plan
    _COUNTS.clear()
    _SPENT.clear()


def deactivate() -> None:
    """Turn fault injection off for this process (counters reset)."""
    global _PLAN
    _PLAN = False
    _COUNTS.clear()
    _SPENT.clear()


def reset() -> None:
    """Forget all state; the environment is consulted again on next use."""
    global _PLAN
    _PLAN = None
    _COUNTS.clear()
    _SPENT.clear()


class inject:
    """Context manager activating a plan for the ``with`` body.

    Args:
        plan: The fault plan (or a spec string).
        env: Also export ``REPRO_FAULT_PLAN`` for the body's duration, so
            pool worker processes spawned inside inherit the plan.
    """

    def __init__(self, plan: FaultPlan | str, env: bool = False) -> None:
        self.plan = FaultPlan.parse(plan) if isinstance(plan, str) else plan
        self.env = env
        self._saved_env: str | None = None

    def __enter__(self) -> FaultPlan:
        activate(self.plan)
        if self.env:
            self._saved_env = os.environ.get(ENV_VAR)
            os.environ[ENV_VAR] = self.plan.to_spec()
        return self.plan

    def __exit__(self, *exc_info) -> None:
        if self.env:
            if self._saved_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = self._saved_env
        reset()


def fault_injection_active() -> bool:
    """Whether a fault plan is active in this process (or would activate
    from the environment)."""
    plan = _PLAN
    if plan is None:
        plan = _init_from_env()
    return bool(plan)


def check_fault(site: str) -> Fault | None:
    """Count one occurrence of ``site``; return the fault due now, if any.

    The returned fault is already accounted (``faults.injected`` counters
    incremented, fault marked spent) — the call site is responsible for
    *performing* it, usually via :func:`perform`.
    """
    plan = _PLAN
    if plan is None:
        plan = _init_from_env()
    if not plan:
        return None
    index = _COUNTS.get(site, 0)
    _COUNTS[site] = index + 1
    in_worker = None
    for fault in plan.faults_at(site, index):
        fired = _SPENT.get(fault, 0)
        if fired >= fault.repeats:
            continue
        if fault.scope != "any":
            if in_worker is None:
                in_worker = _in_worker()
            if (fault.scope == "worker") != in_worker:
                continue
        _SPENT[fault] = fired + 1
        incr("faults.injected")
        incr(f"faults.injected.{fault.kind}")
        return fault
    return None


def perform(fault: Fault):
    """Carry out a behavioral fault; return a marker for data faults.

    ``worker-crash`` and ``sweep-abort`` hard-kill the process
    (``os._exit``, no cleanup — exactly like the OOM killer or a power
    cut); ``worker-hang`` sleeps ``arg`` seconds (default 3600, i.e.
    certainly past any sane cell timeout) and then continues;
    ``garbage-result`` returns a :class:`GarbageResult` for the hook to
    substitute.  Data-corruption kinds are handled by their own hooks and
    fall through to ``None`` here.
    """
    if fault.kind == "worker-crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "sweep-abort":
        os._exit(ABORT_EXIT_CODE)
    if fault.kind == "worker-hang":
        time.sleep(fault.arg if fault.arg is not None else 3600.0)
        return None
    if fault.kind == "garbage-result":
        return GarbageResult()
    if fault.kind == "cell-error":
        raise InjectedCellError(
            f"injected cell error (fault {fault.to_spec()})"
        )
    return None


def _injected_cell(worker, spec):
    """Module-level (hence picklable) worker wrapper running the
    ``executor.cell`` injection site in whichever process executes the
    cell."""
    fault = check_fault("executor.cell")
    if fault is not None:
        marker = perform(fault)
        if isinstance(marker, GarbageResult):
            return marker
    return worker(spec)


def wrap_worker(worker):
    """Wrap ``worker`` with the cell injection site when a plan is (or
    may become) active; return it untouched otherwise."""
    if not fault_injection_active():
        return worker
    import functools

    return functools.partial(_injected_cell, worker)
