"""MA fault coverage analysis with the behavioral SI simulator (extension).

Three questions about a pattern source, answered with
:mod:`repro.sitest.simulator`:

1. Does the deterministic MA set reach 100% MA coverage?  (Sanity.)
2. How fast do *random* patterns (the paper's Section 5 protocol)
   accumulate MA coverage?
3. Does compaction preserve coverage?  (It must — merging only adds care
   bits.)

Run with::

    python examples/fault_coverage.py
"""

from repro import (
    fault_universe,
    generate_ma_patterns,
    generate_random_patterns,
    greedy_compact,
    load_benchmark,
    random_topology,
    simulate,
)
from repro.sitest.simulator import coverage_curve


def main() -> None:
    soc = load_benchmark("t5")
    topology = random_topology(soc, fanouts_per_core=2, locality=2, seed=3)
    universe = fault_universe(topology)
    print(
        f"topology: {topology.net_count} nets, "
        f"{len(universe)} MA faults (6 per coupled net)"
    )

    # 1. The deterministic MA set is complete by construction.
    ma_set = list(generate_ma_patterns(topology))
    report = simulate(topology, ma_set)
    print(f"\ndeterministic MA set: {len(ma_set)} patterns, "
          f"coverage {report.coverage:.1%}")

    # 2. Random patterns accumulate coverage far more slowly — the reason
    # deterministic SI test sets (and their compaction) matter.
    random_set = generate_random_patterns(soc, 20_000, seed=3)
    checkpoints = (500, 2_000, 5_000, 20_000)
    print("\nrandom pattern coverage curve:")
    for count, coverage in coverage_curve(topology, random_set, checkpoints):
        print(f"  after {count:>6} patterns: {coverage:>6.1%}")

    # 3. Compaction is coverage-safe.
    compaction = greedy_compact(ma_set)
    compacted_report = simulate(topology, list(compaction.compacted))
    print(
        f"\ncompacted MA set: {compaction.compacted_count} patterns "
        f"(from {compaction.original_count}), coverage "
        f"{compacted_report.coverage:.1%}"
    )
    assert compacted_report.detected >= report.detected


if __name__ == "__main__":
    main()
