"""Power-constrained SI test scheduling (extension).

Concurrent SI tests toggle many wrapper chains at once; packages have test
power budgets.  This example sweeps the budget and shows the trade-off:
loose budgets recover the unconstrained schedule, tight budgets serialize
the SI phase and raise ``T_soc`` — and co-optimizing the architecture for
the budget recovers part of the loss.

Run with::

    python examples/power_aware.py
"""

from repro import (
    PowerAwareEvaluator,
    PowerModel,
    build_si_test_groups,
    evaluate_architecture,
    generate_random_patterns,
    load_benchmark,
    optimize_tam,
)

W_MAX = 32


def main() -> None:
    soc = load_benchmark("d695")
    patterns = generate_random_patterns(soc, 4_000, seed=11)
    grouping = build_si_test_groups(soc, patterns, parts=8, seed=11)

    # The residual group spans every core, so it occupies every rail and
    # always runs exclusively — a power budget cannot change when it runs.
    # The budget study therefore concerns the *part* groups, which compete
    # for concurrent slots.
    groups = tuple(g for g in grouping.groups if not g.is_residual)
    print(f"studying {len(groups)} part groups "
          f"(residual group runs rail-exclusive regardless)")

    # In SI test mode only the wrapper output cells shift, so rate each
    # core's SI test power by its WOC count.
    ratings = {core.core_id: core.woc_count / 100 for core in soc}
    probe = PowerModel(budget=1.0, core_power=ratings)
    group_powers = sorted(probe.group_power(g) for g in groups)
    heaviest = group_powers[-1]
    total_rating = sum(group_powers)
    print(f"group power ratings: {['%.1f' % p for p in group_powers]}")

    # Architecture optimized without any budget, as the reference.
    unconstrained = optimize_tam(soc, W_MAX, groups=groups)
    print(f"\nunconstrained T_total: {unconstrained.t_total} cc")

    header = f"{'budget':>8} {'co-optimized':>13} {'post-hoc':>10}"
    print("\n" + header)
    print("-" * len(header))
    for fraction in (1.0, 0.5, 0.25, 0.12):
        budget = max(total_rating * fraction, heaviest * 1.05)
        model = PowerModel(budget=budget, core_power=ratings)

        # Co-optimized: Algorithm 2 scores candidates under the budget.
        evaluator = PowerAwareEvaluator(soc, groups, model)
        co_optimized = optimize_tam(soc, W_MAX, groups, evaluator=evaluator)

        # Post-hoc: take the unconstrained architecture, then impose the
        # budget on its schedule only.
        post_evaluator = PowerAwareEvaluator(soc, groups, model)
        post_hoc = post_evaluator.evaluate(unconstrained.architecture)

        print(
            f"{budget:>8.1f} {co_optimized.t_total:>13} "
            f"{post_hoc.t_total:>10}"
        )

    print(
        "\nco-optimizing for the budget never loses to imposing it "
        "after the fact."
    )


if __name__ == "__main__":
    main()
