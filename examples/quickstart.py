"""Quickstart: optimize an SOC test architecture for SI faults.

Runs the full pipeline of the paper on the d695 benchmark:

1. generate a random SI test set (Section 5 protocol),
2. two-dimensional compaction into SI test groups (Section 3),
3. SI-aware TAM optimization (Section 4),
4. compare against the SI-oblivious TR-Architect baseline.

Run with::

    python examples/quickstart.py
"""

from repro import (
    build_si_test_groups,
    generate_random_patterns,
    load_benchmark,
    optimize_tam,
    render_schedule,
    si_oblivious_total,
)

W_MAX = 32
PATTERN_COUNT = 5_000


def main() -> None:
    soc = load_benchmark("d695")
    print(soc.describe())
    print()

    # 1. Random SI test set: one victim + 2-6 aggressors per pattern,
    #    a 32-bit shared bus used with probability 0.5.
    patterns = generate_random_patterns(soc, PATTERN_COUNT, seed=42)
    print(f"generated {len(patterns)} SI test patterns")

    # 2. Two-dimensional compaction: partition the cores into 4 groups and
    #    merge compatible patterns inside each group.
    grouping = build_si_test_groups(soc, patterns, parts=4, seed=42)
    print(
        f"compacted to {grouping.total_compacted_patterns} patterns in "
        f"{len(grouping.groups)} SI test groups "
        f"({grouping.cut_patterns} originals span several groups)"
    )

    # 3. SI-aware TAM optimization (Algorithm 2).
    result = optimize_tam(soc, W_MAX, groups=grouping.groups)
    print(f"\nSI-aware architecture (W_max = {W_MAX}):")
    for index, rail in enumerate(result.architecture.rails):
        print(f"  TAM{index}: width {rail.width:>2}, cores {list(rail.cores)}")
    print(render_schedule(soc, result.architecture, result.evaluation))

    # 4. Baseline: TR-Architect optimizes for InTest only, then pays for
    #    the SI tests on whatever architecture it produced.
    oblivious = si_oblivious_total(soc, W_MAX, grouping.groups)
    gain = (oblivious.t_total - result.t_total) / oblivious.t_total * 100
    print(f"\nSI-oblivious total: {oblivious.t_total} cc")
    print(f"SI-aware total:     {result.t_total} cc  ({gain:.1f}% faster)")


if __name__ == "__main__":
    main()
