"""Executable walkthrough of the paper, section by section.

Runs the artifacts of every section on the d695 benchmark, printing the
quantities the paper discusses where they appear.  Useful as a guided
tour of the library and as living documentation of the reproduction.

Run with::

    python examples/paper_walkthrough.py
"""

from repro import (
    build_si_test_groups,
    evaluate_architecture,
    generate_random_patterns,
    load_benchmark,
    optimize_tam,
    render_schedule,
    tr_architect,
)
from repro.core.bounds import bound_report
from repro.sitest.faults import ma_pattern_count, reduced_mt_pattern_count
from repro.sitest.patterns import format_pattern_table
from repro.sitest.shorts import modified_counting_sequence_length


def section(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    soc = load_benchmark("d695")
    w_max = 32

    section("§1-2  Motivation: SI tests are not cheap")
    victims = 2 * 10 * 32  # the paper's bus sizing example
    print(f"N = 2 x 10 x 32 = {victims} victim interconnects")
    print(f"  shorts/opens (modified counting): "
          f"{modified_counting_sequence_length(victims)} patterns")
    print(f"  MA fault model:                  "
          f"{ma_pattern_count(victims)} vector pairs")
    print(f"  reduced MT (k=3):                "
          f"{reduced_mt_pattern_count(victims, 3)} vector pairs")

    section("§3  Two-dimensional SI test set compaction")
    patterns = generate_random_patterns(soc, 10_000, seed=1)
    print(f"random SI test set (Section 5 protocol): {len(patterns)} "
          "patterns")
    sample = {core.core_id: 4 for core in list(soc)[:3]}
    print("\nTable 1 format (3 cores x 4 WOCs shown):")
    print(format_pattern_table(patterns[:4], sample, bus_width=4))
    for parts in (1, 4):
        grouping = build_si_test_groups(soc, patterns, parts=parts, seed=1)
        kind = "vertical only" if parts == 1 else f"2-D with {parts} groups"
        print(
            f"\n{kind}: {grouping.total_compacted_patterns} compacted "
            f"patterns ({grouping.cut_patterns} originals in the "
            "residual group)"
        )

    section("§4.1  SI test scheduling on a given TAM (Algorithm 1)")
    grouping = build_si_test_groups(soc, patterns, parts=4, seed=1)
    baseline = tr_architect(soc, w_max)
    priced = evaluate_architecture(soc, baseline.architecture,
                                   grouping.groups)
    print("TR-Architect's InTest-only architecture, with the SI tests "
          "scheduled on it after the fact:")
    print(render_schedule(soc, baseline.architecture, priced))

    section("§4.2  SI-aware TAM optimization (Algorithm 2)")
    aware = optimize_tam(soc, w_max, groups=grouping.groups)
    print(render_schedule(soc, aware.architecture, aware.evaluation))
    gain = (priced.t_total - aware.t_total) / priced.t_total
    print(f"\nSI-oblivious T_soc: {priced.t_total} cc")
    print(f"SI-aware T_soc:     {aware.t_total} cc  ({gain:.1%} faster)")

    section("§5  How close to optimal?")
    report = bound_report(soc, w_max, grouping.groups)
    print(f"lower bound: {report.t_total_bound} cc "
          f"(achieved {aware.t_total} cc, "
          f"gap {report.gap(aware.t_total):.1%})")


if __name__ == "__main__":
    main()
