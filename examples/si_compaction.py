"""Deep dive into SI test generation and two-dimensional compaction.

Walks through the paper's Sections 2 and 3 on a small SOC:

* builds an arbitrary interconnect topology (Fig. 1),
* derives MA-model and reduced-MT-model test sets and sizes them
  (the Section 2 motivation arithmetic),
* renders patterns in the Table 1 format,
* shows vertical compaction (greedy clique cover, with the shared-bus
  conflict rule) and horizontal compaction (hypergraph partitioning,
  Fig. 2) with their statistics.

Run with::

    python examples/si_compaction.py
"""

import itertools

from repro import (
    build_si_test_groups,
    generate_ma_patterns,
    generate_random_patterns,
    generate_reduced_mt_patterns,
    greedy_compact,
    load_benchmark,
    random_topology,
)
from repro.sitest.faults import ma_pattern_count, reduced_mt_pattern_count
from repro.sitest.patterns import format_pattern_table


def main() -> None:
    soc = load_benchmark("t5")
    print(soc.describe())

    # --- Fig. 1: an arbitrary interconnect topology ----------------------
    topology = random_topology(soc, fanouts_per_core=2, locality=3, seed=7)
    print(
        f"\ntopology: {topology.net_count} nets, 32-bit shared bus, "
        f"coupling reach k=3"
    )
    net = topology.nets[5]
    aggressors = [a.net_id for a in topology.aggressors_of(net.net_id)]
    print(
        f"  e.g. net {net.net_id}: driven by core {net.driver[0]} "
        f"terminal {net.driver[1]}, received by cores {list(net.receivers)}, "
        f"aggressors {aggressors}"
    )

    # --- Section 2: fault model sizing ------------------------------------
    n = topology.net_count
    print(f"\nMA model:          {ma_pattern_count(n):>8} vector pairs (6N)")
    for k in (1, 2, 3):
        print(
            f"reduced MT (k={k}):  "
            f"{reduced_mt_pattern_count(n, k):>8} vector pairs"
        )

    # --- Table 1: pattern format ------------------------------------------
    ma_patterns = list(itertools.islice(generate_ma_patterns(topology), 4))
    mt_patterns = list(
        itertools.islice(generate_reduced_mt_patterns(topology, 1), 2)
    )
    core_outputs = {core.core_id: min(core.woc_count, 6) for core in soc}
    print("\nSI test patterns (Table 1 format, first 6 WOCs per core):")
    print(format_pattern_table(ma_patterns + mt_patterns, core_outputs))

    # --- Vertical compaction ----------------------------------------------
    patterns = generate_random_patterns(soc, 2_000, seed=7)
    compaction = greedy_compact(patterns)
    print(
        f"\nvertical compaction: {compaction.original_count} -> "
        f"{compaction.compacted_count} patterns "
        f"(ratio {compaction.ratio:.1f}x)"
    )
    biggest = max(compaction.members, key=len)
    print(f"  largest merged pattern absorbed {len(biggest)} originals")

    # --- Horizontal compaction (Fig. 2) ------------------------------------
    for parts in (1, 2, 4):
        grouping = build_si_test_groups(soc, patterns, parts=parts, seed=7)
        shapes = ", ".join(
            f"{'residual' if g.is_residual else len(g.cores)}:{g.patterns}p"
            for g in grouping.groups
        )
        print(
            f"horizontal i={parts}: {grouping.total_compacted_patterns} "
            f"compacted patterns ({shapes})"
        )


if __name__ == "__main__":
    main()
