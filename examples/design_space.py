"""Design-space exploration: choosing the pin budget (extension).

`W_max` is a routing-area budget someone has to pick.  This example sweeps
it on p34392, finds the knee of the `(W, T_soc)` trade-off curve, shows
where the dominant core makes extra wires worthless, and prints the
utilization report and SVG schedule for the chosen design point.

Run with::

    python examples/design_space.py
"""

from repro import (
    build_si_test_groups,
    generate_random_patterns,
    load_benchmark,
    optimize_tam,
)
from repro.core.bounds import bound_report
from repro.experiments.pareto import format_curve, sweep_widths
from repro.tam.report import format_utilization_report
from repro.tam.svg import write_schedule_svg


def main() -> None:
    soc = load_benchmark("p34392")
    patterns = generate_random_patterns(soc, 5_000, seed=8)
    grouping = build_si_test_groups(soc, patterns, parts=4, seed=8)

    widths = (8, 16, 24, 32, 40, 48, 56, 64)
    curve = sweep_widths(soc, widths, groups=grouping.groups)
    print("pin budget / test time trade-off for p34392:\n")
    print(format_curve(curve))

    knee = curve.knee()
    report = bound_report(soc, knee.w_max, grouping.groups)
    print(
        f"\nknee at W_max = {knee.w_max}: T_soc = {knee.t_total} cc, "
        f"lower bound {report.t_total_bound} cc "
        f"(gap {report.gap(knee.t_total):.1%})"
    )
    print(
        "past the knee, extra wires chase the dominant core's "
        f"{report.core_floor} cc floor."
    )

    result = optimize_tam(soc, knee.w_max, groups=grouping.groups)
    print()
    print(format_utilization_report(soc, result.architecture,
                                    result.evaluation))

    svg_path = "p34392_schedule.svg"
    write_schedule_svg(soc, result.architecture, result.evaluation, svg_path)
    print(f"\nschedule figure written to {svg_path}")


if __name__ == "__main__":
    main()
