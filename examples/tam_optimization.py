"""TAM optimization study: SI-aware versus SI-oblivious across pin budgets.

Reproduces a slice of the paper's Table 3 on p93791: for each ``W_max`` it
reports the SI-oblivious baseline ``T_[8]``, the proposed flow at several
grouping counts, and the derived ``ΔT`` percentages — then renders the
winning architecture's schedule (Fig. 3 style).

Run with::

    python examples/tam_optimization.py
"""

from repro import (
    build_si_test_groups,
    generate_random_patterns,
    load_benchmark,
    optimize_tam,
    render_schedule,
    si_oblivious_total,
)

PATTERN_COUNT = 5_000
WIDTHS = (16, 32, 64)
GROUP_COUNTS = (1, 4)


def main() -> None:
    soc = load_benchmark("p93791")
    patterns = generate_random_patterns(soc, PATTERN_COUNT, seed=2)
    groupings = {
        parts: build_si_test_groups(soc, patterns, parts=parts, seed=2)
        for parts in GROUP_COUNTS
    }
    for parts, grouping in groupings.items():
        print(
            f"grouping i={parts}: "
            f"{grouping.total_compacted_patterns} compacted patterns"
        )

    header = (
        f"{'Wmax':>5} {'T_[8]':>10} "
        + " ".join(f"T_g{p:<2}{'':>6}" for p in GROUP_COUNTS)
        + f" {'dT_[8]%':>8}"
    )
    print("\n" + header)
    print("-" * len(header))

    best_result = None
    for w_max in WIDTHS:
        baseline = min(
            si_oblivious_total(soc, w_max, groupings[p].groups).t_total
            for p in GROUP_COUNTS
        )
        grouped = {}
        results = {}
        for parts in GROUP_COUNTS:
            results[parts] = optimize_tam(
                soc, w_max, groups=groupings[parts].groups
            )
            grouped[parts] = results[parts].t_total
        t_min = min(grouped.values())
        delta = (baseline - t_min) / baseline * 100
        cells = " ".join(f"{grouped[p]:>10}" for p in GROUP_COUNTS)
        print(f"{w_max:>5} {baseline:>10} {cells} {delta:>7.2f}%")
        best_result = results[min(grouped, key=grouped.get)]

    assert best_result is not None
    print(f"\nwinning architecture at W_max={WIDTHS[-1]}:")
    print(render_schedule(soc, best_result.architecture,
                          best_result.evaluation))


if __name__ == "__main__":
    main()
