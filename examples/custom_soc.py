"""Bring your own SOC: build one programmatically, persist it in the
ITC'02 format, analyse its wrappers, and run the full SI-aware flow.

Shows the substrate APIs a system integrator would touch when the design is
not one of the shipped benchmarks:

* :class:`repro.Core` / :class:`repro.Soc` construction,
* ITC'02 serialization round-trip,
* balanced wrapper design and Pareto width analysis per core,
* the complete compaction + optimization pipeline.

Run with::

    python examples/custom_soc.py
"""

import tempfile
from pathlib import Path

from repro import (
    Core,
    CoreTest,
    Soc,
    build_si_test_groups,
    design_wrapper,
    generate_random_patterns,
    optimize_tam,
    render_schedule,
)
from repro.soc.itc02 import dump_file, parse_file
from repro.wrapper.timing import core_test_time, pareto_widths


def build_soc() -> Soc:
    """A small heterogeneous SOC: a CPU, a DSP, a DMA engine and glue."""
    return Soc(
        name="mychip",
        cores=(
            Core(core_id=1, name="cpu", inputs=64, outputs=64, bidirs=8,
                 scan_chains=(120, 118, 117, 115, 110, 108),
                 tests=(CoreTest(patterns=420),)),
            Core(core_id=2, name="dsp", inputs=48, outputs=40, bidirs=0,
                 scan_chains=(90, 88, 85, 84),
                 tests=(CoreTest(patterns=310),)),
            Core(core_id=3, name="dma", inputs=36, outputs=52, bidirs=0,
                 scan_chains=(45, 44),
                 tests=(CoreTest(patterns=150),)),
            Core(core_id=4, name="glue", inputs=30, outputs=28, bidirs=0,
                 tests=(CoreTest(patterns=60, scan_use=False),)),
        ),
    )


def main() -> None:
    soc = build_soc()

    # Persist and reload via the ITC'02 format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mychip.soc"
        dump_file(soc, path)
        reloaded = parse_file(path)
        assert reloaded == soc
        print(f"round-tripped {path.name}: {len(reloaded)} modules")

    # Wrapper analysis per core.
    print("\nwrapper analysis:")
    for core in soc:
        widths = pareto_widths(core, 32)
        design = design_wrapper(core, 8)
        print(
            f"  {core.name:<5} Pareto widths {list(widths)}; at w=8: "
            f"s_i={design.max_scan_in}, s_o={design.max_scan_out}, "
            f"T={core_test_time(core, 8)} cc"
        )

    # Full SI-aware flow.
    patterns = generate_random_patterns(soc, 3_000, seed=5)
    grouping = build_si_test_groups(soc, patterns, parts=2, seed=5)
    result = optimize_tam(soc, 16, groups=grouping.groups)
    print(
        f"\noptimized for W_max=16: T_total={result.t_total} cc "
        f"(InTest {result.evaluation.t_in}, SI {result.evaluation.t_si})"
    )
    print(render_schedule(soc, result.architecture, result.evaluation))


if __name__ == "__main__":
    main()
