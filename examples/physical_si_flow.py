"""Physical SI flow: geometry → crosstalk → tests → diagnosis (extension).

The paper's experiments use random patterns because the benchmarks carry
no netlists.  This example shows the flow a user with real layout data
would run instead:

1. place interconnects in a routing channel,
2. estimate coupling and derive each net's aggressors from a noise
   threshold (instead of the reduced-MT locality factor),
3. generate the deterministic MA test set for that physically derived
   topology and compact it,
4. build a fault dictionary and diagnose an injected fault from its ILS
   syndrome.

Run with::

    python examples/physical_si_flow.py
"""

from repro import greedy_compact
from repro.sitest.crosstalk import (
    analyze_crosstalk,
    channel_placement,
    topology_from_placement,
)
from repro.sitest.diagnosis import build_dictionary, syndrome_of
from repro.sitest.faults import generate_ma_patterns
from repro.sitest.simulator import simulate
from repro.sitest.topology import Net

NET_COUNT = 64
TRACKS = 8


def main() -> None:
    # 1. Interconnects between four cores, placed in a routing channel.
    nets = [
        Net(
            net_id=index,
            driver=(1 + index % 4, index // 4),
            receivers=((index + 1) % 4 + 1,),
        )
        for index in range(NET_COUNT)
    ]
    wires = channel_placement(NET_COUNT, tracks=TRACKS, seed=42)

    # 2. Crosstalk screening.
    analysis = analyze_crosstalk(wires)
    worst_victim = max(
        (net.net_id for net in nets), key=analysis.worst_case_noise
    )
    print(
        f"worst victim: net {worst_victim} with a "
        f"{analysis.worst_case_noise(worst_victim):.3f} V additive noise "
        "bound (all aggressors switching together)"
    )

    topology = topology_from_placement(nets, wires, noise_threshold=0.03)
    sizes = [len(topology.neighborhoods[net.net_id]) for net in nets]
    print(
        f"aggressor sets from physics: mean {sum(sizes) / len(sizes):.1f}, "
        f"max {max(sizes)} (no empirical locality factor needed)"
    )

    # 3. Deterministic MA test set + compaction.
    patterns = list(generate_ma_patterns(topology))
    report = simulate(topology, patterns)
    compaction = greedy_compact(patterns)
    print(
        f"\nMA set: {len(patterns)} patterns, coverage "
        f"{report.coverage:.0%}; compacted to "
        f"{compaction.compacted_count} patterns"
    )

    # 4. Diagnosis from an ILS syndrome.
    compacted = list(compaction.compacted)
    dictionary = build_dictionary(topology, compacted)
    injected = dictionary.detectable_faults[len(dictionary.faults) // 2]
    syndrome = syndrome_of(topology, compacted, (injected,))
    candidates = dictionary.diagnose(syndrome)
    print(
        f"\ninjected fault: {injected.describe()}\n"
        f"syndrome: {len(syndrome)} failing patterns -> "
        f"{len(candidates)} candidate fault(s)"
    )
    print(
        f"dictionary resolution: {dictionary.diagnostic_resolution:.2f} "
        "(1.0 = every fault distinguishable)"
    )
    assert injected in candidates


if __name__ == "__main__":
    main()
