"""Tests for the defect-level economics model."""

import pytest

from repro.sitest.economics import (
    coverage_economics,
    defect_level_dppm,
    format_economics_report,
    williams_brown_defect_level,
)
from repro.sitest.faults import generate_ma_patterns
from repro.sitest.topology import random_topology
from repro.soc.model import Soc
from tests.conftest import make_core


class TestWilliamsBrown:
    def test_full_coverage_ships_nothing_defective(self):
        assert williams_brown_defect_level(0.8, 1.0) == pytest.approx(0.0)

    def test_zero_coverage_ships_all_defects(self):
        assert williams_brown_defect_level(0.8, 0.0) == pytest.approx(0.2)

    def test_hand_value(self):
        # Y = 0.9, FC = 0.5: DL = 1 - 0.9^0.5 ~ 5.13%.
        assert williams_brown_defect_level(0.9, 0.5) == pytest.approx(
            1 - 0.9**0.5
        )

    def test_monotone_in_coverage(self):
        values = [
            williams_brown_defect_level(0.85, coverage / 10)
            for coverage in range(11)
        ]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            williams_brown_defect_level(0.0, 0.5)
        with pytest.raises(ValueError):
            williams_brown_defect_level(1.5, 0.5)
        with pytest.raises(ValueError):
            williams_brown_defect_level(0.9, 1.1)

    def test_dppm_scale(self):
        assert defect_level_dppm(0.9, 1.0) == pytest.approx(0.0)
        assert defect_level_dppm(0.9, 0.0) == pytest.approx(1e5)


class TestCoverageEconomics:
    @pytest.fixture(scope="class")
    def setup(self):
        soc = Soc(
            name="econ",
            cores=(make_core(1, outputs=6), make_core(2, outputs=6)),
        )
        topology = random_topology(soc, locality=2, seed=31)
        patterns = list(generate_ma_patterns(topology))
        return topology, patterns

    def test_dppm_decreases_with_patterns(self, setup):
        topology, patterns = setup
        points = coverage_economics(
            topology, patterns, process_yield=0.85,
            checkpoints=(0, len(patterns) // 2, len(patterns)),
        )
        dppm = [point.dppm for point in points]
        assert dppm == sorted(dppm, reverse=True)
        assert points[-1].dppm == pytest.approx(0.0)

    def test_negative_checkpoint_rejected(self, setup):
        topology, patterns = setup
        with pytest.raises(ValueError):
            coverage_economics(topology, patterns, 0.9, (-1,))

    def test_report_format(self, setup):
        topology, patterns = setup
        points = coverage_economics(
            topology, patterns, 0.9, (0, len(patterns))
        )
        text = format_economics_report(points)
        assert "DPPM" in text
        assert len(text.splitlines()) == 3
