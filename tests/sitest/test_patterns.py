"""Tests for the SI pattern algebra (Table 1 semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sitest.patterns import (
    FALL,
    RISE,
    SIPattern,
    STEADY_ONE,
    STEADY_ZERO,
    SYMBOLS,
    format_pattern_table,
)

symbol_st = st.sampled_from(SYMBOLS)
terminal_st = st.tuples(
    st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=5)
)
pattern_st = st.builds(
    SIPattern,
    cares=st.dictionaries(terminal_st, symbol_st, max_size=6),
    bus_claims=st.dictionaries(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=4),
        max_size=4,
    ),
)


class TestValidation:
    def test_invalid_symbol_rejected(self):
        with pytest.raises(ValueError):
            SIPattern(cares={(1, 0): "Z"})

    def test_care_cores(self):
        pattern = SIPattern(cares={(1, 0): RISE, (1, 3): FALL, (7, 2): RISE})
        assert pattern.care_cores == frozenset({1, 7})


class TestCompatibility:
    def test_disjoint_patterns_compatible(self):
        a = SIPattern(cares={(1, 0): RISE})
        b = SIPattern(cares={(2, 0): FALL})
        assert a.is_compatible(b)

    def test_equal_symbols_compatible(self):
        a = SIPattern(cares={(1, 0): RISE, (1, 1): STEADY_ZERO})
        b = SIPattern(cares={(1, 0): RISE})
        assert a.is_compatible(b)

    def test_conflicting_symbols_incompatible(self):
        a = SIPattern(cares={(1, 0): RISE})
        b = SIPattern(cares={(1, 0): FALL})
        assert not a.is_compatible(b)

    def test_steady_values_conflict(self):
        a = SIPattern(cares={(1, 0): STEADY_ZERO})
        b = SIPattern(cares={(1, 0): STEADY_ONE})
        assert not a.is_compatible(b)

    def test_same_bus_line_different_driver_incompatible(self):
        # The paper's rule: patterns triggering the same bus line from
        # different core boundaries must not be merged.
        a = SIPattern(cares={(1, 0): RISE}, bus_claims={5: 1})
        b = SIPattern(cares={(2, 0): RISE}, bus_claims={5: 2})
        assert not a.is_compatible(b)

    def test_same_bus_line_same_driver_compatible(self):
        a = SIPattern(cares={(1, 0): RISE}, bus_claims={5: 1})
        b = SIPattern(cares={(1, 1): FALL}, bus_claims={5: 1})
        assert a.is_compatible(b)

    def test_different_bus_lines_compatible(self):
        a = SIPattern(bus_claims={1: 1}, cares={(1, 0): RISE})
        b = SIPattern(bus_claims={2: 2}, cares={(2, 0): RISE})
        assert a.is_compatible(b)

    @given(pattern_st, pattern_st)
    def test_symmetry(self, a, b):
        assert a.is_compatible(b) == b.is_compatible(a)

    @given(pattern_st)
    def test_reflexive(self, pattern):
        assert pattern.is_compatible(pattern)


class TestMerge:
    def test_merge_unions_cares(self):
        a = SIPattern(cares={(1, 0): RISE})
        b = SIPattern(cares={(2, 0): FALL}, bus_claims={3: 2})
        merged = a.merged_with(b)
        assert merged.cares == {(1, 0): RISE, (2, 0): FALL}
        assert merged.bus_claims == {3: 2}

    def test_merge_incompatible_raises(self):
        a = SIPattern(cares={(1, 0): RISE})
        b = SIPattern(cares={(1, 0): FALL})
        with pytest.raises(ValueError):
            a.merged_with(b)

    @given(pattern_st, pattern_st)
    def test_merged_pattern_compatible_with_both(self, a, b):
        if a.is_compatible(b):
            merged = a.merged_with(b)
            assert merged.is_compatible(a)
            assert merged.is_compatible(b)

    @given(pattern_st, pattern_st, pattern_st)
    def test_pairwise_compatibility_implies_set_mergeable(self, a, b, c):
        # The clique-cover formulation is sound: pairwise compatibility
        # lets the whole set be merged with intact compatibility.
        if (a.is_compatible(b) and a.is_compatible(c)
                and b.is_compatible(c)):
            merged = a.merged_with(b)
            assert merged.is_compatible(c)


class TestFormatting:
    def test_table_1_glyphs(self):
        patterns = [
            SIPattern(cares={(1, 0): RISE, (1, 2): FALL, (2, 1): STEADY_ONE}),
            SIPattern(cares={(2, 0): STEADY_ZERO}, bus_claims={0: 2}),
        ]
        table = format_pattern_table(patterns, {1: 3, 2: 2}, bus_width=2)
        assert "↑" in table and "↓" in table
        assert "core1 WOC" in table and "Bus" in table
        lines = table.splitlines()
        assert len(lines) == 2 + len(patterns)  # header + rule + rows

    def test_empty_pattern_list(self):
        table = format_pattern_table([], {1: 2})
        assert "core1 WOC" in table

    def test_table_1_golden_rendering(self):
        """Exact Table-1 style output: transition glyphs, don't-care
        ``x`` fill, and the bus postfix column."""
        patterns = [
            SIPattern(
                cares={(1, 0): RISE, (1, 2): FALL, (2, 1): STEADY_ONE},
                bus_claims={0: 2},
            ),
            SIPattern(cares={(2, 0): STEADY_ZERO}, bus_claims={1: 1}),
        ]
        table = format_pattern_table(patterns, {1: 3, 2: 2}, bus_width=2)
        assert table == (
            "core1 WOC | core2 WOC | Bus\n"
            "----------+-----------+----\n"
            "↑ x ↓     | x 1       | 1 x\n"
            "x x x     | 0 x       | x 1"
        )
