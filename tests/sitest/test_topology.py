"""Tests for the interconnect topology model."""

import pytest

from repro.sitest.topology import (
    InterconnectTopology,
    Net,
    SharedBus,
    random_topology,
)
from repro.soc.model import Soc
from tests.conftest import make_core


@pytest.fixture
def three_core_soc():
    return Soc(
        name="three",
        cores=(
            make_core(1, outputs=4),
            make_core(2, outputs=2),
            make_core(3, outputs=3),
        ),
    )


class TestRandomTopology:
    def test_one_net_per_output(self, three_core_soc):
        topology = random_topology(three_core_soc, seed=3)
        assert topology.net_count == 4 + 2 + 3

    def test_receivers_exclude_driver(self, three_core_soc):
        topology = random_topology(three_core_soc, fanouts_per_core=2, seed=3)
        for net in topology.nets:
            assert net.driver[0] not in net.receivers
            assert len(net.receivers) == 2

    def test_locality_neighborhoods(self, three_core_soc):
        topology = random_topology(three_core_soc, locality=2, seed=3)
        middle = topology.net_count // 2
        neighbors = topology.neighborhoods[middle]
        assert set(neighbors) == {middle - 2, middle - 1, middle + 1, middle + 2}

    def test_deterministic_for_seed(self, three_core_soc):
        a = random_topology(three_core_soc, seed=11)
        b = random_topology(three_core_soc, seed=11)
        assert a.nets == b.nets

    def test_bus_disabled(self, three_core_soc):
        assert random_topology(three_core_soc, bus_width=0, seed=3).bus is None

    def test_validates_against_soc(self, three_core_soc):
        topology = random_topology(three_core_soc, seed=3)
        topology.validate(three_core_soc)  # must not raise

    def test_needs_two_cores(self):
        soc = Soc(name="solo", cores=(make_core(1),))
        with pytest.raises(ValueError):
            random_topology(soc)


class TestValidate:
    def test_unknown_driver_core(self, three_core_soc):
        bad = InterconnectTopology(
            nets=[Net(net_id=0, driver=(99, 0), receivers=(1,))]
        )
        with pytest.raises(ValueError, match="unknown driver"):
            bad.validate(three_core_soc)

    def test_driver_index_out_of_range(self, three_core_soc):
        bad = InterconnectTopology(
            nets=[Net(net_id=0, driver=(2, 9), receivers=(1,))]
        )
        with pytest.raises(ValueError, match="out of range"):
            bad.validate(three_core_soc)

    def test_self_aggressor_rejected(self, three_core_soc):
        bad = InterconnectTopology(
            nets=[Net(net_id=0, driver=(1, 0), receivers=(2,))],
            neighborhoods={0: (0,)},
        )
        with pytest.raises(ValueError, match="own aggressor"):
            bad.validate(three_core_soc)

    def test_unknown_bus_core(self, three_core_soc):
        bad = InterconnectTopology(
            nets=[Net(net_id=0, driver=(1, 0), receivers=(2,))],
            bus=SharedBus(width=8, connected_cores=(1, 42)),
        )
        with pytest.raises(ValueError, match="bus"):
            bad.validate(three_core_soc)

    def test_aggressors_of(self, three_core_soc):
        topology = random_topology(three_core_soc, locality=1, seed=3)
        aggressors = topology.aggressors_of(0)
        assert [net.net_id for net in aggressors] == [1]
